"""Closed-form complexity predictions (Theorems 1 and 11).

These functions state what the paper proves, so that the measurement
harness can print paper-vs-measured side by side:

* Pi_i has deterministic complexity Theta(log^i n) and randomized
  complexity Theta(log^{i-1} n * log log n) (Theorem 11);
* padding with a (d, Delta)-family multiplies both complexities by
  Theta(d(n)) (Theorem 1 with f(x) = floor(sqrt(x)));
* the paper's closing observation: every known gap satisfies
  D(n)/R(n) = Theta(log n / log log n).
"""

from __future__ import annotations

import math

__all__ = [
    "deterministic_prediction",
    "randomized_prediction",
    "gap_ratio_prediction",
    "theorem1_upper",
    "theorem1_lower",
]


def _log(n: float) -> float:
    return math.log2(max(n, 2.0))


def _loglog(n: float) -> float:
    return math.log2(max(_log(n), 2.0))


def deterministic_prediction(level: int, n: int) -> float:
    """Theta(log^i n) for Pi_i (up to the hidden constant)."""
    if level < 1:
        raise ValueError("levels are 1-based")
    return _log(n) ** level


def randomized_prediction(level: int, n: int) -> float:
    """Theta(log^{i-1} n * log log n) for Pi_i."""
    if level < 1:
        raise ValueError("levels are 1-based")
    return _log(n) ** (level - 1) * _loglog(n)


def gap_ratio_prediction(n: int) -> float:
    """D(n) / R(n) = Theta(log n / log log n), independent of the level."""
    return _log(n) / _loglog(n)


def theorem1_upper(base_rounds: float, n: int) -> float:
    """O(T(Pi, n) * d(n)) with d = log (Theorem 1, upper bound shape)."""
    return base_rounds * _log(n)


def theorem1_lower(base_rounds_at_sqrt: float, n: int) -> float:
    """Omega(T(Pi, sqrt(n)) * d(sqrt(n))) with f(x) = floor(sqrt(x))."""
    return base_rounds_at_sqrt * _log(math.isqrt(max(n, 1)))
