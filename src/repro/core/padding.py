"""Padded graphs (Definition 3, Figure 2).

``pad_graph`` replaces every node of a base graph ``G`` with a gadget
from a family and connects port ``a`` of ``u`` to port ``b`` of ``v``
for every base edge; gadget-internal edges are tagged ``GadEdge`` and
the new connections ``PortEdge``.

The builder records the full correspondence (base node -> gadget node
range, base edge -> port edge id), which the hard-instance generators
and tests use; the Pi' solver never touches it — it rediscovers the
structure from the labels alone, as a distributed algorithm must.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.gadgets.build import BuiltGadget
from repro.lcl.assignment import Labeling
from repro.lcl.labels import EMPTY
from repro.local.builder import GraphBuilder
from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["GADEDGE", "PORTEDGE", "PaddedInput", "PaddedGraph", "pad_graph"]

GADEDGE = "GadEdge"
PORTEDGE = "PortEdge"


class PaddedInput(tuple):
    """Structured input label of Pi' elements.

    For nodes: ``(pi_input, gadget_node_input)`` — the gadget input
    already carries the port tag (Definition 2).  For edges:
    ``(pi_input, edge_tag)`` with ``edge_tag`` in {GadEdge, PortEdge}.
    For half-edges: ``(pi_input, gadget_half_input)``.
    """

    __slots__ = ()

    def __new__(cls, pi: Hashable, gadget: Hashable):
        return super().__new__(cls, (pi, gadget))

    @property
    def pi(self) -> Hashable:
        return self[0]

    @property
    def gadget(self) -> Hashable:
        return self[1]


@dataclass
class PaddedGraph:
    """A padded graph with its Pi' input labeling and provenance."""

    graph: PortGraph
    inputs: Labeling
    base_num_nodes: int
    gadget_of: list[BuiltGadget]  # per base node
    node_offset: list[int]  # base node -> first padded node index
    port_edges: list[int] = field(default_factory=list)  # eids tagged PortEdge

    def padded_node(self, base_node: int, gadget_node: int) -> int:
        return self.node_offset[base_node] + gadget_node

    def gadget_nodes(self, base_node: int) -> range:
        start = self.node_offset[base_node]
        return range(start, start + self.gadget_of[base_node].num_nodes)

    def edge_tag(self, eid: int) -> Hashable:
        return self.inputs.edge(eid).gadget


def pad_graph(
    base: PortGraph,
    gadgets: Sequence[BuiltGadget],
    base_inputs: Labeling | None = None,
) -> PaddedGraph:
    """Pad ``base`` by the chosen gadget per node (Definition 3).

    Every gadget must offer at least ``deg(v)`` ports.  Base-problem
    inputs (if any) are carried over: the base node input lands on
    *every* node of its gadget (so in particular on Port_1, which
    constraint 5 of Pi' reads), base edge inputs on the port edge, and
    base half-edge inputs on the port-edge half at the matching port
    node.
    """
    if len(gadgets) != base.num_nodes:
        raise ValueError("one gadget per base node required")
    for v in base.nodes():
        if base.degree(v) > gadgets[v].delta:
            raise ValueError(
                f"base node {v} has degree {base.degree(v)} but its gadget "
                f"offers only {gadgets[v].delta} ports"
            )

    builder = GraphBuilder()
    node_offset = []
    for v in base.nodes():
        offset = builder.num_nodes
        node_offset.append(offset)
        builder.add_nodes(gadgets[v].num_nodes)

    # copy gadget-internal edges (ports preserved: edges inserted in the
    # same per-node order as in the standalone gadget)
    edge_tags: list[Hashable] = []
    for v in base.nodes():
        offset = node_offset[v]
        for edge in gadgets[v].graph.edges():
            builder.add_edge(offset + edge.a.node, offset + edge.b.node)
            edge_tags.append(GADEDGE)

    # port edges: base edge {u via port a, v via port b} connects
    # Port_{a+1} of u's gadget to Port_{b+1} of v's gadget
    port_edge_of_base_edge: list[int] = []
    for edge in base.edges():
        u, a = edge.a
        v, b = edge.b
        pu = node_offset[u] + gadgets[u].ports[a]
        pv = node_offset[v] + gadgets[v].ports[b]
        eid = builder.add_edge(pu, pv)
        edge_tags.append(PORTEDGE)
        assert edge_tags[eid] == PORTEDGE
        port_edge_of_base_edge.append(eid)

    graph = builder.build()
    inputs = Labeling(graph)

    def base_node_input(v: int) -> Hashable:
        return base_inputs.node(v) if base_inputs is not None else EMPTY

    for v in base.nodes():
        offset = node_offset[v]
        gadget = gadgets[v]
        for w in gadget.graph.nodes():
            inputs.set_node(
                offset + w, PaddedInput(base_node_input(v), gadget.inputs.node(w))
            )
            for port in range(gadget.graph.degree(w)):
                inputs.set_half(
                    HalfEdge(offset + w, port),
                    PaddedInput(EMPTY, gadget.inputs.half_at(w, port)),
                )
    for eid in range(graph.num_edges):
        inputs.set_edge(eid, PaddedInput(EMPTY, edge_tags[eid]))

    # base edge/half-edge inputs ride on the port edges
    for base_eid, padded_eid in enumerate(port_edge_of_base_edge):
        base_edge = base.edge(base_eid)
        if base_inputs is not None:
            inputs.set_edge(
                padded_eid,
                PaddedInput(base_inputs.edge(base_eid), PORTEDGE),
            )
        padded_edge = graph.edge(padded_eid)
        # match padded sides to base sides through the gadget ports
        u, a = base_edge.a
        v, b = base_edge.b
        pu = node_offset[u] + gadgets[u].ports[a]
        pv = node_offset[v] + gadgets[v].ports[b]
        side_u = (
            padded_edge.a if padded_edge.a.node == pu else padded_edge.b
        )
        side_v = padded_edge.other_side(side_u)
        if base_inputs is not None:
            inputs.set_half(
                side_u, PaddedInput(base_inputs.half(base_edge.a), EMPTY)
            )
            inputs.set_half(
                side_v, PaddedInput(base_inputs.half(base_edge.b), EMPTY)
            )
        else:
            inputs.set_half(side_u, PaddedInput(EMPTY, EMPTY))
            inputs.set_half(side_v, PaddedInput(EMPTY, EMPTY))

    return PaddedGraph(
        graph=graph,
        inputs=inputs,
        base_num_nodes=base.num_nodes,
        gadget_of=list(gadgets),
        node_offset=node_offset,
        port_edges=port_edge_of_base_edge,
    )
