"""The problem family Pi_i of Section 5 (Theorem 11).

Pi_1 is sinkless orientation; Pi_{i+1} applies the padding construction
(Theorem 1) with the (log, Delta)-gadget family of Theorem 6.  Each
level carries a deterministic and a randomized solver, built by wrapping
the previous level's solvers in the generic Lemma 4 algorithm, and a
verifier (the ne-LCL verifier at level 1, the Pi' verifier above).

The predicted complexities are deterministic Theta(log^i n) and
randomized Theta(log^{i-1} n log log n); the Theorem 11 benchmark sweeps
``solve_on_hard_instance`` over n and fits the measured rounds against
exactly these shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.padded_problem import PaddedProblem
from repro.core.padded_solver import PaddedSolver
from repro.core.theory import deterministic_prediction, randomized_prediction
from repro.gadgets.family import LogGadgetFamily
from repro.lcl.assignment import Labeling
from repro.lcl.problem import NeLCL
from repro.lcl.verifier import Verdict
from repro.lcl.verifier import verify as lcl_verify
from repro.local.algorithm import Instance, LocalAlgorithm, RunResult
from repro.local.graphs import PortGraph
from repro.problems.sinkless import SinklessOrientation
from repro.problems.sinkless_solvers import (
    DeterministicSinklessSolver,
    RandomizedSinklessSolver,
)

__all__ = ["FamilyLevel", "build_family", "pi_family_level"]


@dataclass
class FamilyLevel:
    """One level Pi_i with its solvers, verifier, and predictions."""

    index: int
    problem: "NeLCL | PaddedProblem"
    det_solver: LocalAlgorithm
    rand_solver: LocalAlgorithm
    family: LogGadgetFamily | None

    @property
    def name(self) -> str:
        return f"Pi_{self.index}"

    def verify(
        self, graph: PortGraph, inputs: Labeling | None, outputs: Labeling
    ) -> Verdict:
        if inputs is None:
            inputs = Labeling(graph)
        if isinstance(self.problem, PaddedProblem):
            return self.problem.verify(graph, inputs, outputs)
        return lcl_verify(self.problem, graph, inputs, outputs)

    def predicted_det(self, n: int) -> float:
        return deterministic_prediction(self.index, n)

    def predicted_rand(self, n: int) -> float:
        return randomized_prediction(self.index, n)


def build_family(levels: int, delta: int = 3) -> list[FamilyLevel]:
    """Pi_1 .. Pi_levels over (log, .)-gadget families.

    Level 2 pads degree-<=delta base graphs.  Padded graphs themselves
    have maximum degree 5 (an interior sub-gadget node sees Parent,
    Left, Right, LChild, RChild), so levels >= 3 use a Delta >= 5
    family; the degree then stays at 5 for every further level.
    """
    if levels < 1:
        raise ValueError("need at least one level")
    base_problem = SinklessOrientation().problem()
    out = [
        FamilyLevel(
            index=1,
            problem=base_problem,
            det_solver=DeterministicSinklessSolver(),
            rand_solver=RandomizedSinklessSolver(),
            family=None,
        )
    ]
    for i in range(2, levels + 1):
        level_delta = delta if i == 2 else max(delta, 5)
        gadget_family = LogGadgetFamily(level_delta)
        previous = out[-1]
        problem = PaddedProblem(previous.problem, gadget_family)
        out.append(
            FamilyLevel(
                index=i,
                problem=problem,
                det_solver=PaddedSolver(problem, previous.det_solver),
                rand_solver=PaddedSolver(problem, previous.rand_solver),
                family=gadget_family,
            )
        )
    return out


def pi_family_level(index: int, delta: int = 3) -> FamilyLevel:
    """The single level Pi_index (hard instances come from
    :func:`repro.generators.hard.padded_hard_instance`)."""
    return build_family(index, delta)[-1]


# -- runtime registrations (the Pi_2 landscape row) ---------------------
#
# The padded level Pi_2 = pad(sinkless-orientation, log-gadgets) is the
# paper's headline construction; registering it (problem, both solvers,
# and the height-graded instance family) puts the Theorem 1 overhead
# measurement into the same registry-driven cross-product as the base
# problems.  Instances are graded by gadget *height* h, not node count:
# the padded graph on a 16-node cubic base has 16 * (2^(h+1) - 1) + 16
# nodes, so sweeps pass heights and report the true padded sizes.

from repro.runtime.registry import register_family, register_problem, register_solver


@register_problem(
    "padded-sinkless",
    description="Pi_2: sinkless orientation padded with log-gadgets",
    paper_det="Theta(log^2 n)",
    paper_rand="Theta(log n loglog n)",
)
def _padded_sinkless_problem() -> PaddedProblem:
    return PaddedProblem(SinklessOrientation().problem(), LogGadgetFamily(3))


def padded_sinkless_solver() -> PaddedSolver:
    """The registered deterministic Pi_2 solver (also a legacy spec ref)."""
    return PaddedSolver(_padded_sinkless_problem(), DeterministicSinklessSolver())


register_solver(
    "padded-sinkless-det",
    problem="padded-sinkless",
    families=("padded-sinkless",),
    randomized=False,
    description="the Lemma 4 generic algorithm over the deterministic base",
)(padded_sinkless_solver)

register_solver(
    "padded-sinkless-rand",
    problem="padded-sinkless",
    families=("padded-sinkless",),
    randomized=True,
    description="the Lemma 4 generic algorithm over the randomized base",
)(lambda: PaddedSolver(_padded_sinkless_problem(), RandomizedSinklessSolver()))


@register_family(
    "padded-sinkless",
    description="16-node cubic base padded with height-h gadgets",
    max_degree=5,
    min_degree=1,
    size_kind="height",
    test_sizes=(2,),
    grid=lambda max_n: tuple(
        h for h in range(2, 8) if 16 * (2 ** (h + 1)) <= max_n
    ),
    # The cubic base graph is sampled from the seed: no topology sharing.
    topology_seeded=True,
)
def padded_sinkless_instance(height: int, seed: int):
    """A 16-node cubic base padded with gadgets of the given height."""
    import random as _random

    from repro.core.padding import pad_graph
    from repro.gadgets.build import build_gadget
    from repro.generators.regular import random_regular
    from repro.local.identifiers import sequential_ids
    from repro.util.rng import NodeRng

    base = random_regular(16, 3, _random.Random(2 + seed))
    gadgets = [build_gadget(3, height) for _ in base.nodes()]
    padded = pad_graph(base, gadgets)
    return Instance(
        padded.graph,
        sequential_ids(padded.graph.num_nodes),
        padded.inputs,
        None,
        NodeRng(seed),
    )
