"""Decomposition of a Pi' instance and the virtual-graph contraction.

``decompose`` discovers, exactly as a distributed algorithm would from
the labels alone:

* the gadget components (connected components of GadEdge edges);
* the prover verdict for each component (valid member of the family or
  locally checkable proof of error);
* the port status of every node (the PortErr1 / PortErr2 / NoPortErr
  trichotomy of constraints 3-4, Figure 4);
* the **virtual graph**: one node per valid gadget, one edge per
  port edge joining two valid ports (self-loops and parallel edges
  arise naturally and are kept — the reason the paper allows them).

Port edges with exactly one valid-port endpoint become *dangling*
virtual edges, modeled as edges to fresh degree-1 dummy nodes: the
corresponding Pi'-edge constraint is vacuous (the far side carries an
LErr or NoPort element), so the base problem only needs its node
constraint satisfiable with such a stub, which degree-exempt problems
like sinkless orientation give for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.padding import GADEDGE, PORTEDGE
from repro.core.projection import GadgetProjection, edge_tag, pi_part
from repro.gadgets.family import GadgetFamily
from repro.gadgets.labels import CENTER, Port
from repro.gadgets.prover import ProverResult
from repro.gadgets.scope import GadgetScope
from repro.lcl.assignment import Labeling
from repro.local.builder import GraphBuilder
from repro.local.graphs import HalfEdge, PortGraph
from repro.local.identifiers import IdAssignment

__all__ = [
    "PORT_OK",
    "PORT_ERR1",
    "PORT_ERR2",
    "GadgetComponent",
    "VirtualGraph",
    "Decomposition",
    "decompose",
]

PORT_OK = "NoPortErr"
PORT_ERR1 = "PortErr1"
PORT_ERR2 = "PortErr2"


@dataclass
class GadgetComponent:
    index: int
    nodes: list[int]
    prover: ProverResult
    is_valid: bool
    center: int | None
    port_nodes: dict[int, int]  # port index i (1-based) -> node

    def min_node(self) -> int:
        return self.nodes[0]


@dataclass
class VirtualGraph:
    """The contracted graph plus everything needed to map back."""

    graph: PortGraph
    ids: IdAssignment
    inputs: Labeling
    component_of_virtual: list[int | None]  # None for dummy stubs
    virtual_of_component: dict[int, int]
    # per virtual node: the (1-based) gadget port index behind each
    # virtual port, in virtual-port order (None rows for dummies)
    alpha: list[list[int] | None]
    # physical provenance: virtual half-edge -> (port node, port edge id)
    attachment: dict[HalfEdge, tuple[int, int]] = field(default_factory=dict)

    def num_real(self) -> int:
        return sum(1 for c in self.component_of_virtual if c is not None)


@dataclass
class Decomposition:
    graph: PortGraph
    inputs: Labeling
    family: GadgetFamily
    components: list[GadgetComponent]
    component_of_node: dict[int, int]
    port_status: dict[int, str]  # only nodes with a Port tag
    virtual: VirtualGraph
    scope: GadgetScope


def _gadget_scope(graph: PortGraph, inputs: Labeling) -> GadgetScope:
    """Everything that is not explicitly a PortEdge belongs to the
    gadget layer (malformed tags are adversarial gadget edges)."""
    projection = GadgetProjection(graph, inputs)

    def in_scope(eid: int) -> bool:
        return edge_tag(inputs, eid) != PORTEDGE

    return GadgetScope(graph, projection, in_scope)  # type: ignore[arg-type]


def decompose(
    graph: PortGraph,
    inputs: Labeling,
    family: GadgetFamily,
    ids: IdAssignment,
    n_hint: int,
) -> Decomposition:
    """Analyze a Pi' instance; see the module docstring."""
    scope = _gadget_scope(graph, inputs)
    components: list[GadgetComponent] = []
    component_of_node: dict[int, int] = {}
    for nodes in scope.components():
        index = len(components)
        prover = family.prove(scope, nodes, n_hint)
        center = next((v for v in nodes if scope.role(v) == CENTER), None)
        port_nodes: dict[int, int] = {}
        for v in nodes:
            tag = scope.port_tag(v)
            if isinstance(tag, Port) and tag.i not in port_nodes:
                port_nodes[tag.i] = v
        components.append(
            GadgetComponent(
                index=index,
                nodes=nodes,
                prover=prover,
                is_valid=prover.is_valid,
                center=center,
                port_nodes=port_nodes,
            )
        )
        for v in nodes:
            component_of_node[v] = index

    # --- port status (constraints 3 and 4) --------------------------------
    def port_edges_at(v: int) -> list[int]:
        eids = []
        for port in range(graph.degree(v)):
            eid = graph.edge_id_at(v, port)
            if edge_tag(inputs, eid) == PORTEDGE:
                eids.append(eid)
        return eids

    port_status: dict[int, str] = {}
    for v in graph.nodes():
        tag = scope.port_tag(v)
        if not isinstance(tag, Port):
            continue
        eids = port_edges_at(v)
        if len(eids) != 1:
            port_status[v] = PORT_ERR2
            continue
        own_valid = components[component_of_node[v]].is_valid
        edge = graph.edge(eids[0])
        # resolve the far half-edge robustly (loops included)
        my_side = None
        for port in range(graph.degree(v)):
            if graph.edge_id_at(v, port) == eids[0]:
                my_side = HalfEdge(v, port)
                break
        far = edge.other_side(my_side)
        far_tag = scope.port_tag(far.node)
        far_valid = (
            isinstance(far_tag, Port)
            and components[component_of_node[far.node]].is_valid
        )
        if own_valid and far_valid:
            port_status[v] = PORT_OK
        else:
            port_status[v] = PORT_ERR1

    # --- virtual graph ------------------------------------------------------
    builder = GraphBuilder()
    component_of_virtual: list[int | None] = []
    virtual_of_component: dict[int, int] = {}
    alpha: list[list[int] | None] = []
    for component in components:
        if not component.is_valid:
            continue
        virtual = builder.add_node()
        component_of_virtual.append(component.index)
        virtual_of_component[component.index] = virtual
        alpha.append([])  # filled below in sorted port order

    # valid ports per virtual node, in increasing port-index order
    valid_ports: dict[int, list[tuple[int, int]]] = {}  # virtual -> [(i, node)]
    for v, status in port_status.items():
        if status != PORT_OK:
            continue
        comp = components[component_of_node[v]]
        if not comp.is_valid:  # PORT_OK implies valid, but stay defensive
            continue
        virtual = virtual_of_component[comp.index]
        tag = scope.port_tag(v)
        valid_ports.setdefault(virtual, []).append((tag.i, v))

    next_virtual_port: dict[int, int] = {}
    virtual_port_of_node: dict[int, tuple[int, int]] = {}
    for virtual, ports in valid_ports.items():
        ports.sort()
        alpha[virtual] = [i for i, _node in ports]
        for rank, (_i, node) in enumerate(ports):
            virtual_port_of_node[node] = (virtual, rank)
        next_virtual_port[virtual] = len(ports)

    attachment: dict[HalfEdge, tuple[int, int]] = {}
    seen_port_edges: set[int] = set()
    dummy_sides: list[tuple[HalfEdge, int]] = []
    edge_plan: list[tuple[HalfEdge, HalfEdge, int]] = []
    for v in sorted(virtual_port_of_node):
        virtual, rank = virtual_port_of_node[v]
        eid = port_edges_at(v)[0]
        if eid in seen_port_edges:
            continue
        seen_port_edges.add(eid)
        edge = graph.edge(eid)
        my_side = edge.a if edge.a.node == v else edge.b
        far = edge.other_side(my_side)
        my_half = HalfEdge(virtual, rank)
        attachment[my_half] = (v, eid)
        if far.node in virtual_port_of_node and port_status.get(far.node) == PORT_OK:
            far_virtual, far_rank = virtual_port_of_node[far.node]
            far_half = HalfEdge(far_virtual, far_rank)
            attachment[far_half] = (far.node, eid)
            edge_plan.append((my_half, far_half, eid))
        else:
            dummy_sides.append((my_half, eid))

    dummy_virtuals = []
    for my_half, eid in dummy_sides:
        dummy = builder.add_node()
        component_of_virtual.append(None)
        alpha.append(None)
        dummy_virtuals.append(dummy)
        edge_plan.append((my_half, HalfEdge(dummy, 0), eid))

    for a, b, eid in edge_plan:
        builder.add_edge(a.node, b.node, u_port=a.port, v_port=b.port)

    virtual_graph = builder.build()

    # identifiers: the smallest real id inside each gadget; dummies get
    # fresh ids above everything
    id_list = []
    for virtual, comp_index in enumerate(component_of_virtual):
        if comp_index is None:
            id_list.append(None)
        else:
            comp = components[comp_index]
            id_list.append(min(ids.of(v) for v in comp.nodes))
    next_free = (max((i for i in id_list if i is not None), default=0)) + 1
    taken = {i for i in id_list if i is not None}
    for virtual, value in enumerate(id_list):
        if value is None:
            while next_free in taken:
                next_free += 1
            id_list[virtual] = next_free
            taken.add(next_free)
            next_free += 1
    virtual_ids = IdAssignment(id_list)

    # virtual inputs: Pi-layer labels recovered per constraint 5/6
    virtual_input_labeling = Labeling(virtual_graph)
    for virtual, comp_index in enumerate(component_of_virtual):
        if comp_index is None:
            continue
        comp = components[comp_index]
        port1 = comp.port_nodes.get(1)
        if port1 is not None:
            virtual_input_labeling.set_node(virtual, pi_part(inputs.node(port1)))
    for edge in virtual_graph.edges():
        for side in (edge.a, edge.b):
            if side in attachment:
                node, eid = attachment[side]
                virtual_input_labeling.set_edge(edge.eid, pi_part(inputs.edge(eid)))
                my_side = None
                for port in range(graph.degree(node)):
                    if graph.edge_id_at(node, port) == eid:
                        my_side = HalfEdge(node, port)
                        break
                virtual_input_labeling.set_half(side, pi_part(inputs.half(my_side)))

    virtual = VirtualGraph(
        graph=virtual_graph,
        ids=virtual_ids,
        inputs=virtual_input_labeling,
        component_of_virtual=component_of_virtual,
        virtual_of_component=virtual_of_component,
        alpha=alpha,
        attachment=attachment,
    )
    return Decomposition(
        graph=graph,
        inputs=inputs,
        family=family,
        components=components,
        component_of_node=component_of_node,
        port_status=port_status,
        virtual=virtual,
        scope=scope,
    )
