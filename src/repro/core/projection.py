"""Label projections between the Pi' layer and the gadget layer.

Pi' input labels are pairs ``(pi_input, gadget_input)`` (Section 3.3).
The gadget machinery of Section 4 (checker, prover, Psi) reads plain
gadget labels; :class:`GadgetProjection` adapts a padded labeling to
that interface by projecting the gadget component, leaving anything
malformed as-is so the checker can flag it.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.padding import GADEDGE, PORTEDGE, PaddedInput
from repro.lcl.assignment import Labeling
from repro.lcl.labels import EMPTY
from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["GadgetProjection", "edge_tag", "pi_part", "gadget_part"]


def pi_part(label: Hashable) -> Hashable:
    return label.pi if isinstance(label, PaddedInput) else EMPTY


def gadget_part(label: Hashable) -> Hashable:
    return label.gadget if isinstance(label, PaddedInput) else label


def edge_tag(inputs: Labeling, eid: int) -> Hashable:
    """The GadEdge/PortEdge tag of an edge (EMPTY when malformed)."""
    label = inputs.edge(eid)
    tag = gadget_part(label)
    return tag if tag in (GADEDGE, PORTEDGE) else EMPTY


class GadgetProjection:
    """A read-only Labeling view exposing the gadget layer of Pi' inputs.

    Quacks like :class:`repro.lcl.assignment.Labeling` for the read
    methods the gadget scope/checker/prover use.
    """

    def __init__(self, graph: PortGraph, padded_inputs: Labeling):
        self.graph = graph
        self._inputs = padded_inputs

    def node(self, v: int) -> Hashable:
        return gadget_part(self._inputs.node(v))

    def edge(self, eid: int) -> Hashable:
        return gadget_part(self._inputs.edge(eid))

    def half(self, side: HalfEdge) -> Hashable:
        return gadget_part(self._inputs.half(side))

    def half_at(self, v: int, port: int) -> Hashable:
        return gadget_part(self._inputs.half_at(v, port))
