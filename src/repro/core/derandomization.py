"""The derandomization connection (paper, "Discussion and open questions").

Ghaffari, Harris and Kuhn [12] show that for LCLs any randomized
algorithm with complexity R(n) yields a deterministic one with

    D(n) = O( R(n) * ND(n) + R(n) * log^2 n ),

where ND(n) is the deterministic complexity of computing a
(log n, log n)-network decomposition.  Two consequences the paper
draws, both made computable here:

* with the best known bound ND(n) = 2^O(sqrt(log n)) (Panconesi and
  Srinivasan [21]), every gap D/R is capped at 2^O(sqrt(log n));
* conversely, any LCL with D(n)/R(n) = omega(log^2 n) would imply a
  superlogarithmic lower bound for network decomposition — the open
  question the paper closes with.

``implied_nd_lower_bound`` turns a measured (D, R) pair into the
network-decomposition lower bound it would certify; the family of this
paper sits safely below the threshold (ratio Theta(log / loglog)), and
the tests pin that down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ghk_deterministic_upper",
    "panconesi_srinivasan_nd",
    "implied_nd_lower_bound",
    "GapClassification",
    "classify_gap",
]


def _log(n: float) -> float:
    return math.log2(max(n, 2.0))


def panconesi_srinivasan_nd(n: int, constant: float = 1.0) -> float:
    """The best known deterministic network-decomposition bound,
    2^(c * sqrt(log n)) [21]."""
    return 2.0 ** (constant * math.sqrt(_log(n)))


def ghk_deterministic_upper(
    rand_rounds: float, n: int, nd_rounds: float | None = None
) -> float:
    """D(n) = O(R * ND + R * log^2 n) [12]; ND defaults to [21]."""
    if nd_rounds is None:
        nd_rounds = panconesi_srinivasan_nd(n)
    return rand_rounds * nd_rounds + rand_rounds * _log(n) ** 2


def implied_nd_lower_bound(det_rounds: float, rand_rounds: float, n: int) -> float:
    """The ND(n) lower bound a measured (D, R) pair would certify.

    Rearranging D <= c (R * ND + R log^2 n):  ND >= D/R - log^2 n (up
    to constants).  Non-positive values mean the gap is too small to
    say anything about network decomposition — which is exactly where
    the problems constructed in this paper live.
    """
    if rand_rounds <= 0:
        raise ValueError("rand_rounds must be positive")
    return det_rounds / rand_rounds - _log(n) ** 2


@dataclass(frozen=True)
class GapClassification:
    ratio: float
    reference_log: float
    reference_log_squared: float
    kind: str  # "none" | "subexponential" | "superlog2" | "exponential-scale"

    def implies_nd_bound(self) -> bool:
        return self.kind in ("superlog2", "exponential-scale")


def classify_gap(det_rounds: float, rand_rounds: float, n: int) -> GapClassification:
    """Place a measured gap on the paper's map.

    * ``none`` — ratio O(1): randomness does not help;
    * ``subexponential`` — ratio grows but stays O(log^2 n): the regime
      this paper populates (its family sits at Theta(log/loglog));
    * ``superlog2`` — ratio omega(log^2 n): would give a new network
      decomposition lower bound (open);
    * ``exponential-scale`` — ratio around 2^Theta(sqrt(log n)) or
      beyond: the sinkless-orientation-style exponential regime.
    """
    if rand_rounds <= 0:
        raise ValueError("rand_rounds must be positive")
    ratio = det_rounds / rand_rounds
    log_n = _log(n)
    if ratio <= 2.0:
        kind = "none"
    elif ratio <= log_n**2:
        kind = "subexponential"
    elif ratio < panconesi_srinivasan_nd(n, constant=2.0):
        kind = "superlog2"
    else:
        kind = "exponential-scale"
    return GapClassification(
        ratio=ratio,
        reference_log=log_n,
        reference_log_squared=log_n**2,
        kind=kind,
    )
