"""Hard instances for Pi' (Lemma 5) and the simulation reduction.

The lower-bound proof of Lemma 5 takes a worst-case base graph H with
``f(n)`` nodes, pads every node with the *same* gadget of ~``n/f(n)``
nodes, and tops the result up with isolated nodes to exactly ``n``.
With the paper's choice ``f(x) = floor(sqrt(x))`` (Section 5), both
factors of the ``T * d`` product are maximized simultaneously.

``simulate_padded_algorithm`` is the executable version of the
reduction inside the proof: it turns any solver for Pi' into a solver
for Pi by padding the input, running the Pi' solver, and reading the
virtual solution back off the port lists — with the round cost scaled
down by the measured gadget depth.  Tests use it to confirm the
transfer argument end-to-end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.padded_problem import PaddedOutput, PaddedProblem
from repro.core.padding import PaddedGraph, pad_graph
from repro.gadgets.family import LogGadgetFamily
from repro.lcl.assignment import Labeling
from repro.local.algorithm import Instance, LocalAlgorithm, RunResult
from repro.local.graphs import HalfEdge, PortGraph
from repro.local.identifiers import IdAssignment

__all__ = ["paper_f", "HardInstance", "hard_instance", "simulate_padded_algorithm"]


def paper_f(x: int) -> int:
    """The balance function f(x) = floor(sqrt(x)) of Section 5."""
    if x < 0:
        raise ValueError("x must be non-negative")
    return math.isqrt(x)


@dataclass
class HardInstance:
    """A Lemma 5 instance: padded worst case plus isolated filler."""

    padded: PaddedGraph
    graph: PortGraph  # padded graph including the isolated filler nodes
    inputs: Labeling
    base_graph: PortGraph
    gadget_height: int
    target_n: int

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes


def hard_instance(
    base_graph: PortGraph,
    family: LogGadgetFamily,
    target_n: int,
    base_inputs: Labeling | None = None,
) -> HardInstance:
    """Pad a worst-case base graph per the Lemma 5 recipe.

    ``base_graph`` plays H (it should have ~``f(target_n)`` nodes and be
    hard for the base problem); each node receives the largest
    equal-height gadget that keeps the total within ``target_n``;
    isolated nodes pad the count to exactly ``target_n``.
    """
    if base_graph.num_nodes == 0:
        raise ValueError("the base graph must be non-empty")
    if base_graph.max_degree > family.delta:
        raise ValueError("base degree exceeds the family's Delta")
    budget = target_n // base_graph.num_nodes
    if budget < family.min_size():
        raise ValueError(
            f"target_n={target_n} leaves only {budget} nodes per gadget; "
            f"the family needs at least {family.min_size()}"
        )
    from repro.gadgets.build import gadget_size

    height = family.height_for(budget)
    while height > 2 and gadget_size(family.delta, height) > budget:
        height -= 1
    gadget = family.member_with_height(height)
    padded = pad_graph(
        base_graph, [gadget] * base_graph.num_nodes, base_inputs
    )
    filler = target_n - padded.graph.num_nodes
    if filler < 0:
        raise AssertionError("gadget sizing must fit in the budget")
    full_graph = _append_isolated(padded.graph, filler)
    return HardInstance(
        padded=padded,
        graph=full_graph,
        inputs=_rehome(padded.inputs, full_graph),
        base_graph=base_graph,
        gadget_height=height,
        target_n=target_n,
    )


def _append_isolated(graph: PortGraph, count: int) -> PortGraph:
    edges = [(e.a, e.b) for e in graph.edges()]
    return PortGraph(graph.num_nodes + count, edges)


def _rehome(labeling: Labeling, graph: PortGraph) -> Labeling:
    fresh = Labeling(graph)
    for kind, key, label in labeling.items():
        if kind == "node":
            fresh.set_node(key, label)
        elif kind == "edge":
            fresh.set_edge(key, label)
        else:
            fresh.set_half(key, label)
    return fresh


def simulate_padded_algorithm(
    padded_problem: PaddedProblem,
    padded_solver: LocalAlgorithm,
    family: LogGadgetFamily,
    base_instance: Instance,
    target_n: int,
) -> tuple[RunResult, RunResult]:
    """The Lemma 5 reduction, executably.

    Runs the Pi' solver on the padded version of ``base_instance`` and
    projects the solution back to the base graph.  Returns
    ``(base_result, padded_result)``; the base result's per-node radius
    is the padded radius divided by the gadget depth (the simulation
    overhead), rounded up.
    """
    instance = hard_instance(
        base_instance.graph, family, target_n, base_instance.inputs
    )
    padded = instance.padded
    ids = _lifted_ids(base_instance.ids, instance)
    padded_instance = Instance(
        graph=instance.graph,
        ids=ids,
        inputs=instance.inputs,
        n_hint=target_n,
        rng=base_instance.rng,
    )
    padded_result = padded_solver.solve(padded_instance)

    base_graph = base_instance.graph
    outputs = Labeling(base_graph)
    depth = 2 * instance.gadget_height
    base_radius = [0] * base_graph.num_nodes
    for v in base_graph.nodes():
        rep = padded_result.outputs.node(instance.padded.node_offset[v])
        if not isinstance(rep, PaddedOutput):
            raise ValueError("padded solver did not produce Pi' outputs")
        pad = rep.list
        outputs.set_node(v, pad.o_v)
        for port in range(base_graph.degree(v)):
            i = port + 1  # base port p attaches to gadget Port_{p+1}
            eid = base_graph.edge_id_at(v, port)
            if i - 1 < len(pad.o_e):
                outputs.set_edge(eid, pad.o_e[i - 1])
                outputs.set_half(HalfEdge(v, port), pad.o_b[i - 1])
        padded_nodes = instance.padded.gadget_nodes(v)
        worst = max(padded_result.node_radius[x] for x in padded_nodes)
        base_radius[v] = -(-worst // max(depth, 1))  # ceil division
    base_result = RunResult(
        outputs=outputs,
        node_radius=base_radius,
        extras={"padded_rounds": padded_result.rounds, "depth": depth},
    )
    return base_result, padded_result


def _lifted_ids(base_ids: IdAssignment, instance: HardInstance) -> IdAssignment:
    """Unique padded ids such that each gadget's minimum sits at its
    base node's id (so virtual ids equal base ids)."""
    n = instance.graph.num_nodes
    base_n = instance.base_graph.num_nodes
    stride = n + 1
    ids = [0] * n
    for v in instance.base_graph.nodes():
        nodes = list(instance.padded.gadget_nodes(v))
        anchor = base_ids.of(v)
        ids[nodes[0]] = anchor
        for offset, x in enumerate(nodes[1:], start=1):
            ids[x] = base_ids.max_id() + 1 + (v * stride + offset)
    filler_start = instance.padded.graph.num_nodes
    tail = base_ids.max_id() + 1 + base_n * stride + 1
    for x in range(filler_start, n):
        ids[x] = tail
        tail += 1
    return IdAssignment(ids)
