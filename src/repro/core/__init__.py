"""The paper's contribution: padded LCLs (Sections 3 and 5)."""

from repro.core.derandomization import (
    classify_gap,
    ghk_deterministic_upper,
    implied_nd_lower_bound,
    panconesi_srinivasan_nd,
)
from repro.core.family import FamilyLevel, build_family, pi_family_level
from repro.core.hard_instances import (
    HardInstance,
    hard_instance,
    paper_f,
    simulate_padded_algorithm,
)
from repro.core.padded_problem import (
    ERRMARK,
    PaddedOutput,
    PaddedProblem,
    PadList,
    verify_padded,
)
from repro.core.padded_solver import PaddedSolver
from repro.core.padding import GADEDGE, PORTEDGE, PaddedGraph, PaddedInput, pad_graph
from repro.core.projection import GadgetProjection, edge_tag, gadget_part, pi_part
from repro.core.theory import (
    deterministic_prediction,
    gap_ratio_prediction,
    randomized_prediction,
    theorem1_lower,
    theorem1_upper,
)
from repro.core.virtual_graph import (
    PORT_ERR1,
    PORT_ERR2,
    PORT_OK,
    Decomposition,
    GadgetComponent,
    VirtualGraph,
    decompose,
)

__all__ = [
    "classify_gap",
    "ghk_deterministic_upper",
    "implied_nd_lower_bound",
    "panconesi_srinivasan_nd",
    "FamilyLevel",
    "build_family",
    "pi_family_level",
    "HardInstance",
    "hard_instance",
    "paper_f",
    "simulate_padded_algorithm",
    "ERRMARK",
    "PaddedOutput",
    "PaddedProblem",
    "PadList",
    "verify_padded",
    "PaddedSolver",
    "GADEDGE",
    "PORTEDGE",
    "PaddedGraph",
    "PaddedInput",
    "pad_graph",
    "GadgetProjection",
    "edge_tag",
    "gadget_part",
    "pi_part",
    "deterministic_prediction",
    "gap_ratio_prediction",
    "randomized_prediction",
    "theorem1_lower",
    "theorem1_upper",
    "PORT_ERR1",
    "PORT_ERR2",
    "PORT_OK",
    "Decomposition",
    "GadgetComponent",
    "VirtualGraph",
    "decompose",
]
