"""The generic upper-bound algorithm for Pi' (Lemma 4).

The solver follows the paper's proof step by step:

1. run the prover V on every gadget component (O(d(n)) rounds);
2. derive the PortErr1/PortErr2/NoPortErr flags (constant extra radius);
3. contract the valid gadgets into the virtual graph and run the base
   solver for Pi on it, with the size hint ``n`` of the *padded* graph
   (the simulation argument of the proof);
4. translate the virtual solution back into the Sigma_list outputs and
   complete invalid gadgets with their proofs of error.

Radius accounting mirrors the simulation: a node ``x`` in a valid
gadget ``A`` is charged ``dist(x, center_A) + sim_radius(A)`` where
``sim_radius(A)`` bounds the physical radius needed to reconstruct the
virtual ball that the base algorithm consulted, computed from the real
center-to-center distances through the padding (the Theta(T * d)
dilation of Theorem 1, measured rather than assumed).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Hashable

from repro.core.padded_problem import (
    ERRMARK,
    PaddedOutput,
    PaddedProblem,
    PadList,
)
from repro.core.projection import pi_part
from repro.core.virtual_graph import PORT_OK, Decomposition, decompose
from repro.gadgets.labels import GADOK
from repro.lcl.assignment import Labeling
from repro.lcl.labels import BLANK, EMPTY
from repro.local.algorithm import Instance, LocalAlgorithm, RunResult
from repro.local.graphs import HalfEdge

__all__ = ["PaddedSolver"]


class PaddedSolver:
    """Solve Pi' given any solver for the base problem Pi."""

    def __init__(self, problem: PaddedProblem, base_solver: LocalAlgorithm):
        self.problem = problem
        self.base_solver = base_solver
        self.name = f"padded[{base_solver.name}]"
        self.randomized = base_solver.randomized

    # -- helpers ------------------------------------------------------------

    def _center_distances(
        self, decomposition: Decomposition
    ) -> tuple[dict[int, dict[int, int]], dict[int, int]]:
        """Per valid component: BFS distances from the center, and ecc."""
        dist_maps: dict[int, dict[int, int]] = {}
        eccs: dict[int, int] = {}
        scope = decomposition.scope
        for component in decomposition.components:
            if not component.is_valid or component.center is None:
                continue
            dist = {component.center: 0}
            frontier = deque([component.center])
            while frontier:
                x = frontier.popleft()
                for _p, _e, other, _l in scope.incidences(x):
                    if other not in dist:
                        dist[other] = dist[x] + 1
                        frontier.append(other)
            dist_maps[component.index] = dist
            eccs[component.index] = max(dist.values())
        return dist_maps, eccs

    def _simulation_radii(
        self,
        decomposition: Decomposition,
        base_result: RunResult,
        dist_maps: dict[int, dict[int, int]],
        eccs: dict[int, int],
    ) -> dict[int, int]:
        """Physical radius bound per *virtual* node (see module docstring)."""
        virtual = decomposition.virtual
        vg = virtual.graph
        # weighted center-to-center distances through the padding
        weights: dict[int, int] = {}
        for edge in vg.edges():
            total = 1
            for side in (edge.a, edge.b):
                att = virtual.attachment.get(side)
                if att is None:
                    continue  # dummy side: weight 1 covers the hop
                port_node, _eid = att
                comp_index = virtual.component_of_virtual[side.node]
                total += dist_maps[comp_index].get(port_node, 0)
            weights[edge.eid] = total

        sim_radius: dict[int, int] = {}
        for a in vg.nodes():
            comp_a = virtual.component_of_virtual[a]
            if comp_a is None:
                continue
            hops = max(base_result.node_radius[a], 1)
            # hop-limited Dijkstra over (node, hop) states
            best: dict[int, tuple[int, int]] = {a: (0, 0)}  # node -> (w, h)
            heap = [(0, 0, a)]
            reach = 0
            while heap:
                w, h, x = heapq.heappop(heap)
                if best.get(x, (1 << 60, 0))[0] < w:
                    continue
                comp_x = virtual.component_of_virtual[x]
                ecc = eccs.get(comp_x, 0) if comp_x is not None else 0
                reach = max(reach, w + ecc + 1)
                if h >= hops:
                    continue
                for port in range(vg.degree(x)):
                    eid = vg.edge_id_at(x, port)
                    y = vg.neighbor(x, port)
                    nw = w + weights[eid]
                    if nw < best.get(y, (1 << 60, 0))[0]:
                        best[y] = (nw, h + 1)
                        heapq.heappush(heap, (nw, h + 1, y))
            sim_radius[a] = reach
        return sim_radius

    # -- main ----------------------------------------------------------------

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        inputs = instance.inputs
        if inputs is None:
            raise ValueError("Pi' instances carry structured inputs")
        problem = self.problem
        delta = problem.delta

        decomposition = decompose(
            graph, inputs, problem.family, instance.ids, instance.n_hint
        )
        virtual = decomposition.virtual

        base_instance = Instance(
            graph=virtual.graph,
            ids=virtual.ids,
            inputs=virtual.inputs,
            n_hint=instance.n_hint,
            rng=instance.rng,
        )
        base_result = self.base_solver.solve(base_instance)

        outputs = Labeling(graph)
        # gadget-layer outputs: Psi labels on nodes/halves/edges, blanks
        # on port edges (constraints 1 and 2)
        psi_of: dict[int, Hashable] = {}
        for component in decomposition.components:
            for v in component.nodes:
                psi_of[v] = component.prover.outputs[v]
        for eid in range(graph.num_edges):
            edge = graph.edge(eid)
            if decomposition.scope.in_scope(eid):
                a_ok = psi_of.get(edge.a.node) == GADOK
                b_ok = psi_of.get(edge.b.node) == GADOK
                outputs.set_edge(eid, GADOK if a_ok and b_ok else ERRMARK)
                outputs.set_half(edge.a, psi_of.get(edge.a.node))
                outputs.set_half(edge.b, psi_of.get(edge.b.node))
            else:
                outputs.set_edge(eid, BLANK)
                outputs.set_half(edge.a, BLANK)
                outputs.set_half(edge.b, BLANK)

        # Sigma_list per component (constraints 5 and 6)
        empty = problem.empty_list()
        pad_of_component: dict[int, PadList] = {}
        for component in decomposition.components:
            if not component.is_valid:
                pad_of_component[component.index] = empty
                continue
            a = virtual.virtual_of_component[component.index]
            ranked = virtual.alpha[a] or []
            iota_e = [EMPTY] * delta
            iota_b = [EMPTY] * delta
            o_e = [EMPTY] * delta
            o_b = [EMPTY] * delta
            for rank, i in enumerate(ranked):
                side = HalfEdge(a, rank)
                port_node, port_eid = virtual.attachment[side]
                iota_e[i - 1] = pi_part(inputs.edge(port_eid))
                my_side = None
                for port in range(graph.degree(port_node)):
                    if graph.edge_id_at(port_node, port) == port_eid:
                        my_side = HalfEdge(port_node, port)
                        break
                iota_b[i - 1] = pi_part(inputs.half(my_side))
                o_e[i - 1] = base_result.outputs.edge(virtual.graph.edge_id_at(a, rank))
                o_b[i - 1] = base_result.outputs.half(side)
            port1 = component.port_nodes.get(1)
            iota_v = pi_part(inputs.node(port1)) if port1 is not None else EMPTY
            pad_of_component[component.index] = PadList(
                ports=frozenset(ranked),
                iota_v=iota_v,
                iota_e=tuple(iota_e),
                iota_b=tuple(iota_b),
                o_v=base_result.outputs.node(a),
                o_e=tuple(o_e),
                o_b=tuple(o_b),
            )

        for v in graph.nodes():
            comp_index = decomposition.component_of_node[v]
            pad = pad_of_component[comp_index]
            port_err = decomposition.port_status.get(v, PORT_OK)
            outputs.set_node(v, PaddedOutput(pad, port_err, psi_of[v]))

        # --- radius accounting ---------------------------------------------
        dist_maps, eccs = self._center_distances(decomposition)
        sim_radius = self._simulation_radii(
            decomposition, base_result, dist_maps, eccs
        )
        node_radius = [0] * graph.num_nodes
        for component in decomposition.components:
            for v in component.nodes:
                node_radius[v] = component.prover.node_radius[v]
        for component in decomposition.components:
            if not component.is_valid:
                continue
            a = virtual.virtual_of_component[component.index]
            reach = sim_radius.get(a, 0)
            dist = dist_maps[component.index]
            for v in component.nodes:
                node_radius[v] = max(node_radius[v], dist.get(v, 0) + reach)

        return RunResult(
            outputs=outputs,
            node_radius=node_radius,
            extras={
                "base_rounds": base_result.rounds,
                "base_extras": base_result.extras,
                "virtual_nodes": virtual.num_real(),
                "virtual_edges": virtual.graph.num_edges,
                "invalid_gadgets": sum(
                    1 for c in decomposition.components if not c.is_valid
                ),
                "max_gadget_ecc": max(eccs.values(), default=0),
            },
        )
