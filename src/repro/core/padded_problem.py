"""The padded problem Pi' (paper Section 3.3).

Given a base ne-LCL Pi and a (d, Delta)-gadget family, Pi' asks each
node to either take part in a locally checkable proof that its gadget
is invalid, or to contribute to a solution of Pi on the virtual graph
obtained by contracting the valid gadgets.  Output labels:

* every node: ``PaddedOutput(list=PadList(...), port_err, psi)`` —
  the Sigma_list tuple, the PortErr1/PortErr2/NoPortErr flag, and the
  node's Psi_G output;
* every edge / half-edge: ``BLANK`` on port edges, a Psi_G label on
  gadget edges (``GADOK`` or an error marker / pointer replication).

``verify_padded`` implements constraints 1-6 of Section 3.3 verbatim,
with two documented interpretive choices:

* Psi_G is checked in its constant-radius node-output form (Section
  4.4); the node-edge lowering of Section 4.6 lives in
  ``repro.gadgets.ne_encoding`` and is exercised separately.
* In constraint 6, the cross-edge comparisons for a port edge apply
  when the respective port indices are in the endpoints' S-sets (the
  paper's alpha-notation presumes this; when a port is not in S,
  constraints 3-5 already pin the inconsistency down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, NamedTuple

from repro.core.padding import GADEDGE, PORTEDGE
from repro.core.projection import edge_tag, gadget_part, pi_part
from repro.core.virtual_graph import (
    PORT_ERR1,
    PORT_ERR2,
    PORT_OK,
    _gadget_scope,
)
from repro.gadgets.family import GadgetFamily
from repro.gadgets.labels import GADOK, Port
from repro.gadgets.psi import verify_psi
from repro.lcl.assignment import Labeling
from repro.lcl.labels import BLANK, EMPTY
from repro.lcl.problem import NeLCL
from repro.lcl.verifier import Verdict, Violation
from repro.lcl.verifier import verify as lcl_verify
from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["PadList", "PaddedOutput", "ERRMARK", "PaddedProblem", "verify_padded"]

#: the Sigma^G_E,out marker for gadget edges inside invalid gadgets
ERRMARK = "PsiErr"


class PadList(NamedTuple):
    """The Sigma_list part of a node's output (Section 3.3).

    ``ports`` is the set S of valid port indices (1-based).  The iota
    fields copy the Pi-inputs of the gadget's interface (node input of
    Port_1, edge and half-edge inputs of the port edges); the ``o``
    fields carry the virtual node's Pi-outputs.  Arrays are indexed by
    port index - 1 and have length Delta.
    """

    ports: frozenset
    iota_v: Hashable
    iota_e: tuple
    iota_b: tuple
    o_v: Hashable
    o_e: tuple
    o_b: tuple


class PaddedOutput(NamedTuple):
    list: PadList
    port_err: str  # PortErr1 | PortErr2 | NoPortErr
    psi: Hashable  # GADOK | ERROR | Pointer


def _is_lerr(label: Hashable) -> bool:
    """Is this element output from L_Err (an error label of Psi_G)?"""
    if label in (GADOK, BLANK, EMPTY):
        return False
    return True


def empty_pad_list(delta: int) -> PadList:
    return PadList(
        ports=frozenset(),
        iota_v=EMPTY,
        iota_e=(EMPTY,) * delta,
        iota_b=(EMPTY,) * delta,
        o_v=EMPTY,
        o_e=(EMPTY,) * delta,
        o_b=(EMPTY,) * delta,
    )


@dataclass
class PaddedProblem:
    """Pi' = pad(Pi, G).  Carries the base problem and the family.

    ``base`` is either an ne-LCL or another :class:`PaddedProblem`
    (the Section 5 recursion).
    """

    base: "NeLCL | PaddedProblem"
    family: GadgetFamily
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"padded({self.base.name}, {self.family.name})"

    @property
    def delta(self) -> int:
        return self.family.delta

    def empty_list(self) -> PadList:
        return empty_pad_list(self.delta)

    def verify(
        self, graph: PortGraph, inputs: Labeling, outputs: Labeling
    ) -> Verdict:
        return verify_padded(self, graph, inputs, outputs)


def _psi_outputs_of_component(
    outputs: Labeling, component: list[int]
) -> dict[int, Hashable]:
    result = {}
    for v in component:
        label = outputs.node(v)
        result[v] = label.psi if isinstance(label, PaddedOutput) else None
    return result


def verify_padded(
    problem: PaddedProblem,
    graph: PortGraph,
    inputs: Labeling,
    outputs: Labeling,
    max_violations: int | None = None,
) -> Verdict:
    """Check constraints 1-6 of Section 3.3."""
    delta = problem.delta
    violations: list[Violation] = []

    def add(kind: str, where, message: str) -> bool:
        violations.append(Violation(kind, where, message))
        return max_violations is not None and len(violations) >= max_violations

    # --- output shape -------------------------------------------------------
    for v in graph.nodes():
        label = outputs.node(v)
        if not isinstance(label, PaddedOutput) or not isinstance(label.list, PadList):
            add("domain", ("node", v), f"node output {label!r} is not a PaddedOutput")
            return Verdict(False, violations)
        if label.port_err not in (PORT_OK, PORT_ERR1, PORT_ERR2):
            add("domain", ("node", v), f"bad port flag {label.port_err!r}")
        pad = label.list
        if not (
            len(pad.iota_e) == len(pad.iota_b) == len(pad.o_e) == len(pad.o_b) == delta
        ):
            add("domain", ("node", v), "Sigma_list arrays must have length delta")

    # --- constraint 1: port edges blank, gadget edges Psi-labeled ---------
    for eid in range(graph.num_edges):
        tag = edge_tag(inputs, eid)
        label = outputs.edge(eid)
        edge = graph.edge(eid)
        halves = (outputs.half(edge.a), outputs.half(edge.b))
        if tag == PORTEDGE:
            if label is not BLANK:
                add("edge", eid, "port edge must output BLANK")
            for side_label in halves:
                if side_label is not BLANK:
                    add("edge", eid, "port half-edge must output BLANK")
        else:
            # GadEdge (or malformed tag, treated as gadget edge)
            if label is BLANK:
                add("edge", eid, "gadget edge must carry a Psi_G label")
            for side_label in halves:
                if side_label is BLANK:
                    add("edge", eid, "gadget half-edge must carry a Psi_G label")

    # --- constraint 2: Psi_G holds on every gadget component ---------------
    scope = _gadget_scope(graph, inputs)
    components = scope.components()
    component_of_node: dict[int, int] = {}
    for index, component in enumerate(components):
        for v in component:
            component_of_node[v] = index
        psi_outputs = _psi_outputs_of_component(outputs, component)
        for violation in verify_psi(scope, component, psi_outputs, delta):
            if add("node", violation.node, f"Psi_G: {violation.message}"):
                return Verdict(False, violations)
        # replication: a gadget half-edge carries its node's Psi label;
        # a gadget edge is GadOk exactly when both endpoints are
        for v in component:
            for port, eid, other, _label in scope.incidences(v):
                half_label = outputs.half(HalfEdge(v, port))
                if half_label != psi_outputs.get(v):
                    add(
                        "node",
                        v,
                        "gadget half-edge must replicate the node's Psi label "
                        f"({half_label!r} vs {psi_outputs.get(v)!r})",
                    )
                edge_label = outputs.edge(eid)
                expected_ok = (
                    psi_outputs.get(v) == GADOK and psi_outputs.get(other) == GADOK
                )
                if expected_ok != (edge_label == GADOK):
                    add(
                        "edge",
                        eid,
                        "gadget edge must be GadOk iff both endpoints are GadOk",
                    )

    # --- constraints 3 and 4: port flags ------------------------------------
    def port_edge_sides(v: int) -> list[HalfEdge]:
        sides = []
        for port in range(graph.degree(v)):
            eid = graph.edge_id_at(v, port)
            if edge_tag(inputs, eid) == PORTEDGE:
                sides.append(HalfEdge(v, port))
        return sides

    def port_tag_of(v: int) -> Hashable:
        return scope.port_tag(v)

    for v in graph.nodes():
        label: PaddedOutput = outputs.node(v)
        tag = port_tag_of(v)
        is_port = isinstance(tag, Port)
        n_port_edges = len(port_edge_sides(v))
        must_err2 = is_port and n_port_edges != 1
        if must_err2 != (label.port_err == PORT_ERR2):
            add(
                "node",
                v,
                f"constraint 3: PortErr2 iff a port with {n_port_edges} port edges",
            )

    for eid in range(graph.num_edges):
        if edge_tag(inputs, eid) != PORTEDGE:
            continue
        edge = graph.edge(eid)
        for side in (edge.a, edge.b):
            u = side.node
            far = edge.other_side(side)
            u_tag = port_tag_of(u)
            if not isinstance(u_tag, Port):
                continue
            u_out: PaddedOutput = outputs.node(u)
            far_out: PaddedOutput = outputs.node(far.node)
            far_tag = port_tag_of(far.node)
            both_ports = isinstance(far_tag, Port)
            both_gadok = u_out.psi == GADOK and far_out.psi == GADOK
            if both_ports and both_gadok:
                if u_out.port_err == PORT_ERR1:
                    add("edge", eid, "constraint 4: PortErr1 between GadOk ports")
            if (not both_ports) or _is_lerr(u_out.psi) or _is_lerr(far_out.psi):
                if u_out.port_err == PORT_OK:
                    add(
                        "edge",
                        eid,
                        "constraint 4: NoPortErr despite a NoPort/LErr far side",
                    )

    # --- constraint 5 (label level): S and the iota copies ------------------
    for v in graph.nodes():
        label = outputs.node(v)
        # LErr escape: any incident element (node psi, incident gadget
        # edges/halves) with an error label satisfies the node for free.
        incident_labels = [label.psi]
        for port in range(graph.degree(v)):
            eid = graph.edge_id_at(v, port)
            incident_labels.append(outputs.edge(eid))
            incident_labels.append(outputs.half(HalfEdge(v, port)))
        if any(_is_lerr(x) for x in incident_labels):
            continue
        pad: PadList = label.list
        tag = port_tag_of(v)
        if isinstance(tag, Port):
            in_s = tag.i in pad.ports
            if in_s != (label.port_err == PORT_OK):
                add("node", v, "constraint 5: Port_i in S iff NoPortErr")
            if tag.i == 1 and pad.iota_v != pi_part(inputs.node(v)):
                add("node", v, "constraint 5: iota_V must copy Port_1's Pi input")
            if in_s:
                for side in port_edge_sides(v):
                    eid = graph.edge_id_at(side.node, side.port)
                    if pad.iota_e[tag.i - 1] != pi_part(inputs.edge(eid)):
                        add("node", v, "constraint 5: iota_E must copy the port edge input")
                    if pad.iota_b[tag.i - 1] != pi_part(inputs.half(side)):
                        add("node", v, "constraint 5: iota_B must copy the half input")

    # --- constraint 6 (label level): list agreement --------------------------
    for eid in range(graph.num_edges):
        edge = graph.edge(eid)
        u, w = edge.a.node, edge.b.node
        u_out: PaddedOutput = outputs.node(u)
        w_out: PaddedOutput = outputs.node(w)
        element_labels = [
            u_out.psi,
            w_out.psi,
            outputs.edge(eid),
            outputs.half(edge.a),
            outputs.half(edge.b),
        ]
        if any(_is_lerr(x) for x in element_labels):
            continue
        tag = edge_tag(inputs, eid)
        if tag == GADEDGE:
            if u_out.list != w_out.list:
                add("edge", eid, "constraint 6: Sigma_list differs inside a gadget")
            continue
        if tag != PORTEDGE:
            continue
        u_tag, w_tag = port_tag_of(u), port_tag_of(w)
        if not (isinstance(u_tag, Port) and isinstance(w_tag, Port)):
            continue
        i, j = u_tag.i, w_tag.i
        u_pad, w_pad = u_out.list, w_out.list
        if i not in u_pad.ports or j not in w_pad.ports:
            continue  # pinned down by constraints 3-5 (see module docstring)
        if u_pad.iota_e[i - 1] != w_pad.iota_e[j - 1]:
            add("edge", eid, "constraint 6: iota_E disagrees across the port edge")
        if u_pad.o_e[i - 1] != w_pad.o_e[j - 1]:
            add("edge", eid, "constraint 6: o_E disagrees across the port edge")
        if u_pad.o_b[i - 1] is EMPTY and i in u_pad.ports:
            add("edge", eid, "constraint 6: missing o_B on a valid port")

    # --- constraints 5/6 (solution level): Pi holds on the contraction ------
    violations.extend(_verify_contraction(problem, graph, inputs, outputs))

    return Verdict(ok=not violations, violations=violations)


def _verify_contraction(
    problem: PaddedProblem,
    graph: PortGraph,
    inputs: Labeling,
    outputs: Labeling,
) -> list[Violation]:
    """Check that the Sigma_list outputs solve Pi on the virtual graph.

    This is the semantic reading of the last bullets of constraints 5
    and 6: reconstruct the virtual graph by contracting the valid
    gadgets, read the virtual solution out of the Sigma_list labels,
    and run the base problem's verifier on it.  For an ne-LCL base this
    is equivalent to evaluating the hypothetical node and edge
    configurations the paper writes down; for a padded base it is the
    recursion that makes Pi_3 and beyond checkable.

    Dummy stubs standing in for dangling port edges are exempt (their
    Pi'-edge constraints are satisfied through the LErr escape on the
    far side), so violations located at them are filtered out.
    """
    from repro.core.virtual_graph import decompose
    from repro.local.identifiers import sequential_ids

    decomposition = decompose(
        graph, inputs, problem.family, sequential_ids(graph.num_nodes), graph.num_nodes
    )
    virtual = decomposition.virtual
    vg = virtual.graph
    virtual_outputs = Labeling(vg)
    for a in vg.nodes():
        comp_index = virtual.component_of_virtual[a]
        if comp_index is None:
            continue
        component = decomposition.components[comp_index]
        rep = outputs.node(component.min_node())
        if not isinstance(rep, PaddedOutput):
            continue
        pad = rep.list
        virtual_outputs.set_node(a, pad.o_v)
        ranked = virtual.alpha[a] or []
        for rank, i in enumerate(ranked):
            if i - 1 < len(pad.o_e):
                virtual_outputs.set_edge(vg.edge_id_at(a, rank), pad.o_e[i - 1])
                virtual_outputs.set_half(HalfEdge(a, rank), pad.o_b[i - 1])

    dummies = {
        a for a in vg.nodes() if virtual.component_of_virtual[a] is None
    }
    dangling_eids = {
        vg.edge_id_at(a, 0) for a in dummies
    }

    def located_at_exempt(violation: Violation) -> bool:
        where = violation.where
        if violation.kind == "node" and where in dummies:
            return True
        if violation.kind == "edge" and where in dangling_eids:
            return True
        if violation.kind == "domain" and isinstance(where, tuple):
            kind, key = where
            if kind == "node" and key in dummies:
                return True
            if kind == "edge" and key in dangling_eids:
                return True
            if kind == "half" and getattr(key, "node", None) in dummies:
                return True
        return False

    base = problem.base
    if isinstance(base, PaddedProblem):
        verdict = base.verify(vg, virtual.inputs, virtual_outputs)
    else:
        verdict = lcl_verify(base, vg, virtual.inputs, virtual_outputs)
    out = []
    for violation in verdict.violations:
        if located_at_exempt(violation):
            continue
        out.append(
            Violation(
                "virtual",
                violation.where,
                f"contraction violates {base.name}: {violation.message}",
            )
        )
    return out
