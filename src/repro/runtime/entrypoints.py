"""Importable references into the registry for declarative specs.

The engine's :class:`~repro.engine.spec.ExperimentSpec` names solver,
generator, and verifier as ``"module:attr"`` strings so trials can be
content-hashed and shipped to worker processes.  This module is the
bridge between that string world and the registry: a module-level
``__getattr__`` resolves

* ``solver__<name>``   -> the registered solver's zero-arg factory,
* ``family__<name>``   -> the registered family's instance builder,
* ``verifier__<name>`` -> the registered problem's verifier,

so ``resolve_ref("repro.runtime.entrypoints:solver__mis-luby")`` works
in any process — importing this module bootstraps the catalogs first.
Registry-generated specs therefore never hand-maintain per-experiment
factory or verifier functions.
"""

from __future__ import annotations

from typing import Any

from repro.runtime import registry

__all__ = ["family_ref", "parse_entrypoint", "solver_ref", "verifier_ref"]

_MODULE = __name__


def parse_entrypoint(ref: str) -> tuple[str, str] | None:
    """Invert a spec reference back into ``(kind, registered name)``.

    Returns ``("solver" | "family" | "verifier", name)`` when ``ref``
    points into this module, ``None`` for any other reference (legacy
    hand-written specs) — which lets batch drivers recover the registry
    entry behind a ref without resolving or materializing anything.
    """
    module, _, attr = ref.partition(":")
    if module != _MODULE:
        return None
    kind, sep, slug = attr.partition("__")
    if not sep or not slug or kind not in ("solver", "family", "verifier"):
        return None
    return kind, slug


def solver_ref(name: str) -> str:
    """The spec-ready reference of a registered solver's factory."""
    registry.solver(name)  # fail fast on unknown names
    return f"{_MODULE}:solver__{name}"


def family_ref(name: str) -> str:
    """The spec-ready reference of a registered family's builder."""
    registry.family(name)
    return f"{_MODULE}:family__{name}"


def verifier_ref(name: str) -> str:
    """The spec-ready reference of a registered problem's verifier."""
    registry.problem(name)
    return f"{_MODULE}:verifier__{name}"


def __getattr__(name: str) -> Any:
    kind, sep, slug = name.partition("__")
    if not sep or not slug:
        raise AttributeError(f"module {_MODULE!r} has no attribute {name!r}")
    if kind == "solver":
        return registry.solver(slug).factory
    if kind == "family":
        return registry.family(slug).builder
    if kind == "verifier":
        from repro.runtime.driver import verifier_for

        return verifier_for(registry.problem(slug))
    raise AttributeError(f"module {_MODULE!r} has no attribute {name!r}")
