"""The unified execution driver: one entry point for every trial.

``Runtime.run(problem, solver, family, n, seed)`` is the single path
every (problem x solver x family) combination goes through:

1. build the instance from the registered family;
2. dispatch the registered solver through the adapter — directly for
   :class:`~repro.local.algorithm.LocalAlgorithm` objects, via
   :class:`~repro.local.simulator.SyncEngine` for round-based node
   programs, via :class:`~repro.local.views.ViewOracle` for view-based
   programs — landing in one :class:`~repro.local.algorithm.RunResult`
   shape regardless of the execution model;
3. run the problem's verifier (the ne-LCL checker of
   :mod:`repro.lcl.verifier` by default, the problem's own ``verify``
   for padded problems, or a registered custom check);
4. return a :class:`TrialRecord` with outputs, per-node radii, round
   complexity, verification status, and wall time.

The engine's experiment specs, the CLI, and the conformance suite all
reduce to calls into this driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.lcl.assignment import Labeling
from repro.lcl.problem import NeLCL
from repro.lcl.verifier import verify as lcl_verify
from repro.local.algorithm import Instance, RunResult
from repro.local.simulator import SyncEngine
from repro.local.views import ViewOracle
from repro.runtime import registry
from repro.runtime.registry import FamilyInfo, ProblemInfo, SolverInfo

__all__ = ["Runtime", "TrialRecord", "dispatch_solver", "verifier_for"]


@dataclass
class TrialRecord:
    """Everything one trial produced, in one flat record."""

    problem: str
    solver: str
    family: str
    n: int
    actual_n: int
    seed: int
    rounds: int
    node_radius: list[int]
    outputs: Labeling
    verified: bool | None  # None = verification skipped
    wall_time: float
    extras: dict = field(default_factory=dict)

    def summary(self) -> str:
        status = {True: "ok", False: "FAILED", None: "unverified"}[self.verified]
        return (
            f"{self.problem} / {self.solver} @ {self.family} "
            f"n={self.actual_n} seed={self.seed}: {self.rounds} rounds, "
            f"{status}, {self.wall_time * 1000:.1f}ms"
        )


def dispatch_solver(solver_obj: Any, instance: Instance) -> RunResult:
    """Run a solver object on an instance, whatever its execution model.

    Three shapes are accepted, checked in order:

    * ``solve(instance) -> RunResult`` — the repo-wide
      :class:`~repro.local.algorithm.LocalAlgorithm` protocol (covers
      solvers that drive ``SyncEngine``/``ViewOracle`` internally);
    * ``node_factory(v, instance)`` plus ``finish(instance, engine_result)
      -> Labeling`` — a round-based node program; the adapter runs it on
      :class:`~repro.local.simulator.SyncEngine` and charges each node
      the round it halted at;
    * ``run_views(oracle, instance) -> Labeling`` — a view-based
      program; the adapter meters it through
      :class:`~repro.local.views.ViewOracle` and charges each node the
      largest radius it consulted.
    """
    if hasattr(solver_obj, "solve"):
        return solver_obj.solve(instance)
    if hasattr(solver_obj, "node_factory"):
        engine = SyncEngine(instance, solver_obj.node_factory)
        engine_result = engine.run()
        outputs = solver_obj.finish(instance, engine_result)
        return RunResult(
            outputs=outputs,
            node_radius=engine_result.node_radius(),
            extras={"engine_rounds": engine_result.rounds},
        )
    if hasattr(solver_obj, "run_views"):
        oracle = ViewOracle(instance.graph)
        outputs = solver_obj.run_views(oracle, instance)
        return RunResult(
            outputs=outputs,
            node_radius=oracle.node_radii(),
            extras={"view_rounds": oracle.rounds()},
        )
    raise TypeError(
        f"solver {solver_obj!r} implements none of the adapter protocols "
        "(solve / node_factory+finish / run_views)"
    )


def verifier_for(problem_info: ProblemInfo) -> Callable[[Instance, RunResult], None]:
    """An ``(instance, result) -> None`` check for a registered problem.

    Preference order: the problem's registered custom verifier, the
    problem object's own ``verify(graph, inputs, outputs)`` (padded
    problems), then the ne-LCL checker of :mod:`repro.lcl.verifier`.
    Raises ``AssertionError`` with the verdict summary on rejection.
    """
    if problem_info.verifier is not None:
        return problem_info.verifier

    def check(instance: Instance, result: RunResult) -> None:
        problem_obj = problem_info.materialize()
        inputs = instance.inputs
        if inputs is None:
            inputs = Labeling(instance.graph)
        own_verify = getattr(problem_obj, "verify", None)
        if callable(own_verify) and not isinstance(problem_obj, NeLCL):
            verdict = own_verify(instance.graph, inputs, result.outputs)
        else:
            verdict = lcl_verify(problem_obj, instance.graph, inputs, result.outputs)
        assert verdict.ok, (
            f"{problem_info.name}: {verdict.summary()}"
        )

    return check


class Runtime:
    """Registry-driven execution of (problem, solver, family) triples."""

    def __init__(self) -> None:
        registry.ensure_registered()

    # -- catalog passthrough (the driver is the natural API surface) ----

    def triples(self) -> list[tuple[ProblemInfo, SolverInfo, FamilyInfo]]:
        """The validated sound cross-product (see the registry)."""
        return registry.sound_triples()

    # -- the three stages ----------------------------------------------

    def build_instance(self, family: str, n: int, seed: int = 0) -> Instance:
        """Build one instance of a registered family."""
        return registry.family(family).builder(n, seed)

    def solve(self, solver: str, instance: Instance) -> RunResult:
        """Instantiate a registered solver and dispatch it on an instance."""
        return dispatch_solver(registry.solver(solver).factory(), instance)

    def verify(
        self, problem: str, instance: Instance, result: RunResult
    ) -> bool:
        """True iff the registered verifier accepts the result."""
        try:
            verifier_for(registry.problem(problem))(instance, result)
        except AssertionError:
            return False
        return True

    # -- the unified entry point ---------------------------------------

    def run(
        self,
        problem: str,
        solver: str,
        family: str,
        n: int,
        seed: int = 0,
        verify: bool = True,
        check_sound: bool = True,
    ) -> TrialRecord:
        """Build, solve, verify; everything the trial produced in one record.

        ``check_sound`` rejects combinations the registry does not vouch
        for: the solver must target ``problem`` and declare soundness on
        ``family``.  Pass ``False`` to probe unsound combinations (e.g.
        corruption experiments) — the verifier still reports the truth.
        """
        problem_info = registry.problem(problem)
        solver_info = registry.solver(solver)
        family_info = registry.family(family)
        if check_sound:
            if solver_info.problem != problem_info.name:
                raise ValueError(
                    f"solver {solver!r} solves {solver_info.problem!r}, "
                    f"not {problem!r}"
                )
            if not solver_info.sound_on(family_info.name):
                raise ValueError(
                    f"solver {solver!r} is not declared sound on family "
                    f"{family!r} (sound on: {', '.join(solver_info.families)})"
                )
        start = time.perf_counter()
        instance = family_info.builder(n, seed)
        result = dispatch_solver(solver_info.factory(), instance)
        verified: bool | None = None
        if verify:
            verified = True
            try:
                verifier_for(problem_info)(instance, result)
            except AssertionError:
                verified = False
        return TrialRecord(
            problem=problem_info.name,
            solver=solver_info.name,
            family=family_info.name,
            n=n,
            actual_n=instance.graph.num_nodes,
            seed=seed,
            rounds=result.rounds,
            node_radius=list(result.node_radius),
            outputs=result.outputs,
            verified=verified,
            wall_time=time.perf_counter() - start,
            extras=dict(result.extras),
        )
