"""The unified execution driver: one entry point for every trial.

``Runtime.run(problem, solver, family, n, seed)`` is the single path
every (problem x solver x family) combination goes through:

1. build the instance from the registered family;
2. dispatch the registered solver through the adapter — directly for
   :class:`~repro.local.algorithm.LocalAlgorithm` objects, via
   :class:`~repro.local.simulator.SyncEngine` for round-based node
   programs, via :class:`~repro.local.views.ViewOracle` for view-based
   programs — landing in one :class:`~repro.local.algorithm.RunResult`
   shape regardless of the execution model;
3. run the problem's verifier (the ne-LCL checker of
   :mod:`repro.lcl.verifier` by default, the problem's own ``verify``
   for padded problems, or a registered custom check);
4. return a :class:`TrialRecord` with outputs, per-node radii, round
   complexity, verification status, and wall time.

The engine's experiment specs, the CLI, and the conformance suite all
reduce to calls into this driver.
"""

from __future__ import annotations

import logging
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro import kernels as kernel_layer
from repro.lcl.assignment import Labeling
from repro.lcl.problem import NeLCL
from repro.lcl.verifier import PreparedVerifier
from repro.lcl.verifier import verify as lcl_verify
from repro.local.algorithm import Instance, RunResult
from repro.local.simulator import SyncEngine
from repro.local.views import ViewOracle
from repro.obs import get_telemetry
from repro.runtime import registry
from repro.runtime.registry import FamilyInfo, ProblemInfo, SolverInfo

_LOG = logging.getLogger("repro.runtime")

__all__ = [
    "InstanceCache",
    "Runtime",
    "TrialBatch",
    "TrialRecord",
    "cached_prepared_verifier",
    "dispatch_solver",
    "prepared_verifier_for",
    "verifier_for",
]


@dataclass
class TrialRecord:
    """Everything one trial produced, in one flat record."""

    problem: str
    solver: str
    family: str
    n: int
    actual_n: int
    seed: int
    rounds: int
    node_radius: list[int]
    outputs: Labeling
    verified: bool | None  # None = verification skipped
    wall_time: float
    extras: dict = field(default_factory=dict)

    def summary(self) -> str:
        status = {True: "ok", False: "FAILED", None: "unverified"}[self.verified]
        return (
            f"{self.problem} / {self.solver} @ {self.family} "
            f"n={self.actual_n} seed={self.seed}: {self.rounds} rounds, "
            f"{status}, {self.wall_time * 1000:.1f}ms"
        )


def dispatch_solver(
    solver_obj: Any,
    instance: Instance,
    array_program: Callable[[], Any] | None = None,
) -> RunResult:
    """Run a solver object on an instance, whatever its execution model.

    Three shapes are accepted, checked in order:

    * ``solve(instance) -> RunResult`` — the repo-wide
      :class:`~repro.local.algorithm.LocalAlgorithm` protocol (covers
      solvers that drive ``SyncEngine``/``ViewOracle`` internally);
    * ``node_factory(v, instance)`` plus ``finish(instance, engine_result)
      -> Labeling`` — a round-based node program; the adapter runs it on
      :class:`~repro.local.simulator.SyncEngine` and charges each node
      the round it halted at;
    * ``run_views(oracle, instance) -> Labeling`` — a view-based
      program; the adapter meters it through
      :class:`~repro.local.views.ViewOracle` and charges each node the
      largest radius it consulted.

    ``array_program`` (usually the registry's
    :attr:`~repro.runtime.registry.SolverInfo.array_program`, else the
    solver object's own attribute) is the node program's batched twin;
    the engine runs it instead of the object loop under the vector
    kernel backend, with bit-identical records.
    """
    if hasattr(solver_obj, "solve"):
        return solver_obj.solve(instance)
    if hasattr(solver_obj, "node_factory"):
        if array_program is None:
            array_program = getattr(solver_obj, "array_program", None)
        engine = SyncEngine(
            instance, solver_obj.node_factory, array_program=array_program
        )
        engine_result = engine.run()
        outputs = solver_obj.finish(instance, engine_result)
        return RunResult(
            outputs=outputs,
            node_radius=engine_result.node_radius(),
            extras={"engine_rounds": engine_result.rounds},
        )
    if hasattr(solver_obj, "run_views"):
        oracle = ViewOracle(instance.graph)
        outputs = solver_obj.run_views(oracle, instance)
        return RunResult(
            outputs=outputs,
            node_radius=oracle.node_radii(),
            extras={"view_rounds": oracle.rounds()},
        )
    raise TypeError(
        f"solver {solver_obj!r} implements none of the adapter protocols "
        "(solve / node_factory+finish / run_views)"
    )


def verifier_for(problem_info: ProblemInfo) -> Callable[[Instance, RunResult], None]:
    """An ``(instance, result) -> None`` check for a registered problem.

    Preference order: the problem's registered custom verifier, the
    problem object's own ``verify(graph, inputs, outputs)`` (padded
    problems), then the ne-LCL checker of :mod:`repro.lcl.verifier`.
    Raises ``AssertionError`` with the verdict summary on rejection.
    """
    if problem_info.verifier is not None:
        return problem_info.verifier
    # The problem object is materialized on first use and then reused:
    # problems are stateless, and a batch of trials sharing one closure
    # should not rebuild label sets and constraint tables per trial.
    problem_cell: list[Any] = []

    def check(instance: Instance, result: RunResult) -> None:
        if not problem_cell:
            problem_cell.append(problem_info.materialize())
        problem_obj = problem_cell[0]
        inputs = instance.inputs
        if inputs is None:
            inputs = Labeling(instance.graph)
        own_verify = getattr(problem_obj, "verify", None)
        if callable(own_verify) and not isinstance(problem_obj, NeLCL):
            verdict = own_verify(instance.graph, inputs, result.outputs)
        else:
            verdict = lcl_verify(problem_obj, instance.graph, inputs, result.outputs)
        assert verdict.ok, (
            f"{problem_info.name}: {verdict.summary()}"
        )

    return check


def prepared_verifier_for(
    problem_info: ProblemInfo, instance: Instance
) -> PreparedVerifier | None:
    """A skeleton-precomputed verifier for trials sharing this instance's
    graph and inputs, or None when the problem does not go through the
    plain ne-LCL check (custom verifiers, padded problems).

    A returned verifier accepts exactly the outputs
    :func:`verifier_for`'s closure accepts; callers reuse it only for
    instances whose ``graph``/``inputs`` are identical objects.
    """
    if problem_info.verifier is not None:
        return None
    problem_obj = problem_info.materialize()
    if not isinstance(problem_obj, NeLCL):
        return None
    return PreparedVerifier(problem_obj, instance.graph, instance.inputs)


_MISSING_PREPARED = object()


def cached_prepared_verifier(
    cache: dict, key: Any, problem_info: ProblemInfo, instance: Instance
) -> PreparedVerifier | None:
    """Get-or-rebuild policy for a cache of prepared verifiers.

    ``cache`` maps core keys to ``PreparedVerifier | None`` (None =
    problem not preparable, cached so the probe runs once per core).
    The entry is rebuilt when the key is new or when the cached
    skeleton's graph/inputs identity no longer matches the instance
    (the shared core was evicted and rebuilt).  Both batch layers —
    :class:`TrialBatch` and the engine's per-worker memo — share this
    one staleness rule.
    """
    entry = cache.get(key, _MISSING_PREPARED)
    if entry is _MISSING_PREPARED or (
        entry is not None
        and (
            entry.graph is not instance.graph
            or entry.inputs_src is not instance.inputs
        )
    ):
        entry = prepared_verifier_for(problem_info, instance)
        cache[key] = entry
        if entry is not None:
            get_telemetry().incr("prepared_verifier.built")
    elif entry is not None:
        get_telemetry().incr("prepared_verifier.reused")
    return entry


class InstanceCache:
    """Frozen-topology cores shared across the seeds of one size.

    Families that declare ``topology_seeded=False`` with the
    ``topology``/``dress`` split build their immutable core (the frozen
    :class:`~repro.local.graphs.PortGraph`, plus any other
    seed-independent state) once per ``(family, n)`` and re-dress it per
    seed with the cheap mutable parts — identifiers, inputs labeling,
    ``NodeRng``.  Seeded-topology families and parameterized builds
    always fall through to the full builder, so records stay
    bit-identical to the per-trial path either way.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("instance cache needs capacity >= 1")
        self.capacity = capacity
        self._cores: OrderedDict[tuple[str, int], Any] = OrderedDict()
        self.built = 0
        self.reused = 0
        self.bypassed = 0

    def build(
        self,
        family_info: FamilyInfo,
        n: int,
        seed: int,
        params: dict[str, Any] | None = None,
    ) -> tuple[Instance, tuple[str, int] | None]:
        """Build one instance, reusing the frozen core when allowed.

        Returns ``(instance, core_key)``; ``core_key`` is None when the
        full builder ran (seeded topology, extra params), and the cache
        key of the shared core otherwise — batch drivers key their
        per-core state (e.g. prepared verifiers) on it.
        """
        if params or not family_info.reusable_topology:
            self.bypassed += 1
            get_telemetry().incr("instance_cache.bypassed")
            return family_info.builder(n, seed, **(params or {})), None
        key = (family_info.name, n)
        hit = key in self._cores
        core = self.core(family_info, n)
        if hit:
            self.reused += 1
            get_telemetry().incr("instance_cache.core_reused")
        assert family_info.dress is not None
        return family_info.dress(core, n, seed), key

    def core(self, family_info: FamilyInfo, n: int) -> Any:
        """The shared frozen core for ``(family, n)``, building on miss.

        This is the build half of :meth:`build` without the per-seed
        dressing — the shared-memory exporter uses it to reach the very
        core object the serial path would dress, so exported bytes and
        locally built instances can never diverge.
        """
        key = (family_info.name, n)
        core = self._cores.get(key)
        if core is None:
            assert family_info.topology is not None
            core = family_info.topology(n)
            self._cores[key] = core
            if len(self._cores) > self.capacity:
                self._cores.popitem(last=False)
            self.built += 1
            get_telemetry().incr("instance_cache.core_built")
        else:
            self._cores.move_to_end(key)
        return core

    def adopt(self, key: tuple[str, int], core: Any) -> None:
        """Seed the cache with an externally built core (e.g. a graph
        attached from a shared-memory segment).  Subsequent builds for
        ``key`` dress the adopted core instead of rebuilding it, which
        is what keeps every worker on a host on the *same* mapped
        topology bytes."""
        self._cores[key] = core
        self._cores.move_to_end(key)
        if len(self._cores) > self.capacity:
            self._cores.popitem(last=False)
        get_telemetry().incr("instance_cache.core_adopted")


class TrialBatch:
    """Amortized execution of many trials of one (problem, solver, family).

    The per-trial path (:meth:`Runtime.run`) re-resolves the three
    catalog entries, rebuilds the verifier closure, re-materializes the
    problem object, and rebuilds the instance from scratch on every
    call.  A batch does that setup once: the solver factory and
    verifier closure are materialized at construction, frozen topology
    is shared across seeds through an :class:`InstanceCache`, and a
    :class:`~repro.lcl.verifier.PreparedVerifier` is kept per shared
    core.  :meth:`run_one` produces records bit-identical to
    ``Runtime.run`` (wall time aside).
    """

    def __init__(
        self,
        problem: str,
        solver: str,
        family: str,
        *,
        verify: bool = True,
        check_sound: bool = True,
        instances: InstanceCache | None = None,
        kernels: str = "auto",
    ):
        registry.ensure_registered()
        self._kernels = kernel_layer.ensure_mode(kernels)
        self.problem_info = registry.problem(problem)
        self.solver_info = registry.solver(solver)
        self.family_info = registry.family(family)
        if check_sound:
            if self.solver_info.problem != self.problem_info.name:
                raise ValueError(
                    f"solver {solver!r} solves {self.solver_info.problem!r}, "
                    f"not {problem!r}"
                )
            if not self.solver_info.sound_on(self.family_info.name):
                raise ValueError(
                    f"solver {solver!r} is not declared sound on family "
                    f"{family!r} (sound on: "
                    f"{', '.join(self.solver_info.families)})"
                )
        self.instances = instances if instances is not None else InstanceCache()
        self._solver_factory = self.solver_info.factory
        self._verify = verify
        self._checker = verifier_for(self.problem_info) if verify else None
        # core_key -> PreparedVerifier, or None when the problem is not
        # preparable (custom / padded verification).  Bounded like the
        # instance cache: a skeleton pins its core's graph, so letting
        # this grow past the core capacity would defeat that cap's
        # memory bound over long size grids.
        self._prepared: OrderedDict[tuple[str, int], PreparedVerifier | None] = (
            OrderedDict()
        )
        _LOG.debug(
            "trial batch ready: %s / %s @ %s (verify=%s)",
            self.problem_info.name,
            self.solver_info.name,
            self.family_info.name,
            verify,
        )

    def _check(self, instance: Instance, result: RunResult, core_key) -> None:
        if core_key is not None:
            prepared = cached_prepared_verifier(
                self._prepared, core_key, self.problem_info, instance
            )
            self._prepared.move_to_end(core_key)
            if len(self._prepared) > self.instances.capacity:
                self._prepared.popitem(last=False)
            if prepared is not None:
                verdict = kernel_layer.prepared_verify(prepared, result.outputs)
                assert verdict.ok, (
                    f"{self.problem_info.name}: {verdict.summary()}"
                )
                return
        assert self._checker is not None
        self._checker(instance, result)

    def run_one(self, n: int, seed: int = 0) -> TrialRecord:
        """One trial through the amortized pipeline."""
        telemetry = get_telemetry()
        start = time.perf_counter()
        with telemetry.span("trial.build"):
            instance, core_key = self.instances.build(self.family_info, n, seed)
        backend = kernel_layer.select_backend(self._kernels, instance.graph)
        telemetry.incr(f"kernels.{backend}_trials")
        with kernel_layer.active(backend):
            with telemetry.span("trial.solve"):
                result = dispatch_solver(
                    self._solver_factory(),
                    instance,
                    self.solver_info.array_program,
                )
            verified: bool | None = None
            if self._verify:
                verified = True
                try:
                    with telemetry.span("trial.verify"):
                        self._check(instance, result, core_key)
                except AssertionError:
                    verified = False
        telemetry.incr("trials.run")
        return TrialRecord(
            problem=self.problem_info.name,
            solver=self.solver_info.name,
            family=self.family_info.name,
            n=n,
            actual_n=instance.graph.num_nodes,
            seed=seed,
            rounds=result.rounds,
            node_radius=list(result.node_radius),
            outputs=result.outputs,
            verified=verified,
            wall_time=time.perf_counter() - start,
            extras=dict(result.extras),
        )


class Runtime:
    """Registry-driven execution of (problem, solver, family) triples."""

    def __init__(self) -> None:
        registry.ensure_registered()

    # -- catalog passthrough (the driver is the natural API surface) ----

    def triples(self) -> list[tuple[ProblemInfo, SolverInfo, FamilyInfo]]:
        """The validated sound cross-product (see the registry)."""
        return registry.sound_triples()

    # -- the three stages ----------------------------------------------

    def build_instance(self, family: str, n: int, seed: int = 0) -> Instance:
        """Build one instance of a registered family."""
        return registry.family(family).builder(n, seed)

    def solve(self, solver: str, instance: Instance) -> RunResult:
        """Instantiate a registered solver and dispatch it on an instance."""
        solver_info = registry.solver(solver)
        return dispatch_solver(
            solver_info.factory(), instance, solver_info.array_program
        )

    def verify(
        self, problem: str, instance: Instance, result: RunResult
    ) -> bool:
        """True iff the registered verifier accepts the result."""
        try:
            verifier_for(registry.problem(problem))(instance, result)
        except AssertionError:
            return False
        return True

    # -- the unified entry point ---------------------------------------

    def run(
        self,
        problem: str,
        solver: str,
        family: str,
        n: int,
        seed: int = 0,
        verify: bool = True,
        check_sound: bool = True,
        kernels: str = "auto",
    ) -> TrialRecord:
        """Build, solve, verify; everything the trial produced in one record.

        ``check_sound`` rejects combinations the registry does not vouch
        for: the solver must target ``problem`` and declare soundness on
        ``family``.  Pass ``False`` to probe unsound combinations (e.g.
        corruption experiments) — the verifier still reports the truth.
        ``kernels`` picks the implementation layer for solve+verify
        (see :mod:`repro.kernels`); records are bit-identical across
        backends, only ``wall_time`` differs.
        """
        problem_info = registry.problem(problem)
        solver_info = registry.solver(solver)
        family_info = registry.family(family)
        if check_sound:
            if solver_info.problem != problem_info.name:
                raise ValueError(
                    f"solver {solver!r} solves {solver_info.problem!r}, "
                    f"not {problem!r}"
                )
            if not solver_info.sound_on(family_info.name):
                raise ValueError(
                    f"solver {solver!r} is not declared sound on family "
                    f"{family!r} (sound on: {', '.join(solver_info.families)})"
                )
        kernel_layer.ensure_mode(kernels)
        telemetry = get_telemetry()
        start = time.perf_counter()
        with telemetry.span("trial.build"):
            instance = family_info.builder(n, seed)
        backend = kernel_layer.select_backend(kernels, instance.graph)
        telemetry.incr(f"kernels.{backend}_trials")
        verified: bool | None = None
        with kernel_layer.active(backend):
            with telemetry.span("trial.solve"):
                result = dispatch_solver(
                    solver_info.factory(), instance, solver_info.array_program
                )
            if verify:
                verified = True
                try:
                    with telemetry.span("trial.verify"):
                        verifier_for(problem_info)(instance, result)
                except AssertionError:
                    verified = False
        telemetry.incr("trials.run")
        return TrialRecord(
            problem=problem_info.name,
            solver=solver_info.name,
            family=family_info.name,
            n=n,
            actual_n=instance.graph.num_nodes,
            seed=seed,
            rounds=result.rounds,
            node_radius=list(result.node_radius),
            outputs=result.outputs,
            verified=verified,
            wall_time=time.perf_counter() - start,
            extras=dict(result.extras),
        )

    def run_many(
        self,
        problem: str,
        solver: str,
        family: str,
        ns: Sequence[int],
        seeds: Sequence[int] = (0,),
        verify: bool = True,
        check_sound: bool = True,
        kernels: str = "auto",
    ) -> list[TrialRecord]:
        """Batched :meth:`run` over the (ns x seeds) grid, n-major.

        The batch is the unit of scheduling: catalog lookups, soundness
        checks, the solver factory, and the verifier closure are set up
        once; families with seed-independent topology share one frozen
        core (and one prepared verifier skeleton) across all seeds of a
        size.  Records are bit-identical to calling :meth:`run` per
        trial — only ``wall_time`` may differ.
        """
        batch = TrialBatch(
            problem,
            solver,
            family,
            verify=verify,
            check_sound=check_sound,
            kernels=kernels,
        )
        return [batch.run_one(n, seed) for n in ns for seed in seeds]
