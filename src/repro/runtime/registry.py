"""Introspectable catalogs of problems, solvers, and graph families.

The paper's central object is a *landscape*: many LCL problems, each
with deterministic and randomized solvers, evaluated across graph
families.  This module turns that cross-product into data.  Modules
under ``repro.problems``, ``repro.generators``, ``repro.core`` and
``repro.gadgets`` register their contributions with the three
decorators:

* :func:`register_problem` — an LCL (a factory producing an
  :class:`~repro.lcl.problem.NeLCL` or any object with a compatible
  ``verify``), its degree/girth constraints, and the paper's placement
  of its deterministic/randomized complexity;
* :func:`register_solver` — a solver for a named problem, whether it
  is randomized, and the families it is *sound* on (the instances it
  is guaranteed to produce verifier-accepted outputs for);
* :func:`register_family` — an instance family ``(n, seed) ->
  Instance`` with the structural guarantees its members satisfy.

Everything downstream — the unified :class:`~repro.runtime.driver.Runtime`,
the engine's declarative experiments, the CLI's ``list``/``describe``
subcommands, and the conformance test-suite — reads these catalogs
instead of hand-wired lists; registering a new problem, solver, or
family automatically widens all of them.

Registration is import-driven: :func:`ensure_registered` imports the
known registering packages once, so catalogs are complete in any
process (including pool workers) without a central hand-maintained
manifest.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = [
    "FamilyInfo",
    "ProblemInfo",
    "SolverInfo",
    "ensure_registered",
    "families",
    "family",
    "problem",
    "problems",
    "register_family",
    "register_problem",
    "register_solver",
    "solver",
    "solver_display_name",
    "solvers",
    "solvers_for",
    "sound_triples",
    "unsound_triples",
]

# Modules whose import populates the catalogs.  Append-only: a module
# listed here registers itself via the decorators below.
_REGISTERING_MODULES = (
    "repro.problems",
    "repro.generators",
    "repro.core.family",
    "repro.gadgets.proof",
    "repro.gadgets.probes",
)

_PROBLEMS: dict[str, "ProblemInfo"] = {}
_SOLVERS: dict[str, "SolverInfo"] = {}
_FAMILIES: dict[str, "FamilyInfo"] = {}
_BOOTSTRAPPED = False


def _ref_of(obj: Any) -> str:
    """The ``module:qualname`` reference of a module-level callable.

    Empty for factories that are not importable by name (lambdas,
    nested functions) — callers must treat the ref as advisory.
    """
    qualname = getattr(obj, "__qualname__", "")
    if not qualname or "<" in qualname:
        return ""
    return f"{obj.__module__}:{qualname}"


@dataclass(frozen=True)
class ProblemInfo:
    """One catalog entry: an LCL and what instances it is defined on."""

    name: str
    factory: Callable[[], Any]
    description: str = ""
    #: Instances must satisfy these to be meaningful inputs (None = any).
    max_degree: int | None = None
    min_degree: int | None = None
    min_girth: int | None = None
    #: The paper's Figure 1 placement, e.g. "Theta(log n)" / "-".
    paper_det: str = "-"
    paper_rand: str = "-"
    #: Custom ``(instance, result) -> None`` check; when None the
    #: runtime derives one from the factory (ne-LCL verifier, or the
    #: object's own ``verify``).
    verifier: Callable[[Any, Any], None] | None = None

    def materialize(self) -> Any:
        """Build the problem object (an ``NeLCL`` or richer)."""
        obj = self.factory()
        make = getattr(obj, "problem", None)
        return make() if callable(make) else obj


@dataclass(frozen=True)
class SolverInfo:
    """One catalog entry: a solver, its problem, and where it is sound."""

    name: str
    problem: str
    factory: Callable[[], Any]
    randomized: bool
    families: tuple[str, ...]
    description: str = ""
    #: Importable ``module:qualname`` of the factory when it is a
    #: module-level class/function, "" otherwise (e.g. lambdas).
    #: Advisory — shown by ``describe``; specs always go through
    #: :mod:`repro.runtime.entrypoints`.
    ref: str = ""
    #: Declared *negative* probe targets: families the solver runs on
    #: but whose outputs the verifier must REJECT (e.g. corruption
    #: families).  The conformance suite exercises these through the
    #: unsound path (``check_sound=False``) and demands rejection.
    unsound_families: tuple[str, ...] = ()
    #: Optional zero-argument factory producing the solver's
    #: :class:`~repro.local.simulator.ArrayProgram` twin; the driver
    #: hands it to :class:`~repro.local.simulator.SyncEngine` so
    #: round-based node programs batch under the vector backend.  Must
    #: defer numpy imports until called.
    array_program: Callable[[], Any] | None = None

    def sound_on(self, family_name: str) -> bool:
        return family_name in self.families

    def unsound_on(self, family_name: str) -> bool:
        return family_name in self.unsound_families


@dataclass(frozen=True)
class FamilyInfo:
    """One catalog entry: an instance family and its guarantees."""

    name: str
    builder: Callable[..., Any]
    description: str = ""
    #: Structural guarantees over every produced instance.
    max_degree: int | None = None
    min_degree: int | None = None
    girth_at_least: int | None = None
    #: What the size parameter means: "nodes" (approximate node count)
    #: or "height" (construction parameter; node count grows ~2^size).
    size_kind: str = "nodes"
    #: Small sizes the conformance suite exercises.
    test_sizes: tuple[int, ...] = (8, 17)
    #: Size grid for sweeps up to a node budget; None = geometric
    #: powers-of-two grid from 64.
    grid: Callable[[int], tuple[int, ...]] | None = None
    #: Does the seed influence the *topology* of produced instances?
    #: True (the conservative default) means every trial must run the
    #: full builder.  Families that declare False — the graph depends
    #: only on ``n`` — may additionally provide the two hooks below so
    #: batched drivers can build the frozen core once per size and
    #: re-dress it per seed.
    topology_seeded: bool = True
    #: ``n -> core``: the immutable, seed-independent part of an
    #: instance (typically the frozen :class:`PortGraph`).
    topology: Callable[[int], Any] | None = None
    #: ``(core, n, seed) -> Instance``: attach the cheap per-seed state
    #: (identifiers, inputs labeling, ``NodeRng``) to a shared core.
    #: Must produce an instance equal to ``builder(n, seed)`` except
    #: that the core objects are shared rather than rebuilt.
    dress: Callable[[Any, int, int], Any] | None = None

    @property
    def reusable_topology(self) -> bool:
        """Can batched drivers share one core across seeds of a size?"""
        return (
            not self.topology_seeded
            and self.topology is not None
            and self.dress is not None
        )

    def sweep_sizes(self, max_n: int) -> tuple[int, ...]:
        """The family's size grid capped by a node budget (may be empty)."""
        if self.grid is not None:
            return self.grid(max_n)
        ns: list[int] = []
        n = 64
        while n <= max_n:
            ns.append(n)
            n *= 2
        return tuple(ns)


def _register(catalog: dict[str, Any], info: Any) -> None:
    existing = catalog.get(info.name)
    if existing is not None and existing != info:
        raise ValueError(
            f"{type(info).__name__} {info.name!r} is already registered "
            f"with different settings"
        )
    catalog[info.name] = info


def register_problem(
    name: str,
    *,
    description: str = "",
    max_degree: int | None = None,
    min_degree: int | None = None,
    min_girth: int | None = None,
    paper_det: str = "-",
    paper_rand: str = "-",
    verifier: Callable[[Any, Any], None] | None = None,
):
    """Class/function decorator (or plain call) adding a problem entry.

    The decorated object must be a zero-argument callable whose result
    is either an ``NeLCL`` or an object with a ``problem()`` method
    producing one (the repo's factory-class idiom), or itself an object
    with a ``verify(graph, inputs, outputs)`` method (padded problems).
    """

    def decorate(factory: Callable[[], Any]):
        _register(
            _PROBLEMS,
            ProblemInfo(
                name=name,
                factory=factory,
                description=description,
                max_degree=max_degree,
                min_degree=min_degree,
                min_girth=min_girth,
                paper_det=paper_det,
                paper_rand=paper_rand,
                verifier=verifier,
            ),
        )
        return factory

    return decorate


def register_solver(
    name: str,
    *,
    problem: str,
    families: tuple[str, ...] | list[str],
    randomized: bool | None = None,
    description: str = "",
    unsound_families: tuple[str, ...] | list[str] = (),
    array_program: Callable[[], Any] | None = None,
):
    """Class/function decorator (or plain call) adding a solver entry.

    The decorated object must be a zero-argument factory producing a
    solver the :class:`~repro.runtime.driver.Runtime` adapter can
    execute (``solve``, ``node_factory``/``finish``, or ``run_views``
    — see the driver module).  ``randomized`` defaults to the solver
    class's ``randomized`` attribute.  ``unsound_families`` declares
    negative probe targets: families the solver executes on but whose
    outputs the verifier must reject (see :func:`unsound_triples`).
    ``array_program`` (defaulting to the factory's own ``array_program``
    attribute, when present) names the batched
    :class:`~repro.local.simulator.ArrayProgram` twin of a
    ``node_factory``-style solver.
    """
    overlap = set(families) & set(unsound_families)
    if overlap:
        raise ValueError(
            f"solver {name!r} declares {sorted(overlap)} both sound and "
            "unsound; a family is one or the other"
        )

    def decorate(factory: Callable[[], Any]):
        is_rand = randomized
        if is_rand is None:
            is_rand = bool(getattr(factory, "randomized", False))
        program = array_program
        if program is None:
            program = getattr(factory, "array_program", None)
        _register(
            _SOLVERS,
            SolverInfo(
                name=name,
                problem=problem,
                factory=factory,
                randomized=is_rand,
                families=tuple(families),
                description=description,
                ref=_ref_of(factory),
                unsound_families=tuple(unsound_families),
                array_program=program,
            ),
        )
        return factory

    return decorate


def register_family(
    name: str,
    *,
    description: str = "",
    max_degree: int | None = None,
    min_degree: int | None = None,
    girth_at_least: int | None = None,
    size_kind: str = "nodes",
    test_sizes: tuple[int, ...] = (8, 17),
    grid: Callable[[int], tuple[int, ...]] | None = None,
    topology_seeded: bool = True,
    topology: Callable[[int], Any] | None = None,
    dress: Callable[[Any, int, int], Any] | None = None,
):
    """Function decorator adding an instance-family entry.

    The decorated builder is called as ``builder(n, seed, **params)``
    and must return a :class:`~repro.local.algorithm.Instance`.
    Families whose graph depends only on ``n`` declare
    ``topology_seeded=False`` and may provide the ``topology``/``dress``
    split so batched drivers can share the frozen core across seeds.
    """
    if size_kind not in ("nodes", "height"):
        raise ValueError(f"unknown size_kind {size_kind!r}")
    if topology_seeded and (topology is not None or dress is not None):
        raise ValueError(
            f"family {name!r} declares topology/dress hooks but also "
            "topology_seeded=True; seeded topologies cannot be shared"
        )
    if (topology is None) != (dress is None):
        raise ValueError(
            f"family {name!r} must provide both topology and dress hooks "
            "(or neither)"
        )

    def decorate(builder: Callable[..., Any]):
        _register(
            _FAMILIES,
            FamilyInfo(
                name=name,
                builder=builder,
                description=description,
                max_degree=max_degree,
                min_degree=min_degree,
                girth_at_least=girth_at_least,
                size_kind=size_kind,
                test_sizes=tuple(test_sizes),
                grid=grid,
                topology_seeded=topology_seeded,
                topology=topology,
                dress=dress,
            ),
        )
        return builder

    return decorate


def ensure_registered() -> None:
    """Import every registering module once; idempotent and cheap after."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    try:
        for module in _REGISTERING_MODULES:
            importlib.import_module(module)
    except Exception:
        # A failed bootstrap must be retryable, not silently half-done.
        _BOOTSTRAPPED = False
        raise


def problems() -> dict[str, ProblemInfo]:
    ensure_registered()
    return dict(_PROBLEMS)


def solvers() -> dict[str, SolverInfo]:
    ensure_registered()
    return dict(_SOLVERS)


def families() -> dict[str, FamilyInfo]:
    ensure_registered()
    return dict(_FAMILIES)


def _lookup(catalog: dict[str, Any], name: str, kind: str) -> Any:
    ensure_registered()
    try:
        return catalog[name]
    except KeyError:
        known = ", ".join(sorted(catalog))
        raise KeyError(f"unknown {kind} {name!r} (known: {known})") from None


def problem(name: str) -> ProblemInfo:
    return _lookup(_PROBLEMS, name, "problem")


def solver(name: str) -> SolverInfo:
    return _lookup(_SOLVERS, name, "solver")


def family(name: str) -> FamilyInfo:
    return _lookup(_FAMILIES, name, "family")


# Memoized display names: a solver's human-facing name is the object's
# ``name`` attribute, which for class factories is readable without
# instantiating anything.  Factories that hide it behind construction
# (lambdas, functions) are materialized at most once per process.
_DISPLAY_NAMES: dict[str, str] = {}


def solver_display_name(name: str) -> str:
    """The ``.name`` a registered solver's instances carry, lazily.

    Matches ``getattr(factory(), "name", name)`` without materializing
    a solver object when the factory is a class exposing ``name`` as a
    class attribute, and memoizing the one materialization otherwise —
    so warm-cache replays never pay solver construction just to label
    their sweeps.
    """
    cached = _DISPLAY_NAMES.get(name)
    if cached is not None:
        return cached
    info = solver(name)
    display = getattr(info.factory, "name", None)
    if not isinstance(display, str):
        display = getattr(info.factory(), "name", name)
    _DISPLAY_NAMES[name] = display
    return display


def solvers_for(problem_name: str) -> list[SolverInfo]:
    """All registered solvers of one problem, name-sorted."""
    ensure_registered()
    return sorted(
        (s for s in _SOLVERS.values() if s.problem == problem_name),
        key=lambda s: s.name,
    )


def compatible(problem_info: ProblemInfo, family_info: FamilyInfo) -> bool:
    """Do the family's guarantees satisfy the problem's constraints?

    Unknown guarantees (None) are treated as "no promise" and only
    pass unconstrained problems — soundness declarations must be
    backed by declared structure.
    """
    if problem_info.max_degree is not None:
        if family_info.max_degree is None:
            return False
        if family_info.max_degree > problem_info.max_degree:
            return False
    if problem_info.min_degree is not None:
        if family_info.min_degree is None:
            return False
        if family_info.min_degree < problem_info.min_degree:
            return False
    if problem_info.min_girth is not None:
        if family_info.girth_at_least is None:
            return False
        if family_info.girth_at_least < problem_info.min_girth:
            return False
    return True


def sound_triples() -> list[tuple[ProblemInfo, SolverInfo, FamilyInfo]]:
    """The full (problem, solver, family) cross-product, validated.

    One entry per solver per family the solver declared soundness on.
    Dangling names or a declared family that violates the problem's
    structural constraints raise — a mis-registration should fail the
    conformance suite, not silently shrink the landscape.
    """
    ensure_registered()
    out: list[tuple[ProblemInfo, SolverInfo, FamilyInfo]] = []
    for solver_info in sorted(_SOLVERS.values(), key=lambda s: s.name):
        problem_info = problem(solver_info.problem)
        for family_name in solver_info.families:
            family_info = family(family_name)
            if not compatible(problem_info, family_info):
                raise ValueError(
                    f"solver {solver_info.name!r} declares soundness on "
                    f"family {family_name!r}, but that family does not "
                    f"satisfy problem {problem_info.name!r}'s constraints"
                )
            out.append((problem_info, solver_info, family_info))
    return out


def unsound_triples() -> list[tuple[ProblemInfo, SolverInfo, FamilyInfo]]:
    """The declared negative probes, validated like :func:`sound_triples`.

    One entry per solver per family the solver declared *unsound* on.
    These are runs the verifier must REJECT — the conformance suite
    pushes each through the driver with ``check_sound=False`` and
    demands ``verified is False``, so the unsound detection path is
    exercised as systematically as the sound one.
    """
    ensure_registered()
    out: list[tuple[ProblemInfo, SolverInfo, FamilyInfo]] = []
    for solver_info in sorted(_SOLVERS.values(), key=lambda s: s.name):
        problem_info = problem(solver_info.problem)
        for family_name in solver_info.unsound_families:
            out.append((problem_info, solver_info, family(family_name)))
    return out
