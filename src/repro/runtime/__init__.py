"""Registry-driven execution layer (the runtime).

One layer owns the cross-product the paper's landscape is made of:

* :mod:`repro.runtime.registry` — introspectable catalogs populated by
  ``@register_problem`` / ``@register_solver`` / ``@register_family``
  decorators in the problem, generator, core, and gadget modules;
* :mod:`repro.runtime.driver` — ``Runtime.run(problem, solver, family,
  n, seed)``: build the instance, dispatch the solver behind one
  adapter (direct / SyncEngine / ViewOracle), verify, return a
  :class:`~repro.runtime.driver.TrialRecord`;
* :mod:`repro.runtime.entrypoints` — ``module:attr`` references into
  the catalogs so the engine's content-hashed, multiprocessing
  experiment specs are generated from the registry instead of
  hand-wired lists.
"""

from repro.runtime.registry import (
    FamilyInfo,
    ProblemInfo,
    SolverInfo,
    ensure_registered,
    families,
    family,
    problem,
    problems,
    register_family,
    register_problem,
    register_solver,
    solver,
    solver_display_name,
    solvers,
    solvers_for,
    sound_triples,
)
from repro.runtime.driver import (
    InstanceCache,
    Runtime,
    TrialBatch,
    TrialRecord,
    dispatch_solver,
    verifier_for,
)
from repro.runtime.entrypoints import (
    family_ref,
    parse_entrypoint,
    solver_ref,
    verifier_ref,
)

__all__ = [
    "FamilyInfo",
    "InstanceCache",
    "ProblemInfo",
    "Runtime",
    "SolverInfo",
    "TrialBatch",
    "TrialRecord",
    "dispatch_solver",
    "ensure_registered",
    "families",
    "family",
    "family_ref",
    "parse_entrypoint",
    "problem",
    "problems",
    "register_family",
    "register_problem",
    "register_solver",
    "solver",
    "solver_display_name",
    "solver_ref",
    "solvers",
    "solvers_for",
    "sound_triples",
    "verifier_for",
    "verifier_ref",
]
