"""The batched node-program engine: whole-population rounds as array ops.

This is the array-at-a-time twin of the :class:`~repro.local.simulator.
SyncEngine` object loop.  A solver that also ships an
:class:`~repro.local.simulator.ArrayProgram` runs its rounds here: one
gather across the CSR ``dest`` involution delivers every message, one
``step_all`` call advances every node, and the active set is compacted
to flat slot ranges as nodes halt — no per-node Python in the loop.

Import this module only behind :func:`repro.kernels.vector_enabled`: it
imports numpy at module load.  Semantics are pinned to the object loop
**bit-identically** — ``halt_rounds``, round traces, and
:class:`~repro.local.simulator.ConvergenceError` diagnostics included —
by the differential suites in ``tests/test_kernels.py`` and
``tests/test_views_simulator.py``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kernels import vector
from repro.local.simulator import ConvergenceError, EngineResult, MessageRound
from repro.obs import get_telemetry

__all__ = ["RoundInbox", "SlotLayout", "run_array_program", "segment_reduce"]

_I64 = np.int64


def segment_reduce(
    ufunc: np.ufunc, flat: np.ndarray, lengths: np.ndarray, empty: Any
) -> np.ndarray:
    """Per-segment ``ufunc.reduce`` over consecutive runs of ``flat``.

    ``lengths`` tiles ``flat`` exactly (``lengths.sum() == len(flat)``);
    segment ``i`` is the next ``lengths[i]`` rows.  Empty segments yield
    ``empty``.  Reduction runs along axis 0, so 2-D payloads (bitset
    rows, vector messages) reduce row-wise.

    ``np.ufunc.reduceat`` alone mishandles empty segments (it returns
    ``flat[start]`` instead of the identity, and an empty tail segment
    would index past the end), so the reduceat runs over the non-empty
    segments only: their start offsets are strictly increasing and the
    gap a skipped empty segment leaves is zero rows, so each reduceat
    window is exactly one segment.
    """
    k = lengths.shape[0]
    out = np.empty((k,) + flat.shape[1:], dtype=flat.dtype)
    if k == 0:
        return out
    out[...] = empty
    nonempty = np.flatnonzero(lengths)
    if nonempty.size == 0 or flat.shape[0] == 0:
        return out
    starts = np.zeros(k, dtype=_I64)
    np.cumsum(lengths[:-1], out=starts[1:])
    out[nonempty] = ufunc.reduceat(flat, starts[nonempty], axis=0)
    return out


class SlotLayout:
    """Frozen per-slot geometry of one graph, shared with array programs.

    Everything a whole-population round step needs to address the flat
    CSR slot space: slot ``off[v] + p`` is port ``p`` of node ``v``,
    ``node_of[slot]`` inverts that, ``dest`` is the delivery involution
    (the slot across the edge — crossing twice returns), and
    ``not_loop`` masks self-loop slots (``nbr[slot] == node_of[slot]``).
    """

    __slots__ = (
        "off",
        "nbr",
        "peer",
        "eids",
        "counts",
        "node_of",
        "dest",
        "not_loop",
        "num_nodes",
        "total",
        "_expand",
    )

    def __init__(self, graph: Any):
        off, nbr, peer, eids = vector.csr_arrays(graph)
        self.off = off
        self.nbr = nbr
        self.peer = peer
        self.eids = eids
        self.counts = np.diff(off)
        self.num_nodes = int(graph.num_nodes)
        self.total = int(off[-1]) if off.size else 0
        self.node_of = np.repeat(
            np.arange(self.num_nodes, dtype=_I64), self.counts
        )
        self.dest = off[nbr] + peer
        self.not_loop = nbr != self.node_of
        self._expand = vector._frontier_expander(off)

    def slots_of(self, nodes: np.ndarray) -> np.ndarray:
        """Flat slots of ``nodes`` in node-major port-minor order
        (degree-bucketed single-gather on irregular graphs)."""
        return self._expand(nodes)


class RoundInbox:
    """One round's delivered messages, in flat per-slot arrays.

    ``values[slot]`` is the payload that arrived at ``slot`` and
    ``sent[slot]`` whether the sender across the edge was still active
    (the object loop's ``None`` entries are ``sent == False`` here).
    Only the slots of ``active`` receivers are populated — exactly
    ``slots`` (their flat slot expansion, ``lengths`` per node);
    anything else is uninitialized scratch and must not be read.
    """

    __slots__ = ("values", "sent", "active", "slots", "lengths")

    def __init__(self, values, sent, active, slots, lengths):
        self.values = values
        self.sent = sent
        self.active = active
        self.slots = slots
        self.lengths = lengths


def run_array_program(
    instance: Any, program: Any, max_rounds: int = 10_000
) -> EngineResult:
    """Run an :class:`~repro.local.simulator.ArrayProgram` to completion.

    Mirrors ``SyncEngine.run``'s object loop exactly: nodes that halt at
    round ``r`` send nothing that round, rounds count message rounds,
    the trace records per-round active counts, and exhausting
    ``max_rounds`` raises :class:`ConvergenceError` with the same
    diagnostics.
    """
    layout = SlotLayout(instance.graph)
    program.init_all(instance, layout)
    n = layout.num_nodes
    halted = np.zeros(n, dtype=bool)
    halt_rounds = np.zeros(n, dtype=_I64)
    trace: list[MessageRound] = []
    rounds = 0
    active_total = 0
    active_nodes = np.arange(n, dtype=_I64)
    active_slots = np.arange(layout.total, dtype=_I64)
    inbox: RoundInbox | None = None
    for round_index in range(max_rounds):
        out_values, halt_now = program.step_all(round_index, inbox)
        if halt_now is not None:
            newly = halt_now & ~halted
            if newly.any():
                halt_rounds[newly] = round_index
                halted |= newly
                active_nodes = np.flatnonzero(~halted)
                active_slots = layout.slots_of(active_nodes)
        active = int(active_nodes.size)
        if active == 0:
            break
        if out_values is None or out_values.shape[0] != layout.total:
            got = "no" if out_values is None else out_values.shape[0]
            raise ValueError(
                f"array program produced {got} outbox slots for "
                f"{layout.total} ports"
            )
        rounds += 1
        active_total += active
        trace.append(MessageRound(round_index, active))
        # Deliver: gather through the dest involution into the slots of
        # the still-active receivers.  A halted sender's payload is
        # masked out via ``sent`` — the array analogue of the object
        # loop's explicit ``None`` message.
        values = np.empty_like(out_values)
        sent = np.zeros(layout.total, dtype=bool)
        values[active_slots] = out_values[layout.dest[active_slots]]
        sent[active_slots] = ~halted[layout.nbr[active_slots]]
        inbox = RoundInbox(
            values=values,
            sent=sent,
            active=active_nodes,
            slots=active_slots,
            lengths=layout.counts[active_nodes],
        )
    else:
        raise ConvergenceError(max_rounds, int(active_nodes.size), trace)
    telemetry = get_telemetry()
    telemetry.incr("engine.rounds", rounds)
    telemetry.incr("engine.active_nodes", active_total)
    telemetry.incr("kernels.array_rounds", rounds)
    return EngineResult(
        results=program.results_all(),
        rounds=rounds,
        trace=trace,
        halt_rounds=halt_rounds.tolist(),
    )
