"""Zero-copy topology cores over ``multiprocessing.shared_memory``.

Stdlib-only (deliberately importable without numpy): a frozen
:class:`~repro.local.graphs.PortGraph` core is four int64 CSR tables,
so one shared segment of ``(n+1) + 3 * 2m`` words lets every worker on
the host map the *same* physical bytes instead of unpickling a private
copy per process.  The engine ships a :class:`CoreHandle` — a segment
name and two integers — in the task payload; workers attach and adopt
the mapped tables through :meth:`PortGraph.from_csr`, which defers the
object layer until something actually asks for ``Edge`` objects.

Lifecycle rules (see also the README section on vectorized kernels):

* The **exporter** (the parent running ``run_shard``) owns the segment:
  it must call :func:`release_core` when the shard's batches are done,
  which both closes its mapping and unlinks the name.  Segments are not
  garbage-collected on our behalf — a crashed parent can leak
  ``/dev/shm/repro-core-*`` entries, removable with ``rm``.
* **Attachers** only close; they never unlink.  Attached segments are
  memoized per process (workers are long-lived across a shard's
  batches), and each attach unregisters itself from the stdlib
  resource tracker, which would otherwise unlink segments it never
  owned when the worker exits (Python registers attachments
  unconditionally).
* In-process consumers (serial fallback, fork start-method children)
  short-circuit through :data:`_EXPORTED` and reuse the exporter's own
  graph object — zero mappings, zero copies.
"""

from __future__ import annotations

import atexit
import itertools
import os
from multiprocessing import shared_memory
from typing import Any, NamedTuple

from repro.local.graphs import PortGraph
from repro.obs.telemetry import get_telemetry

__all__ = [
    "CoreHandle",
    "attach_graph",
    "attached_core_words",
    "export_graph",
    "release_core",
    "sweep_leaked_cores",
]

_WORD = 8  # bytes per int64 table entry

#: Per-process suffix source for exported segment names.
_SEGMENT_SEQ = itertools.count()


class CoreHandle(NamedTuple):
    """Everything a worker needs to map an exported core: ~tens of
    bytes on the wire versus the full pickled topology."""

    segment: str
    num_nodes: int
    num_edges: int

    @property
    def words(self) -> int:
        return (self.num_nodes + 1) + 6 * self.num_edges


#: Cores this process exported: segment name -> (graph, SharedMemory).
#: Lets same-process consumers (serial fallback) and fork children
#: adopt the exporter's graph object directly, and keeps the segment
#: alive until :func:`release_core`.
_EXPORTED: dict[str, tuple[PortGraph, shared_memory.SharedMemory]] = {}

#: Cores this process attached: segment name -> (graph, SharedMemory).
#: Memoized so a worker re-adopts the *same* graph object across the
#: batches of a shard — identity stability is what lets the prepared-
#: verifier cache's ``entry.graph is instance.graph`` staleness rule
#: keep hitting.
_ATTACHED: dict[str, tuple[PortGraph, shared_memory.SharedMemory]] = {}


@atexit.register
def _close_attached_at_exit() -> None:
    # Attached graphs hold live views over the mapped buffer for the
    # whole worker lifetime, so ``SharedMemory.close()`` at interpreter
    # shutdown raises BufferError ("exported pointers exist") from
    # ``__del__`` as an ignored-exception traceback.  Try the polite
    # close; where views are still alive, disarm the finalizer instead
    # — process exit unmaps and closes everything anyway.
    for _, shm in _ATTACHED.values():
        try:
            shm.close()
        except BufferError:
            shm._buf = None
            shm._mmap = None
            shm._fd = -1
    _ATTACHED.clear()


def core_words(graph: Any) -> int:
    """Segment size, in int64 words, of this graph's core."""
    return (graph.num_nodes + 1) + 6 * graph.num_edges


def export_graph(graph: PortGraph) -> CoreHandle:
    """Copy the graph's CSR tables into a fresh shared segment.

    The one-time copy is the exporter's price; every attacher after
    that maps the same bytes.  Layout: ``off | nbr | peer | eids``,
    all int64.
    """
    off, nbr, peer, eids = graph.csr()
    n, m = graph.num_nodes, graph.num_edges
    words = core_words(graph)
    # Recognizable names so a leaked segment (crashed exporter) is
    # attributable: `ls /dev/shm/repro-core-*`.  The pid + counter pair
    # is unique per process; collisions with a previous crashed run of
    # the same pid are skipped over.
    while True:
        name = f"repro-core-{os.getpid()}-{next(_SEGMENT_SEQ)}"
        try:
            shm = shared_memory.SharedMemory(
                name=name, create=True, size=max(words * _WORD, 1)
            )
            break
        except FileExistsError:
            continue
    try:
        view = shm.buf.cast("q")
        try:
            pos = 0
            for table, length in ((off, n + 1), (nbr, 2 * m), (peer, 2 * m), (eids, 2 * m)):
                view[pos : pos + length] = table[:]
                pos += length
        finally:
            # Cast views must be released before the buffer can ever be
            # closed; holding one would raise BufferError at close time.
            view.release()
    except Exception:
        shm.close()
        shm.unlink()
        raise
    _EXPORTED[shm.name] = (graph, shm)
    get_telemetry().incr("shm.cores_exported")
    return CoreHandle(shm.name, n, m)


def attach_graph(handle: CoreHandle | tuple) -> PortGraph:
    """The PortGraph backed by an exported core.

    In the exporting process (and in fork children, which inherit
    ``_EXPORTED`` copy-on-write) this is the exporter's graph object
    itself.  Elsewhere it maps the segment and adopts the tables
    zero-copy; repeated attaches of the same segment return the same
    graph object.
    """
    handle = CoreHandle(*handle)
    local = _EXPORTED.get(handle.segment)
    if local is not None:
        return local[0]
    cached = _ATTACHED.get(handle.segment)
    if cached is not None:
        return cached[0]
    shm = shared_memory.SharedMemory(name=handle.segment)
    try:
        # Python 3.8+ registers every attachment with the resource
        # tracker, which unlinks segments at worker exit even though
        # the parent still owns them.  Attachers must opt out.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    n, m = handle.num_nodes, handle.num_edges
    base = memoryview(shm.buf)
    bounds = [0, n + 1, n + 1 + 2 * m, n + 1 + 4 * m, n + 1 + 6 * m]
    tables = [
        base[bounds[i] * _WORD : bounds[i + 1] * _WORD].cast("q")
        for i in range(4)
    ]
    graph = PortGraph.from_csr(n, m, *tables)
    _ATTACHED[handle.segment] = (graph, shm)
    get_telemetry().incr("shm.cores_attached")
    return graph


def attached_core_words() -> int:
    """Total words currently mapped from foreign segments (stats aid)."""
    total = 0
    for graph, _ in _ATTACHED.values():
        total += core_words(graph)
    return total


def sweep_leaked_cores(pid: int | None = None) -> list[str]:
    """Unlink ``repro-core-*`` segments a crashed exporter left behind.

    A shard killed mid-chunk never reaches :func:`release_core`, so its
    segments persist in ``/dev/shm`` until someone unlinks them.  The
    fabric launcher calls this with the dead shard's pid after every
    unclean death; ``pid=None`` sweeps every ``repro-core-*`` segment
    regardless of owner (operator cleanup).  Segments this process
    exported itself are skipped — they are live, not leaked.  Returns
    the names unlinked.
    """
    prefix = "repro-core-" + (f"{pid}-" if pid is not None else "")
    try:
        names = os.listdir("/dev/shm")
    except OSError:
        return []
    swept: list[str] = []
    for name in sorted(names):
        if not name.startswith(prefix) or name in _EXPORTED:
            continue
        try:
            seg = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError):
            continue
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
        try:
            seg.close()
        except Exception:
            pass
        try:
            seg.unlink()
        except Exception:
            continue
        swept.append(name)
    if swept:
        get_telemetry().incr("shm.cores_swept", len(swept))
    return swept


def release_core(handle: CoreHandle | tuple) -> None:
    """Exporter-side teardown: close the mapping and unlink the name.

    Idempotent; safe to call from a ``finally`` even if export failed
    halfway.  Only the exporting process should call this.
    """
    handle = CoreHandle(*handle)
    entry = _EXPORTED.pop(handle.segment, None)
    if entry is None:
        return
    _, shm = entry
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass
