"""Backend selection for the vectorized kernel layer.

The kernel layer gives the hot loops over the frozen CSR tables —
BFS/distances, the ne-LCL verifier passes, SyncEngine message delivery,
the deterministic sinkless solver's anchor-scan ordering — a second,
numpy-backed implementation that works array-at-a-time instead of one
Python index at a time.  The object-layer implementations stay exactly
as they were and remain the differential-testing oracle: for every
kernel, ``vector`` and ``object`` produce bit-identical results (the
property suite in ``tests/test_kernels.py`` pins this on random
multigraphs including self-loops and parallel edges).

Selection is *ambient*: call sites check :func:`vector_enabled` and the
trial drivers establish the backend with :func:`active` around each
trial's solve+verify, after resolving the user-facing mode with
:func:`select_backend`:

* ``object`` — always the pure-Python object layer;
* ``vector`` — the numpy kernels whenever numpy is importable;
* ``auto`` — vector when numpy is importable *and* the instance clears
  :data:`AUTO_THRESHOLD` nodes (below that, per-call numpy overhead
  beats the win).

numpy is an optional extra (``pip install -e .[fast]``).  Without it,
every mode degrades to the object layer — ``vector`` logs a one-time
warning — so a stdlib-only install stays fully functional.
"""

from __future__ import annotations

import logging
import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "AUTO_THRESHOLD",
    "BACKENDS",
    "HAVE_NUMPY",
    "active",
    "current_backend",
    "ensure_mode",
    "prepared_verify",
    "select_backend",
    "vector_enabled",
]

_LOG = logging.getLogger("repro.kernels")

try:  # pragma: no cover - exercised via both CI environments
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except Exception:  # pragma: no cover
    HAVE_NUMPY = False

#: The user-facing kernel modes, in CLI order.
BACKENDS = ("auto", "vector", "object")

#: ``auto`` picks the vector backend at or above this many nodes.  The
#: crossover is flat and forgiving: numpy per-call overhead is ~tens of
#: microseconds, object-layer loops are ~100ns/element, so anywhere in
#: the few-hundreds is fine.
AUTO_THRESHOLD = 256

_STATE = threading.local()
_WARNED_NO_NUMPY = False


def ensure_mode(mode: str) -> str:
    """Validate a user-facing kernel mode, returning it unchanged."""
    if mode not in BACKENDS:
        raise ValueError(
            f"unknown kernels mode {mode!r} (choose from {', '.join(BACKENDS)})"
        )
    return mode


def current_backend() -> str:
    """The ambient backend of this thread: ``object`` unless a driver
    established ``vector`` via :func:`active`."""
    return getattr(_STATE, "backend", "object")


@contextmanager
def active(backend: str) -> Iterator[None]:
    """Establish a concrete backend for the dynamic extent of a trial.

    ``backend`` must be concrete (``object`` or ``vector``) — resolve
    ``auto`` with :func:`select_backend` first.  The previous backend is
    restored on exit, so nested trials compose.
    """
    if backend not in ("object", "vector"):
        raise ValueError(f"active() needs a concrete backend, not {backend!r}")
    previous = current_backend()
    _STATE.backend = backend
    try:
        yield
    finally:
        _STATE.backend = previous


def select_backend(mode: str, graph: Any = None) -> str:
    """Resolve a user-facing mode to the concrete backend for one trial.

    ``graph`` feeds the ``auto`` size threshold; pass None to make
    ``auto`` decide on numpy availability alone.
    """
    global _WARNED_NO_NUMPY
    ensure_mode(mode)
    if mode == "object":
        return "object"
    if not HAVE_NUMPY:
        if not _WARNED_NO_NUMPY:
            _WARNED_NO_NUMPY = True
            _LOG.warning(
                "numpy is not importable; kernels degrade to the object "
                "layer (install the [fast] extra for vectorized kernels)"
            )
        return "object"
    if mode == "vector":
        return "vector"
    if graph is not None and graph.num_nodes < AUTO_THRESHOLD:
        return "object"
    return "vector"


def vector_enabled() -> bool:
    """True when call sites should dispatch to the vector kernels.

    This is the one check every dispatch prologue performs; it is
    deliberately just the ambient flag plus the import guard, so the
    per-call cost on the object path stays at two attribute reads.
    """
    return HAVE_NUMPY and current_backend() == "vector"


def prepared_verify(prepared: Any, outputs: Any):
    """``prepared.verify(outputs)`` through the ambient backend.

    With the vector backend active, a vectorized twin of the
    :class:`~repro.lcl.verifier.PreparedVerifier` skeleton is built
    (and cached on the prepared instance) and evaluated instead; its
    verdict is bit-identical, violations included.
    """
    if vector_enabled():
        from repro.kernels.verifier import vector_prepared

        return vector_prepared(prepared).verify(outputs)
    return prepared.verify(outputs)
