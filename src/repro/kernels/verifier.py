"""Batched ne-LCL verification: one constraint call per *distinct* config.

Import only behind the numpy guard (see :mod:`repro.kernels`).

The object-layer verifier allocates a configuration object and calls
the constraint predicate once per node and once per edge.  On the
instances this repo runs, configurations repeat massively (a 3-regular
graph has a handful of distinct node configurations, not ``n``), and
LCL constraints are by definition pure functions of the configuration
value.  The vector pass exploits exactly that:

1. intern every label to a small integer code (one shared interner per
   verifier, so codes are stable across calls);
2. lay each element's configuration out as one row of an int64 matrix
   (per degree class for nodes — rows must be rectangular);
3. dedupe the rows and evaluate the Python predicate once per distinct
   row, on a genuine configuration object built for a representative
   element (so the constraint sees exactly what the object layer shows
   it).  Deduping packs each row into a single int64 key by
   mixed-radix accumulation over the per-column value ranges (one
   1-D sort) — the ``np.unique(axis=0)`` row-sort it replaces is an
   order of magnitude slower and only kept as the overflow fallback;
4. scatter the verdicts back through the dedupe's inverse index.

Verdicts are bit-identical to the object layer, violations included:
same ordering (domain pass, then nodes ascending, then edges
ascending), same messages, same ``Violation`` values.

Caveat shared with the whole label machinery: labels that compare equal
are treated as the same label (``1 == True == 1.0`` would share a
code), which matches how ``Labeling`` dicts and ``LabelSet`` membership
already behave everywhere else.
"""

from __future__ import annotations

from itertools import chain
from typing import Any, Hashable, Iterable

import numpy as np

from repro.lcl.assignment import Labeling
from repro.lcl.labels import EMPTY
from repro.lcl.verifier import (
    Verdict,
    Violation,
    edge_configuration,
    node_configuration,
)
from repro.local.graphs import HalfEdge

__all__ = ["VectorPreparedVerifier", "vector_prepared", "vector_verify"]

_I64 = np.int64


def _dedupe_rows(rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(first, inverse)`` of the distinct rows of an int64 matrix.

    ``first[k]`` is the row index of the first occurrence of the k-th
    distinct row; ``inverse[i]`` maps row ``i`` to its distinct-row
    index.  Entries are non-negative label codes, so each row packs
    into one int64 by mixed-radix accumulation over the per-column
    value ranges — a single 1-D sort instead of the lexicographic
    row-sort ``np.unique(axis=0)`` pays.  Falls back to the row-sort
    in the (pathological: ~2**63 distinct configurations) case where
    the radix product would overflow.
    """
    maxes = rows.max(axis=0).tolist() if rows.size else []
    span = 1
    for m in maxes:
        span *= m + 1
    if 0 < span < 2**63:
        keys = rows[:, 0].copy()
        for j in range(1, rows.shape[1]):
            keys *= maxes[j] + 1
            keys += rows[:, j]
        _, first, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
    else:
        _, first, inverse = np.unique(
            rows, axis=0, return_index=True, return_inverse=True
        )
    return first, np.asarray(inverse).reshape(-1)


class VectorPreparedVerifier:
    """Vector twin of :class:`repro.lcl.verifier.PreparedVerifier`.

    Precomputes, once per (problem, graph, inputs): the label interner
    seeded with every input-side label, the flat slot geometry, the
    per-degree-class slot/eid matrices, and the input-side column
    blocks.  Each :meth:`verify` call then only interns the output
    labels and runs the unique-row passes.  Constraint verdicts are
    additionally memoized by row bytes across calls, so seed-sweep
    batches evaluate each distinct configuration exactly once ever.
    """

    def __init__(self, problem: Any, graph: Any, inputs: Labeling | None = None):
        from repro.kernels.vector import csr_arrays

        self.problem = problem
        self.graph = graph
        self.inputs_src = inputs
        self._inputs = inputs if inputs is not None else Labeling(graph)
        off, nbr, _, eids = csr_arrays(graph)
        num_nodes = graph.num_nodes
        num_edges = graph.num_edges
        self._num_nodes = num_nodes
        self._num_edges = num_edges
        self._off = off
        total = int(off[num_nodes]) if off.size else 0
        counts = np.diff(off)
        slot_node = np.repeat(np.arange(num_nodes, dtype=_I64), counts)
        slot_port = np.arange(total, dtype=_I64) - off[slot_node]
        self._slot_node = slot_node
        self._slot_port = slot_port
        loop_flat = (nbr == slot_node).astype(_I64)
        # Label interner: code 0 is EMPTY (the sparse default), decode
        # table mirrors it for message formatting.
        self._codes: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        self._intern(EMPTY)
        inp = self._inputs
        in_node = self._node_codes(inp)
        in_edge = self._edge_codes(inp)
        in_half = self._half_codes(inp)
        self._in_node, self._in_edge, self._in_half = in_node, in_edge, in_half
        # Edge sides: each eid fills exactly two flat slots; a stable
        # argsort by eid pairs them up with the lower (node, port) slot
        # first — the canonical ``a`` side.
        pairing = np.argsort(eids, kind="stable")
        self._a_slot = pairing[0::2]
        self._b_slot = pairing[1::2]
        self._a_node = slot_node[self._a_slot]
        self._b_node = slot_node[self._b_slot]
        self._edge_fixed = (
            np.stack(
                [
                    in_node[self._a_node],
                    in_node[self._b_node],
                    in_edge,
                    in_half[self._a_slot],
                    in_half[self._b_slot],
                    (self._a_node == self._b_node).astype(_I64),
                ],
                axis=1,
            )
            if num_edges
            else np.zeros((0, 6), dtype=_I64)
        )
        # Degree classes: rectangular (member, port) matrices per degree.
        classes = []
        for degree in np.unique(counts).tolist() if num_nodes else []:
            members = np.flatnonzero(counts == degree)
            slots = off[members][:, None] + np.arange(degree, dtype=_I64)[None, :]
            class_eids = eids[slots]
            fixed = np.concatenate(
                [
                    in_node[members][:, None],
                    in_edge[class_eids],
                    in_half[slots],
                    loop_flat[slots],
                ],
                axis=1,
            )
            classes.append((degree, members, slots, class_eids, fixed))
        self._classes = classes
        self._node_memo: dict[tuple[int, bytes], bool] = {}
        self._edge_memo: dict[bytes, int] = {}

    # -- label coding -----------------------------------------------------

    def _intern(self, label: Hashable) -> int:
        code = self._codes.get(label)
        if code is None:
            code = len(self._labels)
            self._codes[label] = code
            self._labels.append(label)
        return code

    def _code_list(self, labels: Iterable[Hashable]) -> list[int]:
        # Fast path: every label already interned (true for all calls
        # after the first on a given output alphabet) — a bare dict
        # lookup per label, no per-label function call.
        codes = self._codes
        try:
            return [codes[label] for label in labels]
        except KeyError:
            intern = self._intern
            return [intern(label) for label in labels]

    def _node_codes(self, labeling: Labeling) -> np.ndarray:
        out = np.zeros(self._num_nodes, dtype=_I64)
        entries = labeling._node
        if entries:
            count = len(entries)
            idx = np.fromiter(entries.keys(), dtype=_I64, count=count)
            out[idx] = np.fromiter(
                self._code_list(entries.values()), dtype=_I64, count=count
            )
        return out

    def _edge_codes(self, labeling: Labeling) -> np.ndarray:
        out = np.zeros(self._num_edges, dtype=_I64)
        entries = labeling._edge
        if entries:
            count = len(entries)
            idx = np.fromiter(entries.keys(), dtype=_I64, count=count)
            out[idx] = np.fromiter(
                self._code_list(entries.values()), dtype=_I64, count=count
            )
        return out

    def _half_codes(self, labeling: Labeling) -> np.ndarray:
        out = np.zeros(int(self._off[-1]) if self._off.size else 0, dtype=_I64)
        entries = labeling._half
        if entries:
            count = len(entries)
            pairs = np.fromiter(
                chain.from_iterable(entries.keys()), dtype=_I64, count=2 * count
            ).reshape(count, 2)
            out[self._off[pairs[:, 0]] + pairs[:, 1]] = np.fromiter(
                self._code_list(entries.values()), dtype=_I64, count=count
            )
        return out

    # -- the passes -------------------------------------------------------

    def _bad_codes(self, codes: np.ndarray, label_set: Any) -> np.ndarray:
        labels = self._labels
        bad = [
            code
            for code in np.unique(codes).tolist()
            if labels[code] not in label_set
        ]
        return np.asarray(bad, dtype=_I64)

    def _domain_violations(
        self,
        out_node: np.ndarray,
        out_edge: np.ndarray,
        out_half: np.ndarray,
    ) -> list[Violation]:
        problem = self.problem
        labels = self._labels
        violations: list[Violation] = []
        node_set = problem.node_outputs
        if node_set is not None:
            bad = self._bad_codes(out_node, node_set)
            if bad.size:
                for v in np.flatnonzero(np.isin(out_node, bad)).tolist():
                    violations.append(
                        Violation(
                            "domain",
                            ("node", v),
                            f"output label {labels[out_node[v]]!r} not in "
                            f"{node_set.name}",
                        )
                    )
        edge_set = problem.edge_outputs
        if edge_set is not None:
            bad = self._bad_codes(out_edge, edge_set)
            if bad.size:
                for eid in np.flatnonzero(np.isin(out_edge, bad)).tolist():
                    violations.append(
                        Violation(
                            "domain",
                            ("edge", eid),
                            f"output label {labels[out_edge[eid]]!r} not in "
                            f"{edge_set.name}",
                        )
                    )
        half_set = problem.half_outputs
        if half_set is not None and self._num_edges:
            # half_edges() iterates edge-major (a side then b side).
            slots = np.empty(2 * self._num_edges, dtype=_I64)
            slots[0::2] = self._a_slot
            slots[1::2] = self._b_slot
            bad = self._bad_codes(out_half, half_set)
            if bad.size:
                codes = out_half[slots]
                for i in np.flatnonzero(np.isin(codes, bad)).tolist():
                    slot = int(slots[i])
                    side = HalfEdge(
                        int(self._slot_node[slot]), int(self._slot_port[slot])
                    )
                    violations.append(
                        Violation(
                            "domain",
                            ("half", side),
                            f"output label {labels[codes[i]]!r} not in "
                            f"{half_set.name}",
                        )
                    )
        return violations

    def verify(self, outputs: Labeling) -> Verdict:
        """The verdict the object layer returns, bit for bit."""
        problem = self.problem
        out_node = self._node_codes(outputs)
        out_edge = self._edge_codes(outputs)
        out_half = self._half_codes(outputs)
        violations = self._domain_violations(out_node, out_edge, out_half)

        node_constraint = problem.node_constraint
        failed_nodes: list[int] = []
        for degree, members, slots, class_eids, fixed in self._classes:
            rows = np.concatenate(
                [
                    fixed,
                    out_node[members][:, None],
                    out_edge[class_eids],
                    out_half[slots],
                ],
                axis=1,
            )
            first, inverse = _dedupe_rows(rows)
            verdicts = np.empty(len(first), dtype=bool)
            for k, row_index in enumerate(first.tolist()):
                key = (degree, rows[row_index].tobytes())
                cached = self._node_memo.get(key)
                if cached is None:
                    representative = int(members[row_index])
                    config = node_configuration(
                        self.graph, representative, self._inputs, outputs
                    )
                    cached = bool(node_constraint(config))
                    self._node_memo[key] = cached
                verdicts[k] = cached
            failed_nodes.extend(members[~verdicts[inverse]].tolist())
        failed_nodes.sort()
        for v in failed_nodes:
            violations.append(
                Violation("node", v, f"node constraint of {problem.name} failed")
            )

        if self._num_edges:
            edge_constraint = problem.edge_constraint
            check_flip = not problem.edge_symmetric
            rows = np.concatenate(
                [
                    self._edge_fixed,
                    np.stack(
                        [
                            out_node[self._a_node],
                            out_node[self._b_node],
                            out_edge,
                            out_half[self._a_slot],
                            out_half[self._b_slot],
                        ],
                        axis=1,
                    ),
                ],
                axis=1,
            )
            first, inverse = _dedupe_rows(rows)
            verdicts = np.empty(len(first), dtype=np.int8)
            for k, row_index in enumerate(first.tolist()):
                key = rows[row_index].tobytes()
                cached = self._edge_memo.get(key)
                if cached is None:
                    representative = row_index
                    config = edge_configuration(
                        self.graph, representative, self._inputs, outputs
                    )
                    if not edge_constraint(config):
                        cached = 1
                    elif check_flip and not edge_constraint(config.flipped()):
                        cached = 2
                    else:
                        cached = 0
                    self._edge_memo[key] = cached
                verdicts[k] = cached
            per_edge = verdicts[inverse]
            for eid in np.flatnonzero(per_edge != 0).tolist():
                if per_edge[eid] == 1:
                    violations.append(
                        Violation(
                            "edge",
                            eid,
                            f"edge constraint of {problem.name} failed",
                        )
                    )
                else:
                    violations.append(
                        Violation(
                            "edge",
                            eid,
                            f"edge constraint of {problem.name} is asymmetric "
                            "(accepted one side order, rejected the other)",
                        )
                    )
        return Verdict(ok=not violations, violations=violations)


def vector_prepared(prepared: Any) -> VectorPreparedVerifier:
    """The cached vector twin of an object-layer PreparedVerifier."""
    twin = getattr(prepared, "_vector_twin", None)
    if twin is None:
        twin = VectorPreparedVerifier(
            prepared.problem, prepared.graph, prepared.inputs_src
        )
        prepared._vector_twin = twin
    return twin


def vector_verify(
    problem: Any, graph: Any, inputs: Labeling | None, outputs: Labeling
) -> Verdict:
    """One-shot vectorized ``verify(problem, graph, inputs, outputs)``
    with default options (no violation cap, no input-domain pass)."""
    return VectorPreparedVerifier(problem, graph, inputs).verify(outputs)
