"""Array twins of the repo's node programs.

Each class here is the :class:`~repro.local.simulator.ArrayProgram`
counterpart of an object node program — the parity node of
``repro.problems.trivial``, the Linial reduction node of
``repro.problems.coloring``, and the two flood probes of
``repro.local.flood`` — producing bit-identical results, halt rounds,
and traces through :func:`repro.kernels.engine.run_array_program`.

Import only behind :func:`repro.kernels.vector_enabled`: numpy loads at
module import.  The object programs stay the oracle; these only buy
time.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.kernels.engine import RoundInbox, SlotLayout, segment_reduce

__all__ = [
    "EccFloodProgram",
    "LinialProgram",
    "MinFloodProgram",
    "ParityProgram",
]

_I64 = np.int64
_I64_MAX = np.iinfo(np.int64).max
_POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=_I64)


def _popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of a ``(k, w)`` uint64 bitset matrix."""
    if words.size == 0:
        return np.zeros(words.shape[0], dtype=_I64)
    bytes_view = np.ascontiguousarray(words).view(np.uint8)
    return _POP8[bytes_view.reshape(words.shape[0], -1)].sum(axis=1)


class ParityProgram:
    """Array twin of ``_ParityNode``: halt at round 0 with deg mod 2."""

    def init_all(self, instance: Any, layout: SlotLayout) -> None:
        self._parity = layout.counts % 2

    def step_all(self, round_index: int, inbox: RoundInbox | None):
        return None, np.ones(self._parity.shape[0], dtype=bool)

    def results_all(self) -> list[Any]:
        return self._parity.tolist()


class MinFloodProgram:
    """Array twin of :class:`repro.local.flood.MinIdFloodNode`.

    Forward the smallest value seen; halt the round after it stops
    changing.  Halting is staggered (nodes far from the minimum run
    longer), so this program exercises active-set compaction.
    """

    def init_all(self, instance: Any, layout: SlotLayout) -> None:
        self._layout = layout
        self._value = np.arange(layout.num_nodes, dtype=_I64)
        self._changed = np.ones(layout.num_nodes, dtype=bool)

    def step_all(self, round_index: int, inbox: RoundInbox | None):
        if inbox is not None:
            flat = np.where(
                inbox.sent[inbox.slots], inbox.values[inbox.slots], _I64_MAX
            )
            best = segment_reduce(np.minimum, flat, inbox.lengths, _I64_MAX)
            own = self._value[inbox.active]
            best = np.minimum(best, own)
            self._changed[inbox.active] = best != own
            self._value[inbox.active] = best
        return self._value[self._layout.node_of], ~self._changed

    def results_all(self) -> list[Any]:
        return self._value.tolist()


class EccFloodProgram:
    """Array twin of :class:`repro.local.flood.FloodNode`.

    The object node floods frozensets of ids; here each heard/fresh set
    is a row of packed uint64 bitset words, the per-node union is a
    segmented bitwise-or, and "heard everyone" is a running popcount —
    same delta-flood semantics, same ``done_at`` results.
    """

    def init_all(self, instance: Any, layout: SlotLayout) -> None:
        self._layout = layout
        n = layout.num_nodes
        self._n = n
        words = max(1, (n + 63) // 64)
        bits = np.zeros((n, words), dtype=np.uint64)
        idx = np.arange(n)
        bits[idx, idx // 64] = np.uint64(1) << (idx % 64).astype(np.uint64)
        self._heard = bits
        self._fresh = bits.copy()
        self._count = np.ones(n, dtype=_I64)
        self._done_at = np.full(n, -1, dtype=_I64)
        if n == 1:
            self._done_at[0] = 0

    def step_all(self, round_index: int, inbox: RoundInbox | None):
        if inbox is not None:
            flat = np.where(
                inbox.sent[inbox.slots, None],
                inbox.values[inbox.slots],
                np.uint64(0),
            )
            incoming = segment_reduce(
                np.bitwise_or, flat, inbox.lengths, np.uint64(0)
            )
            act = inbox.active
            new = incoming & ~self._heard[act]
            self._heard[act] |= new
            self._fresh[act] = new
            self._count[act] += _popcount_rows(new)
            # the object node sets done_at = message_round + 1; this
            # step processes the messages of round_index - 1
            done = act[self._count[act] == self._n]
            self._done_at[done] = round_index
        return self._fresh[self._layout.node_of], self._done_at >= 0

    def results_all(self) -> list[Any]:
        return [r if r >= 0 else None for r in self._done_at.tolist()]


def _poly_points(colors: np.ndarray, q: int, d: int) -> np.ndarray:
    """Row ``i`` is ``polynomial_set(colors[i], q, d)`` — the graph of
    the color's degree-d polynomial over GF(q), ordered by x."""
    value = colors.astype(_I64, copy=True)
    coeffs = np.empty((colors.shape[0], d + 1), dtype=_I64)
    for j in range(d + 1):
        coeffs[:, j] = value % q
        value //= q
    x = np.arange(q, dtype=_I64)
    powers = np.ones((d + 1, q), dtype=_I64)
    for j in range(1, d + 1):
        powers[j] = (powers[j - 1] * x) % q
    return x * q + (coeffs @ powers) % q


class LinialProgram:
    """Array twin of ``_LinialNode``: the whole Linial reduction.

    Reduction rounds evaluate every node's polynomial cover-free set in
    one ``(nodes, q)`` matrix, block neighbor sets through a boolean
    ``(nodes, q^2)`` scatter, and pick each node's first unblocked own
    point; elimination rounds recolor the eliminated class from a
    ``(selected, target)`` taken-color bitmap.  Same schedule, same
    first-free tie-breaks, same total round count as the object node.
    """

    def __init__(self, schedule, target: int, id_space: int):
        self._schedule = list(schedule)
        self._target = target
        self._id_space = id_space

    def init_all(self, instance: Any, layout: SlotLayout) -> None:
        self._layout = layout
        self._colors = np.asarray(instance.ids.as_list(), dtype=_I64) - 1
        schedule = self._schedule
        self._palette_after = (
            schedule[-1][0] ** 2 if schedule else self._id_space
        )
        self._phase_splits = len(schedule)
        self._total_rounds = self._phase_splits + max(
            self._palette_after - self._target, 0
        )

    def step_all(self, round_index: int, inbox: RoundInbox | None):
        layout = self._layout
        if inbox is not None:
            self._receive(round_index - 1, inbox)
        if round_index >= self._total_rounds:
            return None, np.ones(layout.num_nodes, dtype=bool)
        return self._colors[layout.node_of], None

    def _receive(self, step: int, inbox: RoundInbox) -> None:
        layout = self._layout
        act = inbox.active
        slots = inbox.slots
        # per-slot neighbor colors of active receivers; self-loop slots
        # are excluded like the object node's neighbor(v, port) != v
        valid = inbox.sent[slots] & layout.not_loop[slots]
        recv_row = np.repeat(
            np.arange(act.shape[0], dtype=_I64), inbox.lengths
        )
        flat = inbox.values[slots]
        if step < self._phase_splits:
            q, d = self._schedule[step]
            own = self._colors[act]
            if np.any(valid & (flat == own[recv_row])):
                raise ValueError(
                    "reduce_color requires a proper input coloring"
                )
            rows = recv_row[valid]
            nbr_points = _poly_points(flat[valid], q, d)
            blocked = np.zeros((act.shape[0], q * q), dtype=bool)
            blocked[np.repeat(rows, q), nbr_points.reshape(-1)] = True
            own_points = _poly_points(own, q, d)
            free = ~blocked[
                np.arange(act.shape[0], dtype=_I64)[:, None], own_points
            ]
            covered = free.any(axis=1)
            if not covered.all():
                bad = int(np.flatnonzero(~covered)[0])
                neighbors = int(np.count_nonzero(rows == bad))
                raise ValueError(
                    f"cover-freeness violated: q={q}, d={d}, "
                    f"{neighbors} neighbors"
                )
            self._colors[act] = own_points[
                np.arange(act.shape[0], dtype=_I64), free.argmax(axis=1)
            ]
        else:
            eliminated = self._palette_after - 1 - (step - self._phase_splits)
            sel_rows = np.flatnonzero(self._colors[act] == eliminated)
            if sel_rows.size == 0:
                return
            sel_of_row = np.full(act.shape[0], -1, dtype=_I64)
            sel_of_row[sel_rows] = np.arange(sel_rows.shape[0], dtype=_I64)
            mask = valid & (sel_of_row[recv_row] >= 0) & (flat < self._target)
            taken = np.zeros((sel_rows.shape[0], self._target), dtype=bool)
            taken[sel_of_row[recv_row[mask]], flat[mask]] = True
            free = ~taken
            if not free.any(axis=1).all():
                raise ValueError("min() arg is an empty sequence")
            self._colors[act[sel_rows]] = free.argmax(axis=1)

    def results_all(self) -> list[Any]:
        return self._colors.tolist()
