"""numpy frontier/gather kernels over the frozen CSR tables.

Import this module only behind :func:`repro.kernels.vector_enabled` (or
after checking ``repro.kernels.HAVE_NUMPY``): it imports numpy at module
load.

Every kernel here is the array-at-a-time twin of an object-layer
function and reproduces it **bit-identically** — not just the same sets,
but the same dict insertion orders, the same first-discovery parent
choices, the same list orderings.  The trick throughout is that
level-synchronous BFS reproduces the object layer's first-discovery
rule exactly: candidates are laid out in frontier-queue-major,
port-minor order (the exact scan order of the object loop), and a
reversed scatter into a per-node scratch array marks each node's
*first* discovering slot in O(candidates) — duplicates are dropped
without the sort a ``np.unique`` pass would pay, and the surviving
candidates are already in discovery order.
"""

from __future__ import annotations

from itertools import chain, repeat
from typing import Any, Iterable

import numpy as np

__all__ = [
    "DeliveryPlan",
    "bfs_distances",
    "connected_components",
    "csr_arrays",
    "multi_source_bfs",
    "scan_order",
]

_I64 = np.int64


def csr_arrays(graph: Any) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The graph's CSR tables as zero-copy int64 ndarrays.

    ``PortGraph.csr()`` hands out read-only buffer-protocol views;
    ``np.frombuffer`` wraps them without copying, and the resulting
    arrays inherit the read-only flag — kernels cannot corrupt the
    shared tables any more than object-layer callers can.
    """
    off, nbr, peer, eids = graph.csr()
    return (
        np.frombuffer(off, dtype=_I64),
        np.frombuffer(nbr, dtype=_I64),
        np.frombuffer(peer, dtype=_I64),
        np.frombuffer(eids, dtype=_I64),
    )


def _expand(off: np.ndarray, frontier: np.ndarray) -> np.ndarray:
    """Flat CSR slot indices of all ports of ``frontier``, in
    frontier-major port-minor order (the object loop's scan order)."""
    starts = off[frontier]
    counts = off[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=_I64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=_I64) + np.repeat(starts - (ends - counts), counts)


def _discoveries(
    stamp: np.ndarray,
    unvisited: np.ndarray,
    targets: np.ndarray,
    idx_buf: np.ndarray,
) -> np.ndarray:
    """Keep-mask of this level's BFS discoveries among raw ``targets``.

    ``targets`` holds the level's neighbor scan in frontier-major
    port-minor order (the object loop's scan order).  The reversed
    scatter writes each node's *earliest* target index last, so
    ``stamp[targets] == idx`` marks exactly the first occurrence of
    each node — the object loop's discovery rule — without sorting,
    and compressing ``targets`` by the mask yields discovery order.
    The visited filter is fused into the same mask: a visited node
    drops *every* occurrence, so filtering can never promote a later
    slot to first.  (``unvisited`` is kept inverted so the filter is
    a plain gather, no per-level negation.)

    ``stamp`` is caller-owned per-node scratch: every position read
    here was written this call, and every surviving node is marked
    visited right after, so stale entries are never consulted.
    ``idx_buf`` is a caller-owned ``arange`` over the run's maximum
    scan width, sliced instead of reallocated per level.
    """
    idx = idx_buf[: targets.size]
    stamp[targets[::-1]] = idx[::-1]
    return (stamp[targets] == idx) & unvisited[targets]


#: Degree-bucketed expansion pays one broadcast gather per distinct
#: degree; past this many buckets the cumsum/repeat path wins back.
_MAX_DEGREE_BUCKETS = 16


def _expand_bucketed(
    off: np.ndarray,
    counts: np.ndarray,
    degrees: np.ndarray,
    frontier: np.ndarray,
) -> np.ndarray:
    """Bucketed :func:`_expand`: group the frontier by degree, emit each
    bucket with one ``(members, d)`` broadcast, and scatter the blocks
    into the frontier-major port-minor output positions — identical
    output to the general expansion, without its cumsum/repeat passes.
    """
    frontier_counts = counts[frontier]
    total = int(frontier_counts.sum())
    out = np.empty(total, dtype=_I64)
    ends = np.cumsum(frontier_counts)
    out_starts = ends - frontier_counts
    for d in degrees.tolist():
        if d == 0:
            continue
        members = np.flatnonzero(frontier_counts == d)
        if members.size == 0:
            continue
        ports = np.arange(d, dtype=_I64)
        block = off[frontier[members]][:, None] + ports
        positions = out_starts[members][:, None] + ports
        out[positions.reshape(-1)] = block.reshape(-1)
    return out


def _frontier_expander(off: np.ndarray):
    """Per-run ``frontier -> flat slots`` function.

    Regular graphs (every instance family this repo benchmarks —
    cubic, torus, cycle) take a two-op broadcast; irregular graphs
    with few distinct degrees get a per-bucket single gather; only
    graphs with many distinct degrees fall back to the general
    cumsum/repeat :func:`_expand`.
    """
    counts = np.diff(off)
    if counts.size and int(counts.min()) == int(counts.max()):
        ports = np.arange(int(counts[0]), dtype=_I64)

        def expand(frontier: np.ndarray) -> np.ndarray:
            return (off[frontier][:, None] + ports).reshape(-1)

        return expand
    degrees = np.unique(counts)
    if degrees.size and degrees.size <= _MAX_DEGREE_BUCKETS:
        return lambda frontier: _expand_bucketed(off, counts, degrees, frontier)
    return lambda frontier: _expand(off, frontier)


def _frontier_scanner(off: np.ndarray, table: np.ndarray):
    """Per-run ``frontier -> table[slots of frontier]`` function.

    For uniform-degree graphs the CSR offsets are exactly ``v * d``,
    so the whole expand-then-gather chain collapses to one fancy index
    into the table reshaped ``(num_nodes, d)`` — the cheapest possible
    neighbor scan.  Irregular graphs gather through the general slot
    expansion.
    """
    counts = np.diff(off)
    if counts.size and int(counts.min()) == int(counts.max()) and counts[0]:
        matrix = table.reshape(-1, int(counts[0]))

        def scan(frontier: np.ndarray) -> np.ndarray:
            # take(axis=0) is several times faster than fancy row
            # indexing for these small-row gathers.
            return matrix.take(frontier, axis=0).reshape(-1)

        return scan
    # irregular: gather through the (possibly bucketed) slot expansion
    expand = _frontier_expander(off)
    return lambda frontier: table.take(expand(frontier))


def bfs_distances(
    graph: Any, source: int, max_radius: int | None = None
) -> dict[int, int]:
    """Vector twin of :func:`repro.local.distances.bfs_distances`."""
    off, nbr, _, _ = csr_arrays(graph)
    unvisited = np.ones(graph.num_nodes, dtype=bool)
    unvisited[source] = False
    stamp = np.empty(graph.num_nodes, dtype=_I64)
    idx_buf = np.arange(nbr.size, dtype=_I64)
    scan = _frontier_scanner(off, nbr)
    dist = {source: 0}
    update = dist.update
    frontier = np.array([source], dtype=_I64)
    depth = 0
    while frontier.size:
        if max_radius is not None and depth >= max_radius:
            break
        targets = scan(frontier)
        if targets.size == 0:
            break
        frontier = targets.compress(_discoveries(stamp, unvisited, targets, idx_buf))
        unvisited[frontier] = False
        depth += 1
        update(zip(frontier.tolist(), repeat(depth)))
    return dist


def multi_source_bfs(
    graph: Any, sources: Iterable[int]
) -> tuple[dict[int, int], dict[int, int]]:
    """Vector twin of :func:`repro.local.distances.multi_source_bfs`."""
    off, nbr, _, eids = csr_arrays(graph)
    dist: dict[int, int] = {}
    parent_edge: dict[int, int] = {}
    roots: list[int] = []
    for s in sources:
        if s not in dist:
            dist[s] = 0
            roots.append(s)
    unvisited = np.ones(graph.num_nodes, dtype=bool)
    stamp = np.empty(graph.num_nodes, dtype=_I64)
    idx_buf = np.arange(nbr.size, dtype=_I64)
    expand = _frontier_expander(off)
    frontier = np.array(roots, dtype=_I64)
    unvisited[frontier] = False
    depth = 0
    while frontier.size:
        slots = expand(frontier)
        if slots.size == 0:
            break
        targets = nbr.take(slots)
        keep = _discoveries(stamp, unvisited, targets, idx_buf)
        frontier = targets.compress(keep)
        # The discovering slot also fixes the parent edge — identical
        # to the object loop's first-discovery assignment.
        parents = eids.take(slots.compress(keep))
        unvisited[frontier] = False
        depth += 1
        dist.update(zip(frontier.tolist(), repeat(depth)))
        parent_edge.update(zip(frontier.tolist(), parents.tolist()))
    return dist, parent_edge


def connected_components(graph: Any) -> list[list[int]]:
    """Vector twin of :func:`repro.local.distances.connected_components`."""
    off, nbr, _, _ = csr_arrays(graph)
    num_nodes = graph.num_nodes
    unseen = np.ones(num_nodes, dtype=bool)
    stamp = np.empty(num_nodes, dtype=_I64)
    idx_buf = np.arange(nbr.size, dtype=_I64)
    scan = _frontier_scanner(off, nbr)
    components: list[list[int]] = []
    for start in range(num_nodes):
        if not unseen[start]:
            continue
        unseen[start] = False
        members = [start]
        frontier = np.array([start], dtype=_I64)
        while frontier.size:
            targets = scan(frontier)
            if targets.size == 0:
                break
            frontier = targets.compress(
                _discoveries(stamp, unseen, targets, idx_buf)
            )
            unseen[frontier] = False
            members.extend(frontier.tolist())
        components.append(sorted(members))
    return components


def scan_order(
    graph: Any, ids: Any
) -> tuple[list[int], list[int], list[int]]:
    """Per-node port permutations in increasing (neighbor-id, port) order.

    Returns ``(offsets, ordered_neighbors, ordered_eids)`` as plain
    lists: slot ``offsets[v] + k`` holds node ``v``'s k-th port *after*
    sorting its ports by ``(identifier of neighbor, port)`` — exactly
    the exploration order the deterministic sinkless solver's
    ``anchor_scan`` computes with per-visit ``sorted`` calls.  One
    lexsort over the flat tables replaces ~|ball| small sorts per scan
    center, which is where that solver spends most of its time.
    """
    off, nbr, _, eids = csr_arrays(graph)
    total = nbr.shape[0]
    counts = np.diff(off)
    node_of = np.repeat(np.arange(graph.num_nodes, dtype=_I64), counts)
    port_of = np.arange(total, dtype=_I64) - off[node_of]
    id_table = np.asarray(ids.as_list(), dtype=_I64)
    # lexsort: last key is primary — group by node, then neighbor id,
    # then port, matching sorted(key=(id(neighbor), port)) per node.
    perm = np.lexsort((port_of, id_table[nbr], node_of))
    return off.tolist(), nbr[perm].tolist(), eids[perm].tolist()


class DeliveryPlan:
    """SyncEngine message delivery as one gather/scatter per round.

    The destination of the message leaving flat slot ``(v, p)`` is the
    flat slot of the half-edge across the edge: ``off[nbr] + peer`` — a
    fixed permutation of the slots, computed once per run.  Per round,
    active outboxes are packed into one object-dtype array (halted
    senders leave the explicit ``None`` the object loop delivers) and
    delivered with a single fancy-index scatter.
    """

    __slots__ = ("_off", "_np_off", "_dest", "_total", "_deg")

    def __init__(self, graph: Any):
        off, nbr, peer, _ = csr_arrays(graph)
        self._off = off.tolist()
        self._np_off = off
        self._dest = off[nbr] + peer
        self._total = int(off[-1]) if off.size else 0
        self._deg = np.diff(off).tolist()

    def deliver(
        self, outboxes: list[list[Any] | None], halted: list[bool]
    ) -> list[list[Any] | None]:
        """Inboxes for this round: ``None`` for halted receivers, else
        the per-port message list (``None`` entries from halted
        senders), exactly like the object delivery loop.

        One flat object array per direction: active outboxes are
        chained into a single flat list (C-speed), scattered to their
        slot range in one assignment, permuted through ``_dest`` in one
        fancy-index scatter, and sliced back out of one ``tolist()`` —
        no per-sender numpy calls on the round path.
        """
        off = self._off
        senders = [v for v, out in enumerate(outboxes) if out is not None]
        out_flat = np.full(self._total, None, dtype=object)
        if senders:
            flat = list(
                chain.from_iterable(
                    out for out in outboxes if out is not None
                )
            )
            # fromiter (not asarray): messages may themselves be
            # sequences, which asarray would try to stack into 2-D.
            flat_arr = np.fromiter(flat, dtype=object, count=len(flat))
            if len(senders) == len(outboxes):
                out_flat = flat_arr
            else:
                slots = _expand(
                    self._np_off, np.asarray(senders, dtype=_I64)
                )
                out_flat[slots] = flat_arr
        in_flat = np.empty(self._total, dtype=object)
        in_flat[self._dest] = out_flat
        in_list = in_flat.tolist()
        deg = self._deg
        return [
            None if halted[v] else in_list[off[v] : off[v] + deg[v]]
            for v in range(len(outboxes))
        ]
