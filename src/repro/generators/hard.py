"""Instance factories for the complexity sweeps.

The hard inputs of the paper's base problem are locally tree-like
min-degree-3 graphs; random cubic graphs provide them at every size.
``padded_hard_instance`` follows the Lemma 5 recipe to produce the
hard inputs of the padded levels.
"""

from __future__ import annotations

import random

from repro.core.family import FamilyLevel
from repro.core.hard_instances import _lifted_ids, hard_instance, paper_f
from repro.generators.regular import random_regular
from repro.local.algorithm import Instance
from repro.local.identifiers import random_ids
from repro.runtime.registry import register_family
from repro.util.rng import NodeRng

__all__ = ["cubic_instance", "padded_hard_instance", "family_hard_instance"]


@register_family(
    "cubic",
    description="random 3-regular graphs (locally tree-like hard inputs)",
    max_degree=3,
    min_degree=3,
    test_sizes=(16, 30),
    # The seed picks the regular graph itself: no topology sharing.
    topology_seeded=True,
)
def cubic_instance(n: int, seed: int) -> Instance:
    """A random 3-regular instance with random identifiers."""
    n = n if n % 2 == 0 else n + 1
    rng = random.Random(0xABCDEF ^ (n * 1_000_003) ^ seed)
    graph = random_regular(n, 3, rng)
    ids = random_ids(n, rng)
    return Instance(graph, ids, None, None, NodeRng(seed))


def padded_hard_instance(
    level: FamilyLevel, target_n: int, seed: int
) -> Instance:
    """A Lemma 5 hard instance for Pi_i, padded i-1 times.

    The innermost base graph is a random cubic graph on
    ``f^(i-1)(target_n)`` nodes with f(x) = floor(sqrt(x)).
    """
    sizes = [target_n]
    for _ in range(level.index - 1):
        sizes.append(max(paper_f(sizes[-1]), 6))
    instance = cubic_instance(sizes[-1], seed)
    if level.index == 1:
        return instance
    from repro.core.family import build_family

    chain = build_family(level.index)
    for depth, target in enumerate(reversed(sizes[:-1]), start=1):
        layer = chain[depth]
        family = layer.family
        assert family is not None
        hard = hard_instance(instance.graph, family, target, instance.inputs)
        instance = Instance(
            graph=hard.graph,
            ids=_lifted_ids(instance.ids, hard),
            inputs=hard.inputs,
            n_hint=target,
            rng=NodeRng(seed),
        )
    return instance


def family_hard_instance(level: FamilyLevel):
    """An instance factory (n, seed) -> Instance for sweeps of Pi_i."""

    def factory(n: int, seed: int) -> Instance:
        return padded_hard_instance(level, n, seed)

    return factory
