"""Classic graph families: cycles, paths, trees, grids, and friends.

The ``*_instance`` builders at the bottom wrap the raw graph
constructors into registered runtime families — random identifiers,
a per-trial ``NodeRng``, deterministic in ``(n, seed)``.
"""

from __future__ import annotations

import math
import random

from repro.local.builder import GraphBuilder
from repro.local.graphs import PortGraph
from repro.runtime.registry import register_family

__all__ = [
    "cycle",
    "path",
    "complete",
    "star",
    "complete_binary_tree",
    "torus_grid",
    "disjoint_union",
    "with_isolated_nodes",
    "cycle_instance",
    "path_instance",
    "torus_instance",
    "tree_instance",
]


def cycle(n: int) -> PortGraph:
    """The n-cycle; n = 1 is a self-loop, n = 2 a parallel pair."""
    if n < 1:
        raise ValueError("cycle needs at least one node")
    builder = GraphBuilder(n)
    for v in range(n):
        builder.add_edge(v, (v + 1) % n)
    return builder.build()


def path(n: int) -> PortGraph:
    """The n-node path."""
    if n < 1:
        raise ValueError("path needs at least one node")
    return PortGraph.from_edge_list(n, [(v, v + 1) for v in range(n - 1)])


def complete(n: int) -> PortGraph:
    """The complete graph K_n."""
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return PortGraph.from_edge_list(n, pairs)


def star(leaves: int) -> PortGraph:
    """A star with the given number of leaves; node 0 is the center."""
    return PortGraph.from_edge_list(leaves + 1, [(0, v) for v in range(1, leaves + 1)])


def complete_binary_tree(height: int) -> PortGraph:
    """A complete binary tree with ``height`` levels (2**height - 1 nodes)."""
    if height < 1:
        raise ValueError("height must be at least 1")
    n = 2**height - 1
    pairs = []
    for v in range(1, n):
        pairs.append(((v - 1) // 2, v))
    return PortGraph.from_edge_list(n, pairs)


def torus_grid(rows: int, cols: int) -> PortGraph:
    """A toroidal grid (4-regular when rows, cols >= 3)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")

    def at(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    pairs = []
    for r in range(rows):
        for c in range(cols):
            if cols > 1:
                pairs.append((at(r, c), at(r, c + 1)))
            if rows > 1:
                pairs.append((at(r, c), at(r + 1, c)))
    return PortGraph.from_edge_list(rows * cols, pairs)


def disjoint_union(*graphs: PortGraph) -> PortGraph:
    """The disjoint union, preserving each part's port structure."""
    from repro.local.graphs import HalfEdge

    total = sum(g.num_nodes for g in graphs)
    edges = []
    offset = 0
    for g in graphs:
        for edge in g.edges():
            a = HalfEdge(edge.a.node + offset, edge.a.port)
            b = HalfEdge(edge.b.node + offset, edge.b.port)
            edges.append((a, b))
        offset += g.num_nodes
    return PortGraph(total, edges)


def with_isolated_nodes(graph: PortGraph, count: int) -> PortGraph:
    """Append ``count`` isolated nodes (used by the Lemma 5 instances)."""
    from repro.local.graphs import HalfEdge

    edges = [(edge.a, edge.b) for edge in graph.edges()]
    return PortGraph(graph.num_nodes + count, edges)


# -- registered instance families --------------------------------------
#
# Every classic family's graph depends on ``n`` alone; the seed only
# selects identifiers and the per-node randomness.  Each registration
# therefore declares ``topology_seeded=False`` and splits the builder
# into the frozen ``topology`` (shared across seeds by batched drivers)
# and the cheap per-seed ``_instance`` dressing.


def _instance(graph: PortGraph, n: int, seed: int):
    """Random-id instance with a seeded rng, deterministic in (n, seed)."""
    from repro.local import Instance
    from repro.local.identifiers import random_ids
    from repro.util.rng import NodeRng

    rng = random.Random(seed * 7919 + n)
    return Instance(
        graph, random_ids(graph.num_nodes, rng), None, None, NodeRng(seed)
    )


def _torus_topology(n: int) -> PortGraph:
    side = max(3, math.isqrt(max(n, 1)))
    return torus_grid(side, side)


def _tree_topology(n: int) -> PortGraph:
    height = max(1, (max(n, 1) + 1).bit_length() - 1)
    return complete_binary_tree(height)


@register_family(
    "cycle",
    description="the n-cycle with random identifiers",
    max_degree=2,
    min_degree=2,
    test_sizes=(5, 12),
    topology_seeded=False,
    topology=cycle,
    dress=_instance,
)
def cycle_instance(n: int, seed: int):
    """A cycle with random identifiers (trivial / coloring rows)."""
    return _instance(cycle(n), n, seed)


@register_family(
    "path",
    description="the n-node path with random identifiers",
    max_degree=2,
    min_degree=1,
    test_sizes=(6, 13),
    topology_seeded=False,
    topology=path,
    dress=_instance,
)
def path_instance(n: int, seed: int):
    """A path with random identifiers."""
    return _instance(path(n), n, seed)


@register_family(
    "torus",
    description="a ~sqrt(n) x sqrt(n) toroidal grid (4-regular)",
    max_degree=4,
    min_degree=4,
    test_sizes=(9, 25),
    topology_seeded=False,
    topology=_torus_topology,
    dress=_instance,
)
def torus_instance(n: int, seed: int):
    """A near-square torus grid of roughly n nodes."""
    return _instance(_torus_topology(n), n, seed)


@register_family(
    "tree",
    description="the complete binary tree with ~n nodes",
    max_degree=3,
    min_degree=1,
    test_sizes=(7, 15),
    topology_seeded=False,
    topology=_tree_topology,
    dress=_instance,
)
def tree_instance(n: int, seed: int):
    """The complete binary tree whose size is the largest 2^h - 1 <= n."""
    return _instance(_tree_topology(n), n, seed)
