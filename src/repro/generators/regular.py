"""Random regular graphs and girth surgery.

The hard instances for sinkless orientation are bounded-degree graphs
of minimum degree 3 that look locally tree-like; random d-regular
graphs have exactly that property (their short cycles are sparse), and
``lift_girth`` removes the few short cycles by local edge surgery when
a guaranteed girth floor is wanted.
"""

from __future__ import annotations

import random

from repro.local.distances import girth
from repro.local.graphs import PortGraph
from repro.runtime.registry import register_family

__all__ = [
    "random_regular",
    "configuration_model",
    "lift_girth",
    "high_girth_cubic_instance",
]


def configuration_model(n: int, degree: int, rng: random.Random) -> PortGraph:
    """One configuration-model sample (may contain loops/parallels)."""
    if n * degree % 2 != 0:
        raise ValueError("n * degree must be even")
    stubs = [v for v in range(n) for _ in range(degree)]
    rng.shuffle(stubs)
    pairs = [(stubs[i], stubs[i + 1]) for i in range(0, len(stubs), 2)]
    return PortGraph.from_edge_list(n, pairs)


def random_regular(
    n: int, degree: int, rng: random.Random, simple: bool = True, max_tries: int = 200
) -> PortGraph:
    """A random d-regular graph; resamples until simple when requested."""
    for _ in range(max_tries):
        graph = configuration_model(n, degree, rng)
        if not simple or graph.is_simple():
            return graph
    raise RuntimeError(
        f"failed to sample a simple {degree}-regular graph on {n} nodes"
    )


def _short_cycle_edge(graph: PortGraph, below: int) -> tuple[int, int] | None:
    """Return (eid of an edge on a cycle shorter than ``below``, length)."""
    off, nbr, _, eids = graph.csr()
    for source in graph.nodes():
        dist = {source: 0}
        parent = {source: -1}
        queue = [source]
        for v in queue:
            d = dist[v]
            if d * 2 >= below:
                continue
            for slot in range(off[v], off[v + 1]):
                u = nbr[slot]
                eid = eids[slot]
                if u == v:
                    return eid, 1
                if u not in dist:
                    dist[u] = d + 1
                    parent[u] = eid
                    queue.append(u)
                elif parent[v] != eid:
                    length = dist[u] + d + 1
                    if length < below:
                        return eid, length
    return None


def lift_girth(
    graph: PortGraph,
    min_girth: int,
    rng: random.Random,
    max_swaps: int | None = None,
) -> PortGraph:
    """Raise the girth to at least ``min_girth`` by random 2-swaps.

    Repeatedly finds an edge lying on a short cycle and swaps it with a
    uniformly random other edge (the classic degree-preserving double
    edge swap).  Terminates when no cycle shorter than ``min_girth``
    remains; raises if the budget runs out, which indicates the girth
    target is infeasible at this size (a d-regular graph on n nodes has
    girth O(log n)).
    """
    if max_swaps is None:
        max_swaps = 50 * graph.num_edges + 1000
    pairs = [(e.a.node, e.b.node) for e in graph.edges()]
    n = graph.num_nodes
    current = graph
    for _ in range(max_swaps):
        found = _short_cycle_edge(current, min_girth)
        if found is None:
            return current
        bad_eid, _length = found
        other_eid = rng.randrange(len(pairs))
        if other_eid == bad_eid:
            continue
        a, b = pairs[bad_eid]
        c, d = pairs[other_eid]
        if rng.random() < 0.5:
            new_pairs = [(a, c), (b, d)]
        else:
            new_pairs = [(a, d), (b, c)]
        pairs[bad_eid] = new_pairs[0]
        pairs[other_eid] = new_pairs[1]
        candidate = PortGraph.from_edge_list(n, pairs)
        current = candidate
    g = girth(current)
    raise RuntimeError(
        f"girth surgery did not reach girth {min_girth} (currently {g}); "
        "the target is likely infeasible at this size"
    )


@register_family(
    "high-girth-cubic",
    description="random cubic graphs lifted to girth >= 6 by edge surgery",
    max_degree=3,
    min_degree=3,
    girth_at_least=6,
    test_sizes=(24, 40),
    # Sampling and girth surgery both consume the seed: no sharing.
    topology_seeded=True,
)
def high_girth_cubic_instance(n: int, seed: int):
    """A 3-regular instance with no cycle shorter than 6.

    The anchor-scan solver's Theta(log n) radius shows cleanest on
    these: the shortest certifying cycle cannot appear before radius 3.
    """
    from repro.local import Instance
    from repro.local.identifiers import random_ids
    from repro.util.rng import NodeRng

    n = n if n % 2 == 0 else n + 1
    rng = random.Random(0x617274 ^ (n * 1_000_003) ^ seed)
    graph = lift_girth(random_regular(n, 3, rng), 6, rng)
    return Instance(graph, random_ids(n, rng), None, None, NodeRng(seed))
