"""Instance generators: classic families, regular graphs, padded graphs."""

from repro.generators.classic import (
    complete,
    complete_binary_tree,
    cycle,
    cycle_instance,
    disjoint_union,
    path,
    path_instance,
    star,
    torus_grid,
    torus_instance,
    tree_instance,
    with_isolated_nodes,
)
from repro.generators.hard import (
    cubic_instance,
    family_hard_instance,
    padded_hard_instance,
)
from repro.generators.regular import (
    configuration_model,
    high_girth_cubic_instance,
    lift_girth,
    random_regular,
)

__all__ = [
    "cubic_instance",
    "family_hard_instance",
    "padded_hard_instance",
    "complete",
    "complete_binary_tree",
    "cycle",
    "cycle_instance",
    "disjoint_union",
    "path",
    "path_instance",
    "star",
    "torus_grid",
    "torus_instance",
    "tree_instance",
    "with_isolated_nodes",
    "configuration_model",
    "high_girth_cubic_instance",
    "lift_girth",
    "random_regular",
]
