"""Process-pool task dispatch with a guaranteed serial fallback.

The pool maps a top-level function over a list of picklable payloads.
Dispatch is chunked (few large pickles beat many small ones for
millisecond-scale trials) and **order-preserving**, so downstream
aggregation sees results in task order regardless of worker count —
that is what makes ``workers=1`` and ``workers=4`` bit-identical.

Every worker runs an initializer that reseeds the global ``random``
module from a per-worker derivation of the pool seed.  Trial
determinism never relies on that — each trial carries its own seed and
builds its own generators — but it closes the classic fork bug where
all children inherit one duplicated global RNG state.

When ``workers <= 1``, the task list is tiny, or the platform cannot
deliver a working process pool (no ``fork``/``spawn``, sandboxed
semaphores, unpicklable payloads), execution degrades to a plain
serial loop with identical semantics.
"""

from __future__ import annotations

import concurrent.futures
import logging
import multiprocessing
import os
import pickle
import random
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.obs import get_telemetry

__all__ = ["WorkerCrashed", "default_workers", "run_task_batches", "run_tasks"]

_LOG = logging.getLogger("repro.engine")

# Derivation salt for per-worker global-RNG reseeding (mirrors
# repro.util.rng's golden-ratio mixing).
_WORKER_SALT = 0x9E3779B97F4A7C15


class WorkerCrashed(RuntimeError):
    """A pool worker process died mid-batch (signal, OOM kill, hard exit).

    Distinct from a task *raising*: an exception propagates as itself,
    while a vanished process can only be observed from the outside.
    ``chunk_indices`` are the batch positions whose results were lost;
    batches that completed before the crash were already streamed
    through ``on_result`` (and are not listed), so a caller that
    persists results as they arrive retries exactly the lost chunks.
    """

    def __init__(self, chunk_indices: Sequence[int], message: str | None = None):
        self.chunk_indices = tuple(int(i) for i in chunk_indices)
        super().__init__(
            message
            or (
                f"a worker process died; {len(self.chunk_indices)} "
                f"chunk(s) lost: {list(self.chunk_indices)}"
            )
        )


def default_workers() -> int:
    """A conservative worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _worker_init(pool_seed: int) -> None:  # pragma: no cover - runs in child
    mixed = (pool_seed * 0x100000001B3 + os.getpid() * _WORKER_SALT)
    mixed &= 0xFFFFFFFFFFFFFFFF
    random.seed(mixed ^ (mixed >> 33))
    # A forked worker inherits the parent's accrued telemetry and any
    # open trace sink.  Drop both: the parent snapshots its own deltas
    # itself (inheriting them here would double-count on merge), and a
    # trace file gets exactly one writer.
    telemetry = get_telemetry()
    telemetry.detach_sink()
    telemetry.reset()


def _chunksize(num_tasks: int, workers: int) -> int:
    # ~4 chunks per worker keeps the tail short without drowning the
    # queue in tiny pickles.
    return max(1, num_tasks // (workers * 4))


def _serial_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    out = []
    for i, task in enumerate(tasks):
        result = fn(task)
        out.append(result)
        if on_result is not None:
            on_result(i, result)
    return out


def _make_pool(workers: int, num_tasks: int, pool_seed: int):
    """A process pool, or None when this platform cannot provide one.

    Only pool *creation* may trigger the serial fallback: an exception
    raised by a task itself must propagate, not cause a silent re-run.
    """
    try:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        return ctx.Pool(
            processes=min(workers, num_tasks),
            initializer=_worker_init,
            initargs=(pool_seed,),
        )
    except (OSError, ValueError):
        return None


def _parallel_viable(fn: Callable[[Any], Any], probe: Any) -> bool:
    try:
        pickle.dumps(fn)
        pickle.dumps(probe)
    except Exception:
        return False
    return True


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int = 1,
    pool_seed: int = 0,
) -> list[Any]:
    """Apply ``fn`` to every task, in order, possibly across processes.

    ``fn`` must be an importable module-level function and every task a
    picklable value for the parallel path to engage; anything else
    falls back to serial execution rather than failing.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        return _serial_map(fn, tasks)
    if not _parallel_viable(fn, tasks[0]):
        return _serial_map(fn, tasks)
    pool = _make_pool(workers, len(tasks), pool_seed)
    if pool is None:
        return _serial_map(fn, tasks)
    with pool:
        return pool.map(fn, tasks, chunksize=_chunksize(len(tasks), workers))


def _make_executor(workers: int, num_tasks: int, pool_seed: int):
    """A process-pool executor, or None when the platform has none.

    The executor variant of :func:`_make_pool`, used by the batch path:
    ``concurrent.futures`` detects a worker process dying (it breaks
    the pool and fails pending futures) where ``multiprocessing.Pool``
    would wait forever for the vanished task's result.
    """
    try:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, num_tasks),
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(pool_seed,),
        )
    except (OSError, ValueError):
        return None


def run_task_batches(
    fn: Callable[[Any], Any],
    batches: Sequence[Any],
    workers: int = 1,
    pool_seed: int = 0,
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Apply ``fn`` to coarse batch payloads, streaming completions.

    The batch entry point for callers that already grouped their work
    into chunks: each batch is exactly one pickle/IPC round-trip (no
    second-level chunking on top of the caller's), and results stream
    back in ascending batch order, so ``on_result(index, result)``
    fires as each batch completes instead of after the whole map.
    Order and fallback semantics match :func:`run_tasks`: the returned
    list is in batch order at any worker count, and platforms without a
    working pool degrade to a serial loop (where ``on_result`` fires
    after each batch just the same).

    Failure semantics are typed.  A *task exception* (a verifier
    rejecting, a solver crashing) propagates as itself, at the point
    the failed batch would have been delivered.  A *worker process
    dying* (SIGKILL, OOM) raises :class:`WorkerCrashed` naming exactly
    the lost batch indices — results that finished before the crash
    are still delivered through ``on_result`` first, in order, so
    callers persisting as they go only ever retry the lost chunks.
    """
    batches = list(batches)
    telemetry = get_telemetry()
    telemetry.incr("pool.batches_dispatched", len(batches))
    if workers <= 1 or len(batches) <= 1:
        return _serial_map(fn, batches, on_result)
    if not _parallel_viable(fn, batches[0]):
        telemetry.incr("pool.serial_fallbacks")
        return _serial_map(fn, batches, on_result)
    executor = _make_executor(workers, len(batches), pool_seed)
    if executor is None:
        telemetry.incr("pool.serial_fallbacks")
        _LOG.debug("process pool unavailable; %d batch(es) run serially", len(batches))
        return _serial_map(fn, batches, on_result)
    out = []
    lost: list[int] = []
    with executor:
        futures = [executor.submit(fn, batch) for batch in batches]
        try:
            for i, future in enumerate(futures):
                try:
                    result = future.result()
                except (BrokenProcessPool, concurrent.futures.CancelledError):
                    # The pool broke under this future: its worker (or
                    # a sibling whose death tore down the pool)
                    # vanished.  Keep draining — later futures may
                    # have completed before the break, and salvaging
                    # them keeps the retry surface minimal.
                    lost.append(i)
                    continue
                out.append(result)
                if on_result is not None:
                    on_result(i, result)
        except BaseException:
            # A task raised (or the caller's on_result did): don't
            # compute the rest of the map just to discard it.
            executor.shutdown(wait=False, cancel_futures=True)
            raise
    if lost:
        telemetry.incr("pool.worker_crashes")
        telemetry.incr("pool.chunks_lost", len(lost))
        _LOG.warning(
            "worker process died: %d/%d batch(es) lost (%s)",
            len(lost), len(batches), lost,
        )
        raise WorkerCrashed(lost)
    return out
