"""Process-pool task dispatch with a guaranteed serial fallback.

The pool maps a top-level function over a list of picklable payloads.
Dispatch is chunked (few large pickles beat many small ones for
millisecond-scale trials) and **order-preserving**, so downstream
aggregation sees results in task order regardless of worker count —
that is what makes ``workers=1`` and ``workers=4`` bit-identical.

Every worker runs an initializer that reseeds the global ``random``
module from a per-worker derivation of the pool seed.  Trial
determinism never relies on that — each trial carries its own seed and
builds its own generators — but it closes the classic fork bug where
all children inherit one duplicated global RNG state.

When ``workers <= 1``, the task list is tiny, or the platform cannot
deliver a working process pool (no ``fork``/``spawn``, sandboxed
semaphores, unpicklable payloads), execution degrades to a plain
serial loop with identical semantics.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import random
from typing import Any, Callable, Sequence

from repro.obs import get_telemetry

__all__ = ["default_workers", "run_task_batches", "run_tasks"]

_LOG = logging.getLogger("repro.engine")

# Derivation salt for per-worker global-RNG reseeding (mirrors
# repro.util.rng's golden-ratio mixing).
_WORKER_SALT = 0x9E3779B97F4A7C15


def default_workers() -> int:
    """A conservative worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _worker_init(pool_seed: int) -> None:  # pragma: no cover - runs in child
    mixed = (pool_seed * 0x100000001B3 + os.getpid() * _WORKER_SALT)
    mixed &= 0xFFFFFFFFFFFFFFFF
    random.seed(mixed ^ (mixed >> 33))
    # A forked worker inherits the parent's accrued telemetry and any
    # open trace sink.  Drop both: the parent snapshots its own deltas
    # itself (inheriting them here would double-count on merge), and a
    # trace file gets exactly one writer.
    telemetry = get_telemetry()
    telemetry.detach_sink()
    telemetry.reset()


def _chunksize(num_tasks: int, workers: int) -> int:
    # ~4 chunks per worker keeps the tail short without drowning the
    # queue in tiny pickles.
    return max(1, num_tasks // (workers * 4))


def _serial_map(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    out = []
    for i, task in enumerate(tasks):
        result = fn(task)
        out.append(result)
        if on_result is not None:
            on_result(i, result)
    return out


def _make_pool(workers: int, num_tasks: int, pool_seed: int):
    """A process pool, or None when this platform cannot provide one.

    Only pool *creation* may trigger the serial fallback: an exception
    raised by a task itself must propagate, not cause a silent re-run.
    """
    try:
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        return ctx.Pool(
            processes=min(workers, num_tasks),
            initializer=_worker_init,
            initargs=(pool_seed,),
        )
    except (OSError, ValueError):
        return None


def _parallel_viable(fn: Callable[[Any], Any], probe: Any) -> bool:
    try:
        pickle.dumps(fn)
        pickle.dumps(probe)
    except Exception:
        return False
    return True


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int = 1,
    pool_seed: int = 0,
) -> list[Any]:
    """Apply ``fn`` to every task, in order, possibly across processes.

    ``fn`` must be an importable module-level function and every task a
    picklable value for the parallel path to engage; anything else
    falls back to serial execution rather than failing.
    """
    tasks = list(tasks)
    if workers <= 1 or len(tasks) <= 1:
        return _serial_map(fn, tasks)
    if not _parallel_viable(fn, tasks[0]):
        return _serial_map(fn, tasks)
    pool = _make_pool(workers, len(tasks), pool_seed)
    if pool is None:
        return _serial_map(fn, tasks)
    with pool:
        return pool.map(fn, tasks, chunksize=_chunksize(len(tasks), workers))


def run_task_batches(
    fn: Callable[[Any], Any],
    batches: Sequence[Any],
    workers: int = 1,
    pool_seed: int = 0,
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Apply ``fn`` to coarse batch payloads, streaming completions.

    The batch entry point for callers that already grouped their work
    into chunks: each batch is exactly one pickle/IPC round-trip
    (``chunksize=1`` — no second-level chunking on top of the caller's),
    and results stream back through ``pool.imap`` in task order, so
    ``on_result(index, result)`` fires as each batch completes instead
    of after the whole map.  Order and fallback semantics match
    :func:`run_tasks`: the returned list is in batch order at any worker
    count, and platforms without a working pool degrade to a serial
    loop (where ``on_result`` fires after each batch just the same).
    """
    batches = list(batches)
    telemetry = get_telemetry()
    telemetry.incr("pool.batches_dispatched", len(batches))
    if workers <= 1 or len(batches) <= 1:
        return _serial_map(fn, batches, on_result)
    if not _parallel_viable(fn, batches[0]):
        telemetry.incr("pool.serial_fallbacks")
        return _serial_map(fn, batches, on_result)
    pool = _make_pool(workers, len(batches), pool_seed)
    if pool is None:
        telemetry.incr("pool.serial_fallbacks")
        _LOG.debug("process pool unavailable; %d batch(es) run serially", len(batches))
        return _serial_map(fn, batches, on_result)
    out = []
    with pool:
        for i, result in enumerate(pool.imap(fn, batches, chunksize=1)):
            out.append(result)
            if on_result is not None:
                on_result(i, result)
    return out
