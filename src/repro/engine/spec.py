"""Declarative experiment specifications.

An :class:`ExperimentSpec` names everything one sweep needs — solver,
instance generator, verifier, the size grid, the seed grid — as
importable references (``"module:attr"`` strings) rather than live
objects.  That buys two properties at once:

* **picklability** — a spec travels to worker processes as a handful
  of strings and ints, so the pool never depends on closures or open
  file handles surviving a fork/spawn;
* **content addressing** — every :class:`TrialSpec` hashes to a stable
  key derived purely from the fields that determine its result, so the
  cache can replay identical trials across runs and worker counts.

References resolve with :func:`resolve_ref`; solver references must
point at a zero-argument factory (a class works), generator references
at a ``(n, seed, **params) -> Instance`` callable, verifier references
at a ``(instance, result) -> None`` callable that raises on invalid
outputs.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

__all__ = [
    "CACHE_VERSION",
    "ExperimentSpec",
    "TrialSpec",
    "grid",
    "resolve_ref",
    "seed_grid",
]

# Bump when the trial record layout changes; stale cache shards are
# then simply never hit instead of being misread.
CACHE_VERSION = 1


def resolve_ref(ref: str) -> Any:
    """Import the object named by a ``"module:attr"`` reference."""
    module_name, _, attr_path = ref.partition(":")
    if not module_name or not attr_path:
        raise ValueError(f"reference {ref!r} is not of the form 'module:attr'")
    obj = importlib.import_module(module_name)
    for attr in attr_path.split("."):
        obj = getattr(obj, attr)
    return obj


def _canonical_params(params: dict[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    if not params:
        return ()
    for key, value in params.items():
        if not isinstance(value, (bool, int, float, str, type(None))):
            raise TypeError(
                f"param {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class TrialSpec:
    """One deterministic unit of work: (generator, solver, n, seed).

    Two trials with equal fields produce bit-identical results, so the
    sha256 of the canonical field encoding is a safe cache key.
    """

    solver: str
    generator: str
    verifier: str | None
    n: int
    seed: int
    params: tuple[tuple[str, Any], ...] = ()

    def key(self) -> str:
        # Memoized: the shard pipeline keys the same TrialSpec several
        # times (missing pre-scan, shard lookup, store), and the hash
        # is a pure function of the frozen fields.
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        payload = json.dumps(
            {
                "v": CACHE_VERSION,
                "solver": self.solver,
                "generator": self.generator,
                "verifier": self.verifier,
                "n": self.n,
                "seed": self.seed,
                "params": list(self.params),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        key = hashlib.sha256(payload.encode()).hexdigest()
        object.__setattr__(self, "_key", key)
        return key

    def to_payload(self) -> dict[str, Any]:
        """A plain-dict form that survives pickling to any start method."""
        return {
            "solver": self.solver,
            "generator": self.generator,
            "verifier": self.verifier,
            "n": self.n,
            "seed": self.seed,
            "params": list(self.params),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TrialSpec":
        return cls(
            solver=payload["solver"],
            generator=payload["generator"],
            verifier=payload["verifier"],
            n=payload["n"],
            seed=payload["seed"],
            params=tuple((k, v) for k, v in payload["params"]),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A named sweep: one solver across an n-grid and a seed-grid."""

    name: str
    solver: str
    generator: str
    ns: tuple[int, ...]
    seeds: tuple[int, ...] = (0, 1, 2)
    verifier: str | None = None
    params: dict[str, Any] | None = field(default=None, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ns", tuple(self.ns))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        if not self.ns:
            raise ValueError(f"experiment {self.name!r} has an empty n-grid")
        if not self.seeds:
            raise ValueError(f"experiment {self.name!r} has an empty seed-grid")

    def trials(self) -> list[TrialSpec]:
        """The full trial grid, in deterministic (n-major, seed-minor) order.

        Memoized per spec (specs are immutable): planning, shard
        execution, and the warm-cache pre-scan all walk the same grid,
        and sharing one TrialSpec list also shares the per-trial key
        memos.  Callers get a fresh list object each time, so mutating
        the returned list cannot poison the memo.
        """
        cached = self.__dict__.get("_trials")
        if cached is None:
            canon = _canonical_params(self.params)
            cached = tuple(
                TrialSpec(
                    solver=self.solver,
                    generator=self.generator,
                    verifier=self.verifier,
                    n=n,
                    seed=seed,
                    params=canon,
                )
                for n in self.ns
                for seed in self.seeds
            )
            object.__setattr__(self, "_trials", cached)
        return list(cached)

    def make_solver(self) -> Any:
        return resolve_ref(self.solver)()

    def solver_display_name(self) -> str:
        """The ``.name`` the spec's solver objects carry, lazily.

        Registry-generated specs answer from the catalog without
        materializing a solver (class factories expose ``name`` as a
        class attribute; the rest memoize one materialization per
        process), so a warm-cache replay never constructs a solver just
        to label its sweep.  Hand-written refs keep the legacy
        behavior: build one and read its ``name``.
        """
        from repro.runtime.entrypoints import parse_entrypoint

        parsed = parse_entrypoint(self.solver)
        if parsed is not None and parsed[0] == "solver":
            from repro.runtime import registry

            return registry.solver_display_name(parsed[1])
        return getattr(self.make_solver(), "name", self.solver)

    def make_generator(self) -> Callable[..., Any]:
        return resolve_ref(self.generator)

    def make_verifier(self) -> Callable[..., None] | None:
        return resolve_ref(self.verifier) if self.verifier else None


def grid(lo: int, hi: int, base: int = 2) -> tuple[int, ...]:
    """Geometric n-grid: powers of ``base`` from ``lo`` up to ``hi``."""
    if hi < lo:
        raise ValueError(
            f"grid upper bound {hi} is below the smallest size {lo}; "
            f"raise --max-n to at least {lo}"
        )
    ns: list[int] = []
    n = lo
    while n <= hi:
        ns.append(n)
        n *= base
    return tuple(ns)


def seed_grid(count: int) -> tuple[int, ...]:
    if count < 1:
        raise ValueError("need at least one seed")
    return tuple(range(count))
