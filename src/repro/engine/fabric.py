"""The fault-tolerant shard fabric: leases, retries, liveness, degradation.

PR 5 made shards mergeable; this module makes them *survivable*.  A
:func:`run_fabric` call drives every shard of a plan file across real
``run-shard`` subprocesses and owns the whole failure surface:

* **leases** — a :class:`LeaseBoard` persisted as JSON next to the
  plan records, per shard, who is running it, which attempt, and until
  when.  Every transition is written atomically, so a launcher that
  dies mid-run restarts from the board: finished shards stay finished,
  expired leases are reclaimed, and nothing runs twice by accident.
  (Running twice is *safe* — trials are content-hashed and the merge
  is idempotent — the lease exists to avoid paying for it.)
* **retry with backoff** — failed attempts reschedule after an
  exponential, jittered delay (:class:`BackoffPolicy`) up to a
  per-shard attempt cap.  Because ``run_shard`` persists each chunk as
  it completes, a retry recomputes only what the previous attempt
  actually lost.
* **liveness** — each shard publishes the PR 6 telemetry heartbeat
  (:mod:`repro.obs.heartbeat`); a shard whose beat stops advancing past
  the timeout is declared hung, its process group killed, its lease
  revoked, and the shard rescheduled like any other failure.
* **verification** — exit 0 is not taken on faith: the launcher probes
  every trial key the shard owed against its written root, so a
  corrupted or truncated export is just another failed attempt.
* **graceful degradation** — when a shard exhausts its attempts the
  fabric still merges every surviving record (including the failed
  shard's durable partial progress), writes a machine-readable **gap
  manifest** naming exactly the missing trial indices per spec, and
  reports failure — never a traceback, never a silent half-result.

The injected-fault counterpart lives in :mod:`repro.engine.faults`;
the CLI front end is ``python -m repro.engine fabric``.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import random
import signal
import subprocess
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.engine.cache import TrialCache
from repro.engine.faults import ENV_ATTEMPT, ENV_FAULTS, FaultSpec
from repro.engine.remote import ExecTarget, assign_targets, shard_context
from repro.engine.runner import EngineReport, run_experiment
from repro.engine.shard import ShardPlan, coverage_gaps, load_plan_file
from repro.obs import LivenessMonitor, get_telemetry
from repro.util.fsio import atomic_write_text

_LOG = logging.getLogger("repro.engine")

__all__ = [
    "BackoffPolicy",
    "FabricResult",
    "GAP_MANIFEST_VERSION",
    "LEASE_VERSION",
    "Lease",
    "LeaseBoard",
    "ShardOutcome",
    "fabric_key",
    "run_fabric",
]

LEASE_VERSION = 1
GAP_MANIFEST_VERSION = 1

# Lease states.  pending -> leased -> done, or back to pending on a
# retryable failure, or failed once attempts are exhausted.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
_STATES = (PENDING, LEASED, DONE, FAILED)


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with jitter and a per-shard attempt cap.

    ``delay(attempt)`` is the pause after the ``attempt``-th failure
    (1-based): ``base * factor**(attempt-1)`` capped at ``max_delay``,
    stretched by up to ``jitter`` (a fraction) of itself — jitter keeps
    K shards that failed together from re-arriving together.  Pass a
    seeded ``rng`` for reproducible schedules; None means no jitter.
    """

    base: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.base <= 0 or self.factor < 1 or self.max_delay < self.base:
            raise ValueError(
                f"backoff needs base > 0, factor >= 1, max_delay >= base "
                f"(got base={self.base}, factor={self.factor}, "
                f"max_delay={self.max_delay})"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter is a fraction in [0, 1], got {self.jitter}")
        if self.max_attempts < 1:
            raise ValueError(f"need >= 1 attempt, got {self.max_attempts}")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        if attempt < 1:
            raise ValueError(f"attempts are 1-based, got {attempt}")
        raw = min(self.max_delay, self.base * self.factor ** (attempt - 1))
        if rng is not None and self.jitter:
            raw *= 1.0 + self.jitter * rng.random()
        return raw

    def schedule(self, rng: random.Random | None = None) -> list[float]:
        """The delays between the ``max_attempts`` attempts, in order."""
        return [self.delay(k, rng) for k in range(1, self.max_attempts)]


@dataclass
class Lease:
    """One shard's slot on the board: state, owner, attempt count, deadline."""

    shard_index: int
    state: str = PENDING
    attempts: int = 0
    owner: str | None = None
    acquired_at: float | None = None
    deadline: float | None = None
    cause: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard_index": self.shard_index,
            "state": self.state,
            "attempts": self.attempts,
            "owner": self.owner,
            "acquired_at": self.acquired_at,
            "deadline": self.deadline,
            "cause": self.cause,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Lease":
        lease = cls(
            shard_index=int(payload["shard_index"]),
            state=payload["state"],
            attempts=int(payload.get("attempts", 0)),
            owner=payload.get("owner"),
            acquired_at=payload.get("acquired_at"),
            deadline=payload.get("deadline"),
            cause=payload.get("cause"),
        )
        if lease.state not in _STATES:
            raise ValueError(f"unknown lease state {lease.state!r}")
        return lease


class LeaseBoard:
    """The persisted shard -> lease map; every transition hits disk.

    One JSON file (atomic replace) next to the plan is the single
    source of truth for "who owns which shard, how many attempts has
    it burned, which shards are finished".  The board is pinned to a
    ``fabric_key`` (a content hash of the plan file's spec plans), so a
    board can never be replayed against a different partition, exactly
    like shard reports refuse foreign ``plan_key``\\ s.

    The wall clock is injectable for tests; deadlines use wall time
    (not monotonic) because expiry must be judged by a *different*
    process after a restart.  One launcher per board at a time is
    assumed — the lease protocol protects work, not the board file.
    """

    def __init__(
        self,
        path: str,
        fabric_key: str,
        num_shards: int,
        clock: Callable[[], float] = time.time,
    ):
        if num_shards < 1:
            raise ValueError(f"a board needs >= 1 shard, got {num_shards}")
        self.path = path
        self.fabric_key = fabric_key
        self.num_shards = num_shards
        self._clock = clock
        self.leases: dict[int, Lease] = {
            i: Lease(shard_index=i) for i in range(num_shards)
        }

    # -- persistence ---------------------------------------------------

    def save(self) -> None:
        payload = {
            "version": LEASE_VERSION,
            "fabric_key": self.fabric_key,
            "num_shards": self.num_shards,
            "updated_at": self._clock(),
            "leases": [
                self.leases[i].as_dict() for i in range(self.num_shards)
            ],
        }
        atomic_write_text(self.path, json.dumps(payload, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: str, clock: Callable[[], float] = time.time) -> "LeaseBoard":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("version") != LEASE_VERSION:
            raise ValueError(
                f"unsupported lease-board version {payload.get('version')!r} "
                f"(this build reads version {LEASE_VERSION})"
            )
        board = cls(
            path,
            payload["fabric_key"],
            int(payload["num_shards"]),
            clock=clock,
        )
        for entry in payload["leases"]:
            lease = Lease.from_dict(entry)
            board.leases[lease.shard_index] = lease
        if sorted(board.leases) != list(range(board.num_shards)):
            raise ValueError(f"lease board {path!r} does not cover its shards")
        return board

    @classmethod
    def load_or_create(
        cls,
        path: str,
        fabric_key: str,
        num_shards: int,
        clock: Callable[[], float] = time.time,
    ) -> "LeaseBoard":
        """Resume an existing board or start a fresh one, pinned to the plan."""
        if os.path.isfile(path):
            board = cls.load(path, clock=clock)
            if board.fabric_key != fabric_key:
                raise ValueError(
                    f"lease board {path!r} belongs to a different plan "
                    "(fabric key mismatch); point --work-dir elsewhere or "
                    "delete the stale board"
                )
            if board.num_shards != num_shards:
                raise ValueError(
                    f"lease board {path!r} has {board.num_shards} shard(s), "
                    f"plan has {num_shards}"
                )
            return board
        board = cls(path, fabric_key, num_shards, clock=clock)
        board.save()
        return board

    # -- transitions ---------------------------------------------------

    def lease(self, shard_index: int) -> Lease:
        return self.leases[shard_index]

    def acquire(self, shard_index: int, owner: str, ttl: float) -> Lease:
        """pending (or expired-leased) -> leased; burns one attempt."""
        lease = self.leases[shard_index]
        now = self._clock()
        if lease.state == DONE:
            raise ValueError(f"shard {shard_index} is already done")
        if (
            lease.state == LEASED
            and lease.deadline is not None
            and lease.deadline > now
        ):
            raise ValueError(
                f"shard {shard_index} is leased to {lease.owner} for another "
                f"{lease.deadline - now:.1f}s"
            )
        lease.state = LEASED
        lease.owner = owner
        lease.attempts += 1
        lease.acquired_at = now
        lease.deadline = now + ttl
        lease.cause = None
        self.save()
        return lease

    def renew(self, shard_index: int, ttl: float) -> None:
        lease = self.leases[shard_index]
        if lease.state != LEASED:
            raise ValueError(f"shard {shard_index} is not leased ({lease.state})")
        lease.deadline = self._clock() + ttl
        self.save()

    def release(self, shard_index: int, outcome: str, cause: str | None = None) -> None:
        """leased -> done | pending (retryable) | failed (exhausted)."""
        lease = self.leases[shard_index]
        if outcome == "done":
            lease.state = DONE
        elif outcome == "retry":
            lease.state = PENDING
        elif outcome == "failed":
            lease.state = FAILED
        else:
            raise ValueError(f"unknown release outcome {outcome!r}")
        lease.owner = None
        lease.deadline = None
        lease.cause = cause
        self.save()

    def reclaim_expired(self) -> list[int]:
        """Expired leases (a dead launcher's) back to pending; attempts kept."""
        now = self._clock()
        reclaimed = []
        for lease in self.leases.values():
            if (
                lease.state == LEASED
                and lease.deadline is not None
                and lease.deadline <= now
            ):
                lease.state = PENDING
                lease.owner = None
                lease.deadline = None
                lease.cause = "lease expired"
                reclaimed.append(lease.shard_index)
        if reclaimed:
            self.save()
            get_telemetry().incr("fabric.leases_reclaimed", len(reclaimed))
        return reclaimed

    def reset_failed(self) -> list[int]:
        """failed -> pending, for an operator-requested retry round."""
        reset = []
        for lease in self.leases.values():
            if lease.state == FAILED:
                lease.state = PENDING
                reset.append(lease.shard_index)
        if reset:
            self.save()
        return reset

    # -- views ---------------------------------------------------------

    def in_state(self, state: str) -> list[int]:
        return sorted(i for i, lease in self.leases.items() if lease.state == state)


def fabric_key(experiment: str, plans: Sequence[ShardPlan]) -> str:
    """Content hash pinning a lease board to one plan file's partition."""
    payload = json.dumps(
        [experiment, [plan.key() for plan in plans]], separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class ShardOutcome:
    shard_index: int
    state: str
    attempts: int
    cause: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard_index": self.shard_index,
            "state": self.state,
            "attempts": self.attempts,
            "cause": self.cause,
        }


@dataclass
class FabricResult:
    """What one launcher invocation did, and what the plan now holds."""

    experiment: str
    fabric_key: str
    num_shards: int
    outcomes: list[ShardOutcome]
    #: Subprocesses started by THIS invocation (0 on a resumed,
    #: already-complete board).
    launched: int
    records_merged: int
    #: Replayed per-spec reports — only when the grid is complete.
    reports: list[EngineReport] | None
    #: The machine-readable hole list — only when it is not.
    gap_manifest: dict[str, Any] | None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.gap_manifest is None

    def summary(self) -> str:
        states: dict[str, int] = {}
        for outcome in self.outcomes:
            states[outcome.state] = states.get(outcome.state, 0) + 1
        state_note = ", ".join(
            f"{count} {state}" for state, count in sorted(states.items())
        )
        tail = "complete"
        if self.gap_manifest is not None:
            tail = (
                f"DEGRADED: {self.gap_manifest['trials_missing']} trial(s) "
                "missing (see gap manifest)"
            )
        return (
            f"fabric {self.experiment}: {self.num_shards} shard(s) "
            f"[{state_note}], {self.launched} launch(es), "
            f"{self.records_merged} record(s) merged in {self.elapsed:.2f}s — "
            f"{tail}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "fabric_key": self.fabric_key,
            "num_shards": self.num_shards,
            "outcomes": [outcome.as_dict() for outcome in self.outcomes],
            "launched": self.launched,
            "records_merged": self.records_merged,
            "ok": self.ok,
            "gap_manifest": self.gap_manifest,
            "elapsed_s": round(self.elapsed, 4),
            "reports": (
                [report.as_dict() for report in self.reports]
                if self.reports is not None
                else None
            ),
        }


@dataclass
class _ShardProc:
    """Launcher-side state for one running shard subprocess."""

    shard_index: int
    attempt: int
    proc: subprocess.Popen
    heartbeat_path: str
    log_path: str
    root: str
    target: ExecTarget | None = None
    started: float = field(default=0.0)
    last_renew: float = field(default=0.0)


def _kill_tree(proc: subprocess.Popen) -> None:
    """SIGKILL the shard's whole process group (it may have pool workers)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            proc.kill()
        except OSError:
            pass
    try:
        proc.wait(timeout=10.0)
    except (subprocess.TimeoutExpired, OSError):  # pragma: no cover - defensive
        pass


def _sweep_shard_segments(pid: int) -> None:
    """Best-effort cleanup of shm cores a dead shard exporter leaked.

    A shard killed mid-chunk (fault injection, hang timeout, target
    timeout, a crash) never reaches ``release_core``, so its
    ``/dev/shm/repro-core-<pid>-*`` segments outlive it.  The launcher
    is the one process that reliably observes the death, so it sweeps;
    for a ``cmd://`` wrapper the pid is the wrapper's, in which case
    the prefix simply matches nothing local and this is a no-op (a
    truly remote shard's segments live on the remote host anyway).
    """
    try:
        from repro.kernels.shm import sweep_leaked_cores

        swept = sweep_leaked_cores(pid)
    except Exception:  # pragma: no cover - defensive
        return
    if swept:
        _LOG.warning(
            "swept %d leaked shm core segment(s) from dead shard pid %d",
            len(swept), pid,
        )


def _cause_from_log(log_path: str, returncode: int) -> str:
    """A one-line failure cause: the shard's structured error if it left one.

    ``run-shard --json-errors`` prints a final ``{"error": ...}`` line;
    a process that died before reaching its error handler (SIGKILL)
    leaves none, so the exit status is the fallback.
    """
    fallback = (
        f"killed by signal {-returncode}" if returncode < 0
        else f"exit code {returncode}"
    )
    try:
        with open(log_path, "r", encoding="utf-8") as handle:
            lines = [line.strip() for line in handle if line.strip()]
    except OSError:
        return fallback
    for line in reversed(lines):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(payload, dict) and "error" in payload:
            error = payload["error"]
            detail = " ".join(
                f"{key}={error[key]}"
                for key in ("experiment", "shard", "cause", "message")
                if key in error
            )
            return detail or fallback
    return fallback


def _missing_for_shard(
    plans: Sequence[ShardPlan], shard_index: int, cache_dir: str, shard_root: str
) -> int:
    """How many of the shard's owed trials are absent from its output.

    Probes the same overlay the shard ran with (shared root + private
    isolation root), so trials the shard legitimately replayed from the
    shared cache — and therefore never re-wrote — count as present.
    """
    probe = TrialCache(cache_dir, isolation=shard_root)
    missing = 0
    for plan in plans:
        trials = plan.spec.trials()
        for index in plan.manifest(shard_index).trial_indices():
            if not probe.contains(trials[index].key()):
                missing += 1
    return missing


def _gap_manifest(
    experiment: str,
    key: str,
    board: LeaseBoard,
    plans: Sequence[ShardPlan],
    probe: TrialCache,
) -> dict[str, Any] | None:
    """The machine-readable hole list, or None when the grid is whole."""
    trials_total, trials_missing, specs = coverage_gaps(plans, probe.contains)
    if not trials_missing:
        return None
    return {
        "version": GAP_MANIFEST_VERSION,
        "experiment": experiment,
        "fabric_key": key,
        "num_shards": board.num_shards,
        "trials_total": trials_total,
        "trials_present": trials_total - trials_missing,
        "trials_missing": trials_missing,
        "failed_shards": [
            {
                "shard_index": i,
                "attempts": board.lease(i).attempts,
                "cause": board.lease(i).cause,
            }
            for i in board.in_state(FAILED)
        ],
        "specs": specs,
    }


def run_fabric(
    plan_path: str,
    cache_dir: str,
    work_dir: str | None = None,
    shard_workers: int = 1,
    max_parallel: int | None = None,
    heartbeat_timeout: float = 30.0,
    poll_interval: float = 0.1,
    backoff: BackoffPolicy | None = None,
    faults: Sequence[FaultSpec | str] = (),
    retry_failed: bool = False,
    python: str | None = None,
    targets: Sequence[ExecTarget | str] = (),
    kernels: str = "auto",
) -> FabricResult:
    """Drive every shard of a plan file to completion, or degrade loudly.

    The launcher loop: lease the next pending shard, spawn its
    :class:`~repro.engine.remote.ExecTarget` command for it (default
    ``local://``, i.e. ``python -m repro.engine run-shard`` with a
    private ``--cache-out`` root, heartbeat file, structured errors),
    watch heartbeats and exit codes, verify each "successful" shard
    actually wrote every trial it owed, and reschedule failures with
    exponential backoff until done or out of attempts.  State lives in
    ``work_dir`` (default: ``<plan_path>.fabric/``): the lease board,
    per-shard cache roots, heartbeat files, and per-attempt logs — a
    restarted launcher resumes from the board and relaunches nothing
    that finished.

    ``targets`` deals shards round-robin onto exec targets
    (:func:`~repro.engine.remote.assign_targets`); leases, heartbeat
    liveness, verification, and gap accounting are identical across
    targets, with two target-local additions: a target's
    ``concurrency`` caps its simultaneous shards under the global
    ``max_parallel``, and its ``timeout`` wall-clock-kills an attempt
    that outstays it (the hung-wrapper case a heartbeat may not catch
    when the wrapper never starts the shard at all).

    Afterward every shard root that exists — including a failed
    shard's partial output — merges into ``cache_dir``.  A complete
    grid replays into per-spec reports bit-identical to a single-host
    run; an incomplete one yields a gap manifest (also written to
    ``work_dir/gaps.json``) and ``result.ok == False``.

    ``faults`` forwards :mod:`repro.engine.faults` specs to every
    shard subprocess via the environment; the spec's shard index and
    the stamped attempt number decide where they fire.  Whenever a
    shard dies without exiting cleanly, the launcher sweeps the shared-
    memory core segments its exporter leaked (``--kernels vector``
    shards export topology cores the crashed process can no longer
    release).
    """
    start = time.perf_counter()
    telemetry = get_telemetry()
    with open(plan_path, "r", encoding="utf-8") as handle:
        experiment, plans = load_plan_file(json.load(handle))
    num_shards = plans[0].num_shards
    target_by_shard = assign_targets(num_shards, targets)
    if work_dir is None:
        work_dir = plan_path + ".fabric"
    os.makedirs(work_dir, exist_ok=True)
    key = fabric_key(experiment, plans)
    board = LeaseBoard.load_or_create(
        os.path.join(work_dir, "leases.json"), key, num_shards
    )
    reclaimed = board.reclaim_expired()
    if reclaimed:
        _LOG.warning(
            "reclaimed %d expired lease(s) from a previous launcher: %s",
            len(reclaimed), reclaimed,
        )
    if retry_failed:
        reset = board.reset_failed()
        if reset:
            _LOG.info("retrying previously failed shard(s): %s", reset)

    if backoff is None:
        backoff = BackoffPolicy()
    if max_parallel is None:
        max_parallel = min(num_shards, max(1, (os.cpu_count() or 2) // 2))
    lease_ttl = max(2.0 * heartbeat_timeout, 10.0)
    owner = f"fabric-{os.getpid()}"
    rng = random.Random(zlib.crc32(key.encode()))
    monitor = LivenessMonitor(heartbeat_timeout)
    fault_strings = [
        spec.spec_string() if isinstance(spec, FaultSpec) else str(spec)
        for spec in faults
    ]

    def shard_root(i: int) -> str:
        return os.path.join(work_dir, f"shard-{i}")

    def spawn(i: int, attempt: int) -> _ShardProc:
        target = target_by_shard[i]
        ctx = shard_context(
            plan_path,
            i,
            num_shards,
            cache_dir,
            work_dir,
            shard_workers=shard_workers,
            kernels=kernels,
            attempt=attempt,
            python=python,
        )
        heartbeat_path = ctx["heartbeat"]
        try:
            # A stale beat from a previous attempt must not look live.
            os.unlink(heartbeat_path)
        except OSError:
            pass
        log_path = os.path.join(work_dir, f"shard-{i}.attempt-{attempt}.log")
        cmd = target.command(ctx)
        env = os.environ.copy()
        env[ENV_ATTEMPT] = str(attempt)
        if fault_strings:
            env[ENV_FAULTS] = ";".join(fault_strings)
        # The shard must import the same repro tree the launcher runs.
        import repro

        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH", "")
        if src_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                src_root + (os.pathsep + existing if existing else "")
            )
        with open(log_path, "w", encoding="utf-8") as log:
            proc = subprocess.Popen(
                cmd,
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
                start_new_session=True,  # its pool workers die with it
            )
        _LOG.info(
            "shard %d attempt %d: pid %d on %s", i, attempt, proc.pid, target.uri
        )
        return _ShardProc(
            shard_index=i,
            attempt=attempt,
            proc=proc,
            heartbeat_path=heartbeat_path,
            log_path=log_path,
            root=shard_root(i),
            target=target,
            started=time.monotonic(),
        )

    running: dict[int, _ShardProc] = {}
    not_before: dict[int, float] = {}
    launched = 0

    def attempt_failed(i: int, cause: str) -> None:
        attempts = board.lease(i).attempts
        if attempts >= backoff.max_attempts:
            board.release(i, "failed", cause)
            telemetry.incr("fabric.shards_failed")
            _LOG.error(
                "shard %d FAILED after %d attempt(s): %s", i, attempts, cause
            )
        else:
            board.release(i, "retry", cause)
            delay = backoff.delay(attempts, rng)
            not_before[i] = time.monotonic() + delay
            telemetry.incr("fabric.retries")
            _LOG.warning(
                "shard %d attempt %d failed (%s); retrying in %.2fs",
                i, attempts, cause, delay,
            )

    while True:
        now = time.monotonic()
        # -- reap and health-check running shards ----------------------
        for i, sp in list(running.items()):
            returncode = sp.proc.poll()
            if returncode is None:
                dead_pid = sp.proc.pid
                if (
                    sp.target is not None
                    and sp.target.timeout is not None
                    and now - sp.started > sp.target.timeout
                ):
                    _kill_tree(sp.proc)
                    running.pop(i)
                    monitor.forget(i)
                    telemetry.incr("fabric.target_timeouts")
                    _sweep_shard_segments(dead_pid)
                    attempt_failed(
                        i,
                        f"target timeout: exceeded {sp.target.timeout:.1f}s "
                        f"on {sp.target.uri}",
                    )
                    continue
                monitor.observe(i)
                if monitor.stale(i):
                    _kill_tree(sp.proc)
                    running.pop(i)
                    monitor.forget(i)
                    telemetry.incr("fabric.hangs_detected")
                    _sweep_shard_segments(dead_pid)
                    attempt_failed(
                        i,
                        f"hung: no heartbeat progress in "
                        f"{heartbeat_timeout:.1f}s",
                    )
                elif now - sp.last_renew > lease_ttl / 4.0:
                    board.renew(i, lease_ttl)
                    sp.last_renew = now
                continue
            running.pop(i)
            monitor.forget(i)
            if returncode == 0:
                missing = _missing_for_shard(plans, i, cache_dir, sp.root)
                if missing == 0:
                    board.release(i, "done")
                    telemetry.incr("fabric.shards_done")
                    _LOG.info(
                        "shard %d done (attempt %d)", i, sp.attempt
                    )
                else:
                    attempt_failed(
                        i,
                        f"incomplete export: {missing} trial(s) missing "
                        "after exit 0 (corrupt or torn output)",
                    )
            else:
                # A clean exit ran release_core; any other death may
                # have leaked exported topology segments.
                _sweep_shard_segments(sp.proc.pid)
                attempt_failed(i, _cause_from_log(sp.log_path, returncode))
        # -- launch what's eligible ------------------------------------
        now = time.monotonic()
        for i in board.in_state(PENDING):
            if len(running) >= max_parallel:
                break
            if not_before.get(i, float("-inf")) > now:
                continue
            target = target_by_shard[i]
            if target.concurrency is not None:
                on_target = sum(
                    1
                    for sp in running.values()
                    if target_by_shard[sp.shard_index] is target
                )
                if on_target >= target.concurrency:
                    continue
            lease = board.acquire(i, owner, lease_ttl)
            sp = spawn(i, lease.attempts)
            launched += 1
            telemetry.incr("fabric.spawns")
            running[i] = sp
            monitor.watch(i, sp.heartbeat_path)
        if not running:
            pending = board.in_state(PENDING)
            if not pending:
                break  # every shard is done or failed
            # All pending shards are in their backoff window.
            wake = min(not_before.get(i, now) for i in pending)
            time.sleep(max(poll_interval, min(wake - now, 1.0)))
            continue
        time.sleep(poll_interval)

    # -- merge what survived -------------------------------------------
    destination = TrialCache(cache_dir)
    records_merged = 0
    for i in range(num_shards):
        root = shard_root(i)
        if os.path.isdir(root):
            records_merged += destination.merge(root)
    gap = _gap_manifest(experiment, key, board, plans, destination)
    reports: list[EngineReport] | None = None
    if gap is None:
        try:
            # A stale manifest from a previously degraded run must not
            # outlive the resume that filled its gaps.
            os.unlink(os.path.join(work_dir, "gaps.json"))
        except OSError:
            pass
        # Complete: the replay is pure cache hits, bit-identical to the
        # single-host run by the shard layer's merge theorem.
        reports = [
            run_experiment(
                plan.spec,
                workers=1,
                cache=destination,
                batch_size=plan.batch_size,
            )
            for plan in plans
        ]
    else:
        atomic_write_text(
            os.path.join(work_dir, "gaps.json"),
            json.dumps(gap, indent=2, sort_keys=True),
        )

    result = FabricResult(
        experiment=experiment,
        fabric_key=key,
        num_shards=num_shards,
        outcomes=[
            ShardOutcome(
                shard_index=i,
                state=board.lease(i).state,
                attempts=board.lease(i).attempts,
                cause=board.lease(i).cause,
            )
            for i in range(num_shards)
        ],
        launched=launched,
        records_merged=records_merged,
        reports=reports,
        gap_manifest=gap,
        elapsed=time.perf_counter() - start,
    )
    _LOG.info("%s", result.summary())
    return result
