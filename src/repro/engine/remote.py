"""Remote shard transport: exec targets and integrity-checked pulls.

The fabric (PR 7) supervises shards through exactly one seam — a
command list it spawns and a cache root it verifies — so "run this
shard somewhere else" decomposes into two independent halves:

* **Exec targets** describe *where a shard runs*.  An
  :class:`ExecTarget` URI resolves a shard's launch context into the
  argv the launcher spawns: ``local://`` builds today's ``python -m
  repro.engine run-shard`` invocation, and ``cmd://<template>``
  substitutes ``{plan} {shard} {workdir} ...`` placeholders into an
  arbitrary wrapper command — which is how ssh, docker, podman, or a
  cluster submit script become targets without this module knowing any
  of them.  Targets carry their own concurrency cap and wall-clock
  timeout (heterogeneous hosts fail heterogeneously); leases, retry,
  and gap accounting stay target-agnostic in the fabric.
* **Integrity-checked transport** describes *how results come back*.
  :meth:`~repro.engine.cache.TrialCache.export_dir` writes record
  files plus a sha256-per-file manifest; :class:`ExportServer` serves
  such directories over stdlib HTTP (with Range, so partial transfers
  resume instead of restarting); :func:`pull_export` fetches one with
  timeout/retry/exponential-backoff, resumes short bodies from the
  byte where they tore, verifies every file against its digest, and
  **quarantines** — never merges — anything that keeps failing.  Like
  the content-addressed cache itself, nothing received is trusted:
  presence is re-proved by digest, and a host that stays unreachable
  degrades into the ordinary exit-4 gap manifest.

Chaos for the transport half lives in
:class:`repro.engine.faults.NetFaultInjector` (``net-*`` specs), which
the server consults per request — stalls, mid-body drops, truncations,
garbled bytes, and 5xx bursts are all deterministic test cases.
"""

from __future__ import annotations

import hashlib
import http.client
import http.server
import json
import logging
import os
import random
import shlex
import socket
import string
import sys
import threading
import time
import urllib.parse
import zlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.engine.cache import EXPORT_MANIFEST_NAME, EXPORT_MANIFEST_VERSION
from repro.engine.faults import FaultSpec, NetFaultInjector, garble_bytes
from repro.obs import get_telemetry

__all__ = [
    "ExecTarget",
    "ExportServer",
    "PullPolicy",
    "PullResult",
    "PulledFile",
    "assign_targets",
    "local_argv",
    "pull_export",
    "shard_context",
]

_LOG = logging.getLogger("repro.engine")

#: Placeholder names a ``cmd://`` template may reference.
CONTEXT_KEYS = frozenset(
    {
        "python",
        "plan",
        "shard",
        "num_shards",
        "workers",
        "cache_dir",
        "out",
        "workdir",
        "heartbeat",
        "attempt",
        "kernels",
    }
)

_READ_CHUNK = 65536


# -- exec targets -------------------------------------------------------


def shard_context(
    plan_path: str,
    shard_index: int,
    num_shards: int,
    cache_dir: str,
    work_dir: str,
    shard_workers: int = 1,
    kernels: str = "auto",
    attempt: int = 1,
    python: str | None = None,
) -> dict[str, Any]:
    """The placeholder map one shard launch resolves a target against.

    Pure — touches no filesystem — so ``--dry-run`` can render every
    shard's command without creating the work dir.
    """
    return {
        "python": python or sys.executable,
        "plan": plan_path,
        "shard": shard_index,
        "num_shards": num_shards,
        "workers": shard_workers,
        "cache_dir": cache_dir,
        "workdir": work_dir,
        "out": os.path.join(work_dir, f"shard-{shard_index}"),
        "heartbeat": os.path.join(work_dir, f"shard-{shard_index}.hb.json"),
        "attempt": attempt,
        "kernels": kernels,
    }


def local_argv(ctx: Mapping[str, Any]) -> list[str]:
    """The ``run-shard`` invocation a ``local://`` target spawns."""
    return [
        str(ctx["python"]),
        "-m", "repro.engine", "run-shard",
        "--plan", str(ctx["plan"]),
        "--shard", f"{ctx['shard']}/{ctx['num_shards']}",
        "--workers", str(ctx["workers"]),
        "--cache-dir", str(ctx["cache_dir"]),
        "--cache-out", str(ctx["out"]),
        "--heartbeat", str(ctx["heartbeat"]),
        "--kernels", str(ctx["kernels"]),
        "--json-errors",
        "-q",
    ]


@dataclass(frozen=True)
class ExecTarget:
    """Where a shard runs: a URI resolving launch context to an argv.

    Two schemes::

        local://                        today's subprocess on this host
        cmd://ssh worker-3 repro-shard {plan} {shard} {workdir}

    A ``cmd://`` template is ``str.format``-substituted with the
    shard's :func:`shard_context` and then ``shlex.split`` — so the
    template is written like a shell command but spawned without a
    shell.  It must mention at least ``{plan}`` and ``{shard}`` (a
    wrapper that doesn't know which shard it runs cannot run it); the
    other placeholders are optional because a remote wrapper may derive
    its own paths.  Per-target options ride in a URI fragment::

        local://#concurrency=2
        cmd://ssh big-box ...#timeout=900,concurrency=4

    ``timeout`` is a wall-clock cap per attempt (the launcher kills and
    reschedules past it — a target that stops answering must not hold
    its lease forever); ``concurrency`` caps the shards running on the
    target at once, independent of the fabric's global ``max_parallel``.
    """

    uri: str
    scheme: str
    template: str = ""
    concurrency: int | None = None
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.scheme not in ("local", "cmd"):
            raise ValueError(
                f"unknown target scheme {self.scheme!r} (know: local, cmd)"
            )
        if self.concurrency is not None and self.concurrency < 1:
            raise ValueError(
                f"target concurrency must be >= 1, got {self.concurrency}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"target timeout must be > 0, got {self.timeout}")

    @classmethod
    def parse(cls, uri: str) -> "ExecTarget":
        text = uri.strip()
        if "#" in text:
            body, _, fragment = text.rpartition("#")
        else:
            body, fragment = text, ""
        scheme, sep, rest = body.partition("://")
        if not sep or scheme not in ("local", "cmd"):
            raise ValueError(
                f"target {uri!r} is not 'local://' or 'cmd://<template>'"
            )
        concurrency: int | None = None
        timeout: float | None = None
        for option in filter(None, fragment.split(",")):
            key, eq, value = option.partition("=")
            if not eq:
                raise ValueError(
                    f"target option {option!r} is not 'key=value'"
                )
            if key == "concurrency":
                concurrency = int(value)
            elif key == "timeout":
                timeout = float(value)
            else:
                raise ValueError(
                    f"unknown target option {key!r} (know: concurrency, timeout)"
                )
        if scheme == "local":
            if rest.strip():
                raise ValueError(
                    f"local:// takes no command (got {rest!r}); "
                    "use cmd:// for wrappers"
                )
            return cls(
                uri=text, scheme="local",
                concurrency=concurrency, timeout=timeout,
            )
        template = rest.strip()
        if not template:
            raise ValueError("cmd:// needs a command template")
        fields = {
            name
            for _, name, _, _ in string.Formatter().parse(template)
            if name
        }
        unknown = fields - CONTEXT_KEYS
        if unknown:
            raise ValueError(
                f"cmd:// template references unknown placeholder(s) "
                f"{sorted(unknown)}; know: {sorted(CONTEXT_KEYS)}"
            )
        for required in ("plan", "shard"):
            if required not in fields:
                raise ValueError(
                    f"cmd:// template must reference {{{required}}} "
                    "(a wrapper that doesn't know its shard cannot run it)"
                )
        return cls(
            uri=text, scheme="cmd", template=template,
            concurrency=concurrency, timeout=timeout,
        )

    def command(self, ctx: Mapping[str, Any]) -> list[str]:
        """Resolve the launch context into the argv to spawn.

        Substitution happens before ``shlex.split``, so placeholder
        values containing spaces would split — keep plan/work paths
        space-free for ``cmd://`` targets (the CLI's defaults are).
        """
        if self.scheme == "local":
            return local_argv(ctx)
        rendered = self.template.format(
            **{key: str(value) for key, value in ctx.items()}
        )
        argv = shlex.split(rendered)
        if not argv:
            raise ValueError(f"target {self.uri!r} resolved to an empty command")
        return argv


def assign_targets(
    num_shards: int, targets: Sequence[ExecTarget | str] = ()
) -> list[ExecTarget]:
    """Deal shards onto targets round-robin (shard ``i`` -> target ``i % T``).

    No targets means every shard is ``local://`` — the zero-config
    default that keeps single-host fabric runs byte-for-byte what they
    were.  The same parsed instances repeat in the result, so identity
    (``is``) groups the shards sharing a target's concurrency cap.
    """
    if num_shards < 1:
        raise ValueError(f"need >= 1 shard, got {num_shards}")
    resolved = [
        target if isinstance(target, ExecTarget) else ExecTarget.parse(target)
        for target in targets
    ] or [ExecTarget.parse("local://")]
    return [resolved[i % len(resolved)] for i in range(num_shards)]


# -- the export server --------------------------------------------------


class _ExportRequestHandler(http.server.BaseHTTPRequestHandler):
    """GET/HEAD over an export tree, with Range and injected faults.

    ``SimpleHTTPRequestHandler`` has no Range support, and resume is
    the point — so this handler implements ``bytes=start[-end]``
    itself (206 + Content-Range).  The server's
    :class:`~repro.engine.faults.NetFaultInjector`, when armed, gets a
    say on every record-file response: stall, drop mid-body, truncate
    with a lying Content-Length, garble bytes, or answer 503.
    """

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve-exports/1"
    # Keep-alive without TCP_NODELAY hits the Nagle/delayed-ACK
    # pathology: ~40ms per request-response on loopback.  With it,
    # a reused connection answers in ~0.25ms.
    disable_nagle_algorithm = True

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        self._serve(head=False)

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib handler API
        self._serve(head=True)

    def _resolve(self) -> tuple[str, str] | None:
        """URL path -> (filesystem path, relative path), or None."""
        path = urllib.parse.unquote(self.path.split("?", 1)[0])
        parts = [part for part in path.split("/") if part and part != "."]
        if any(part == ".." for part in parts):
            return None
        root = os.path.abspath(self.server.export_root)  # type: ignore[attr-defined]
        full = os.path.abspath(os.path.join(root, *parts))
        if full != root and not full.startswith(root + os.sep):
            return None
        return full, "/".join(parts)

    def _serve(self, head: bool) -> None:
        try:
            self._serve_checked(head)
        except (BrokenPipeError, ConnectionResetError):
            # The client gave up (its timeout fired mid-stall, or it
            # closed after a drop); nothing to answer.
            self.close_connection = True

    def _serve_checked(self, head: bool) -> None:
        resolved = self._resolve()
        if resolved is None or not os.path.isfile(resolved[0]):
            self.send_error(404, "not found")
            return
        full, rel = resolved
        with open(full, "rb") as handle:
            data = handle.read()
        fault: FaultSpec | None = None
        injector: NetFaultInjector | None
        injector = self.server.injector  # type: ignore[attr-defined]
        if injector is not None and os.path.basename(rel) != EXPORT_MANIFEST_NAME:
            fault = injector.on_request(rel)
        if fault is not None and fault.mode == "net-5xx":
            self.send_error(503, "injected fault: 5xx burst")
            return
        if fault is not None and fault.mode == "net-stall":
            time.sleep(fault.seconds)
        size = len(data)
        start = 0
        status = 200
        content_range = None
        range_header = (self.headers.get("Range") or "").strip()
        if range_header.startswith("bytes="):
            spec = range_header[len("bytes="):]
            first, _, last = spec.partition("-")
            if first.isdigit():
                start = int(first)
                if start >= size:
                    self.send_response(416)
                    self.send_header("Content-Range", f"bytes */{size}")
                    self.send_header("Content-Length", "0")
                    self.end_headers()
                    return
                end = int(last) if last.isdigit() else size - 1
                end = min(end, size - 1)
                data = data[start : end + 1]
                status = 206
                content_range = f"bytes {start}-{end}/{size}"
        body = data
        abort_after: int | None = None
        if fault is not None:
            if fault.mode == "net-truncate":
                # A lying server: short body, matching short length —
                # only the manifest's byte count can catch it.
                body = body[: len(body) // 2]
            elif fault.mode == "net-garble":
                body = garble_bytes(body, injector.rng_for(rel))
            elif fault.mode == "net-drop":
                # Full length declared, half the bytes sent, then the
                # connection dies — the client sees a short read.
                abort_after = len(body) // 2
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Accept-Ranges", "bytes")
        if content_range is not None:
            self.send_header("Content-Range", content_range)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if head:
            return
        if abort_after is not None:
            self.wfile.write(body[:abort_after])
            self.wfile.flush()
            self.connection.shutdown(socket.SHUT_RDWR)
            self.close_connection = True
            return
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        _LOG.debug("serve-exports %s: " + format, self.client_address[0], *args)


class ExportServer:
    """A threaded stdlib HTTP server over a directory of exports.

    Serve a single :meth:`~repro.engine.cache.TrialCache.export_dir`
    (pull it at ``/``) or a directory of them (``/shard-0``,
    ``/shard-1``, ...).  ``port=0`` binds an ephemeral port — read
    :attr:`url` after construction.  Use as a context manager in tests
    (:meth:`start`/:meth:`stop`) or :meth:`serve_forever` from the CLI.
    """

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        injector: NetFaultInjector | None = None,
    ):
        if not os.path.isdir(root):
            raise ValueError(f"export root {root!r} is not a directory")
        self.root = os.path.abspath(root)
        self._server = http.server.ThreadingHTTPServer(
            (host, port), _ExportRequestHandler
        )
        self._server.daemon_threads = True
        self._server.export_root = self.root  # type: ignore[attr-defined]
        self._server.injector = injector  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ExportServer":
        self._thread = threading.Thread(
            # The default 0.5s shutdown-poll interval would make every
            # stop() — and thus every short-lived test server — stall
            # half a second; 20ms keeps teardown imperceptible.
            target=lambda: self._server.serve_forever(poll_interval=0.02),
            name="repro-serve-exports",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self._server.serve_forever()

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "ExportServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


# -- pulling ------------------------------------------------------------


@dataclass(frozen=True)
class PullPolicy:
    """Patience budget for one pull: timeouts, attempts, backoff.

    Mirrors the fabric's :class:`~repro.engine.fabric.BackoffPolicy`
    shape (exponential, capped, jittered) but stays independent of it —
    transport must not import the launcher.  ``timeout`` is per
    request, not per file: a resumed transfer gets a fresh window for
    each attempt, so big files on slow links finish as long as each
    attempt makes *some* progress.
    """

    timeout: float = 10.0
    max_attempts: int = 4
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"pull timeout must be > 0, got {self.timeout}")
        if self.max_attempts < 1:
            raise ValueError(f"need >= 1 attempt, got {self.max_attempts}")
        if (
            self.backoff_base <= 0
            or self.backoff_factor < 1
            or self.max_delay < self.backoff_base
        ):
            raise ValueError(
                "pull backoff needs base > 0, factor >= 1, max_delay >= base"
            )
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter is a fraction in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """The pause after the ``attempt``-th failure (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempts are 1-based, got {attempt}")
        raw = min(
            self.max_delay,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if rng is not None and self.jitter:
            raw *= 1.0 + self.jitter * rng.random()
        return raw


@dataclass
class PulledFile:
    """Transfer accounting for one manifest entry."""

    name: str
    bytes: int = 0
    records: int = 0
    attempts: int = 0
    resumed_bytes: int = 0
    quarantined: bool = False
    cause: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "bytes": self.bytes,
            "records": self.records,
            "attempts": self.attempts,
            "resumed_bytes": self.resumed_bytes,
            "quarantined": self.quarantined,
            "cause": self.cause,
        }


@dataclass
class PullResult:
    """What one :func:`pull_export` call fetched, verified, or refused."""

    url: str
    dest: str
    files: list[PulledFile] = field(default_factory=list)
    records: int = 0
    #: Endpoint-level failure (manifest unreachable or unreadable);
    #: per-file failures are quarantines, not errors.
    error: str | None = None

    @property
    def quarantined(self) -> list[PulledFile]:
        return [file for file in self.files if file.quarantined]

    @property
    def ok(self) -> bool:
        return self.error is None and not self.quarantined

    def summary(self) -> str:
        if self.error is not None:
            return f"pull {self.url}: FAILED ({self.error})"
        clean = len(self.files) - len(self.quarantined)
        note = (
            f", {len(self.quarantined)} QUARANTINED"
            if self.quarantined
            else ""
        )
        return (
            f"pull {self.url}: {clean} file(s), {self.records} record(s)"
            f"{note}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "url": self.url,
            "dest": self.dest,
            "files": [file.as_dict() for file in self.files],
            "records": self.records,
            "error": self.error,
            "ok": self.ok,
        }


class _TransferError(Exception):
    """One failed request, carrying whatever bytes did arrive."""

    def __init__(self, message: str, partial: bytes = b"", status: int | None = None):
        super().__init__(message)
        self.partial = partial
        self.status = status


class _PullSession:
    """One keep-alive HTTP connection to an export endpoint.

    Reusing the connection cuts the per-file round trip roughly 3x —
    no TCP handshake or socket teardown per file — which is what keeps
    clean-path transport overhead inside its benchmark budget.  After
    any transfer error the connection state is unknowable (a drop or
    stall can leave half a response buffered), so the socket is torn
    down and rebuilt lazily on the next request.
    """

    def __init__(self, base_url: str, timeout: float):
        split = urllib.parse.urlsplit(base_url)
        self._netloc = split.netloc
        self._base_path = split.path.rstrip("/")
        self._timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def get(self, rel: str, offset: int = 0) -> tuple[int, bytes]:
        """One GET of ``rel`` (already quoted), chunk-read so partial
        bodies survive the failure.

        Raises :class:`_TransferError` on any failure; the exception
        holds the bytes read before it, which is what makes Range
        resume worth anything — a timeout 90% through a transfer keeps
        the 90%.
        """
        headers = {"Accept-Encoding": "identity"}
        if offset:
            headers["Range"] = f"bytes={offset}-"
        try:
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self._netloc, timeout=self._timeout
                )
            self._conn.request(
                "GET", f"{self._base_path}/{rel}", headers=headers
            )
            response = self._conn.getresponse()
        except (
            ConnectionError,
            TimeoutError,
            http.client.HTTPException,
            ValueError,
            OSError,
        ) as err:
            self.close()
            raise _TransferError(f"connect failed: {err}") from err
        parts: list[bytes] = []
        status = response.status
        try:
            while True:
                chunk = response.read(_READ_CHUNK)
                if not chunk:
                    break
                parts.append(chunk)
        except http.client.IncompleteRead as err:
            parts.append(err.partial)
            self.close()
            raise _TransferError(
                "connection dropped mid-body", partial=b"".join(parts)
            ) from err
        except (
            ConnectionError,
            TimeoutError,
            http.client.HTTPException,
            OSError,
        ) as err:
            self.close()
            raise _TransferError(
                f"read failed: {err}", partial=b"".join(parts)
            ) from err
        if response.will_close:
            # The server asked to end the connection (send_error does,
            # as do injected drops); reconnect on the next request.
            self.close()
        if status >= 400:
            raise _TransferError(f"HTTP {status}", status=status)
        return status, b"".join(parts)


def _pull_file(
    session: _PullSession,
    base_url: str,
    name: str,
    meta: Mapping[str, Any],
    dest: str,
    policy: PullPolicy,
    rng: random.Random,
) -> PulledFile:
    telemetry = get_telemetry()
    result = PulledFile(name=name, records=int(meta.get("records", 0)))
    expected_sha = str(meta["sha256"])
    expected_bytes = int(meta["bytes"])
    rel = urllib.parse.quote(name)
    url = base_url.rstrip("/") + "/" + rel
    buf = b""
    cause: str | None = None
    while result.attempts < policy.max_attempts:
        if result.attempts:
            telemetry.incr("remote.pull_retries")
            time.sleep(policy.delay(result.attempts, rng))
        result.attempts += 1
        offset = len(buf) if 0 < len(buf) < expected_bytes else 0
        try:
            status, data = session.get(rel, offset=offset)
        except _TransferError as err:
            if offset:
                buf += err.partial
            else:
                buf = err.partial
            cause = str(err)
            _LOG.info(
                "pull %s attempt %d failed: %s (%d/%d bytes held)",
                url, result.attempts, err, len(buf), expected_bytes,
            )
            continue
        if offset and status == 206:
            # The held prefix is real progress the retry did not
            # re-transfer; that saving is what the counter measures.
            result.resumed_bytes += offset
            telemetry.incr("remote.bytes_resumed", offset)
            buf += data
        else:
            buf = data  # 200: a full body (Range unsent or ignored)
        if len(buf) < expected_bytes:
            cause = f"short body: {len(buf)}/{expected_bytes} bytes"
            continue  # resume from len(buf) next attempt
        if (
            len(buf) > expected_bytes
            or hashlib.sha256(buf).hexdigest() != expected_sha
        ):
            # Corruption poisons the whole buffer — a Range resume on
            # garbled bytes would re-verify garbage forever.
            cause = (
                f"digest mismatch after {len(buf)} byte(s); refetching in full"
            )
            buf = b""
            continue
        with open(os.path.join(dest, name), "wb") as handle:
            handle.write(buf)
        result.bytes = len(buf)
        telemetry.incr("remote.files_pulled")
        telemetry.incr("remote.bytes_pulled", len(buf))
        return result
    # Out of attempts: keep the evidence, never merge it.
    quarantine_dir = os.path.join(dest, "quarantine")
    os.makedirs(quarantine_dir, exist_ok=True)
    with open(os.path.join(quarantine_dir, name), "wb") as handle:
        handle.write(buf)
    result.bytes = len(buf)
    result.quarantined = True
    result.cause = cause or "exhausted attempts"
    telemetry.incr("remote.quarantined")
    _LOG.error(
        "pull %s QUARANTINED after %d attempt(s): %s",
        url, result.attempts, result.cause,
    )
    return result


def pull_export(
    base_url: str,
    dest: str,
    policy: PullPolicy | None = None,
    seed: int = 0,
) -> PullResult:
    """Fetch an exported cache directory over HTTP, verified or refused.

    The manifest comes first (it is the integrity root); each listed
    file is then fetched with per-request timeout, retry with seeded
    exponential backoff, and Range resume of short bodies, and is
    accepted only when its sha256 and byte count match the manifest.
    A file that keeps failing lands in ``dest/quarantine/`` — present
    for forensics, invisible to ``TrialCache.merge`` (which only reads
    ``dest``'s top level).  An unreachable or unreadable manifest
    yields ``result.error``; the caller degrades to a gap manifest,
    exactly like a failed shard.
    """
    policy = policy or PullPolicy()
    rng = random.Random(zlib.crc32(f"{seed}:{base_url}".encode()))
    os.makedirs(dest, exist_ok=True)
    session = _PullSession(base_url, policy.timeout)
    try:
        return _pull_export_over(session, base_url, dest, policy, rng)
    finally:
        session.close()


def _pull_export_over(
    session: _PullSession,
    base_url: str,
    dest: str,
    policy: PullPolicy,
    rng: random.Random,
) -> PullResult:
    manifest: Mapping[str, Any] | None = None
    cause: str | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if attempt > 1:
            get_telemetry().incr("remote.pull_retries")
            time.sleep(policy.delay(attempt - 1, rng))
        try:
            _, data = session.get(EXPORT_MANIFEST_NAME)
            manifest = json.loads(data.decode("utf-8"))
            break
        except _TransferError as err:
            cause = str(err)
        except (ValueError, UnicodeDecodeError) as err:
            cause = f"unreadable manifest: {err}"
    if manifest is None:
        return PullResult(
            url=base_url,
            dest=dest,
            error=(
                f"manifest unreachable after {policy.max_attempts} "
                f"attempt(s): {cause}"
            ),
        )
    if manifest.get("version") != EXPORT_MANIFEST_VERSION:
        return PullResult(
            url=base_url,
            dest=dest,
            error=(
                f"unsupported export-manifest version "
                f"{manifest.get('version')!r}"
            ),
        )
    result = PullResult(url=base_url, dest=dest)
    entries = manifest.get("files", {})
    for name in sorted(entries):
        if os.path.basename(name) != name or name.startswith("."):
            # A manifest is received data too: a traversal-shaped name
            # is refused outright, not written anywhere.
            result.files.append(
                PulledFile(
                    name=name,
                    quarantined=True,
                    cause="unsafe file name in manifest",
                )
            )
            get_telemetry().incr("remote.quarantined")
            continue
        result.files.append(
            _pull_file(session, base_url, name, entries[name], dest, policy, rng)
        )
    result.records = sum(
        file.records for file in result.files if not file.quarantined
    )
    _LOG.info("%s", result.summary())
    return result
