"""Entry point for ``python -m repro.engine``."""

import sys

from repro.engine.cli import main

if __name__ == "__main__":
    sys.exit(main())
