"""Parallel, cached experiment orchestration.

The engine turns the repo's ad-hoc measurement loops into declarative
experiment runs: an :class:`ExperimentSpec` names solver, generator,
verifier and the (n, seed) grid as importable references; the runner
expands it into content-hashed trials, replays whatever the on-disk
cache already holds, dispatches the delta to a process pool, and folds
the records into the same ``Sweep``/``SweepPoint`` shapes the analysis
layer has always used.  The same pipeline scales out: a
:class:`ShardPlan` deals a spec's dispatch chunks onto K serializable
:class:`ShardManifest` shards that run anywhere
(:func:`run_shard`) and merge back bit-identically
(:func:`merge_shard_reports` + cache union).  ``python -m
repro.engine`` exposes the named experiments of
:mod:`repro.engine.experiments` and the
``plan``/``run-shard``/``merge`` flow from the shell.

On top of the shard layer sits the fault-tolerant fabric
(:func:`run_fabric`): a launcher that drives every shard as a
supervised subprocess with persisted leases, heartbeat liveness,
retry with exponential backoff, and graceful degradation to a gap
manifest — plus the seeded fault-injection harness
(:mod:`repro.engine.faults`) that makes each failure mode a
deterministic test case.
"""

from repro.engine.cache import DEFAULT_CACHE_DIR, CacheStats, TrialCache
from repro.engine.experiments import EXPERIMENTS, build_experiment
from repro.engine.fabric import (
    BackoffPolicy,
    FabricResult,
    Lease,
    LeaseBoard,
    run_fabric,
)
from repro.engine.faults import FaultInjector, FaultSpec, parse_fault_specs
from repro.engine.pool import (
    WorkerCrashed,
    default_workers,
    run_task_batches,
    run_tasks,
)
from repro.engine.runner import (
    EngineReport,
    ShardReport,
    auto_batch_size,
    execute_trial,
    execute_trial_batch,
    iter_records,
    merge_shard_reports,
    plan_experiment,
    run_callable_sweep,
    run_experiment,
    run_shard,
)
from repro.engine.shard import ShardManifest, ShardPlan
from repro.engine.spec import (
    CACHE_VERSION,
    ExperimentSpec,
    TrialSpec,
    grid,
    resolve_ref,
    seed_grid,
)

__all__ = [
    "BackoffPolicy",
    "CACHE_VERSION",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "EXPERIMENTS",
    "EngineReport",
    "ExperimentSpec",
    "FabricResult",
    "FaultInjector",
    "FaultSpec",
    "Lease",
    "LeaseBoard",
    "ShardManifest",
    "ShardPlan",
    "ShardReport",
    "TrialCache",
    "TrialSpec",
    "WorkerCrashed",
    "auto_batch_size",
    "build_experiment",
    "default_workers",
    "execute_trial",
    "execute_trial_batch",
    "grid",
    "iter_records",
    "merge_shard_reports",
    "parse_fault_specs",
    "plan_experiment",
    "resolve_ref",
    "run_callable_sweep",
    "run_experiment",
    "run_fabric",
    "run_shard",
    "run_task_batches",
    "run_tasks",
    "seed_grid",
]
