"""Content-addressed on-disk trial store.

Records live in JSON-lines shards under a cache root (default
``.repro-cache/``), sharded by the first byte of the trial key so no
single file grows unboundedly and concurrent sweeps touch disjoint
shards most of the time.  Appends are atomic at the line level; on
replay the *last* record for a key wins, so an interrupted run can
simply be re-run.

The cache is deliberately dumb: it stores whatever JSON-safe record
the runner hands it, keyed by the trial's content hash.  Invalidation
is handled upstream by :data:`repro.engine.spec.CACHE_VERSION` being
part of every key.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["CacheStats", "TrialCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}


@dataclass
class TrialCache:
    """A sharded key -> JSON-record store with an in-memory index."""

    root: str = DEFAULT_CACHE_DIR
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._index: dict[str, dict[str, Any]] = {}
        self._loaded_shards: set[str] = set()
        # Fail fast on an unusable cache root, before any trial work
        # whose results would otherwise be computed and then lost.
        os.makedirs(self.root, exist_ok=True)

    # -- sharding ------------------------------------------------------

    def _shard_path(self, key: str) -> str:
        return os.path.join(self.root, f"{key[:2]}.jsonl")

    def _load_shard(self, shard: str) -> None:
        if shard in self._loaded_shards:
            return
        self._loaded_shards.add(shard)
        try:
            with open(shard, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write at the tail of the shard
                    key = entry.get("key")
                    if key:
                        self._index[key] = entry["record"]
        except OSError:
            pass  # missing shard == empty shard

    # -- lookup / store ------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        self._load_shard(self._shard_path(key))
        record = self._index.get(key)
        if record is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return record

    def get_many(self, keys: Iterable[str]) -> dict[str, dict[str, Any]]:
        found: dict[str, dict[str, Any]] = {}
        for key in keys:
            record = self.get(key)
            if record is not None:
                found[key] = record
        return found

    def put(self, key: str, record: dict[str, Any]) -> None:
        self.put_many([(key, record)])

    def put_many(self, items: Iterable[tuple[str, dict[str, Any]]]) -> None:
        by_shard: dict[str, list[str]] = {}
        for key, record in items:
            self._index[key] = record
            line = json.dumps(
                {"key": key, "record": record}, sort_keys=True
            )
            by_shard.setdefault(self._shard_path(key), []).append(line)
            self.stats.puts += 1
        if not by_shard:
            return
        os.makedirs(self.root, exist_ok=True)
        for shard, lines in by_shard.items():
            self._loaded_shards.add(shard)
            with open(shard, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")

    def __len__(self) -> int:
        return len(self._index)
