"""Content-addressed on-disk trial store, mergeable across hosts.

Records live in JSON-lines shard files under a cache root (default
``.repro-cache/``), sharded by the first byte of the trial key so no
single file grows unboundedly and concurrent sweeps touch disjoint
files most of the time.  Appends are atomic at the line level; on
replay the *last* record for a key wins, so an interrupted run can
simply be re-run, and :meth:`TrialCache.compact` rewrites the files
down to that last record per key when append growth matters.

The store is built for distributed merge: because every record is
keyed by its trial's content hash, two caches can only ever disagree
on *presence*, never on *value* — so ``merge`` is a plain key union
(idempotent, commutative), ``export``/``import_file`` move records as
one portable JSONL file, and the ``isolation`` mode points writes at a
private root (one per shard of a sharded run) that unions cleanly back
into the shared root afterward.  All readers tolerate a torn trailing
line, the worst a killed writer can leave behind.

The cache is deliberately dumb: it stores whatever JSON-safe record
the runner hands it, keyed by the trial's content hash.  Invalidation
is handled upstream by :data:`repro.engine.spec.CACHE_VERSION` being
part of every key.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.obs import get_telemetry
from repro.util.fsio import atomic_write_text

__all__ = [
    "CacheStats",
    "TrialCache",
    "DEFAULT_CACHE_DIR",
    "EXPORT_MANIFEST_NAME",
    "EXPORT_MANIFEST_VERSION",
    "load_export_manifest",
]

_LOG = logging.getLogger("repro.engine")

DEFAULT_CACHE_DIR = ".repro-cache"

#: The integrity root :meth:`TrialCache.export_dir` writes next to its
#: record files; bump the version when the manifest layout changes.
EXPORT_MANIFEST_NAME = "manifest.json"
EXPORT_MANIFEST_VERSION = 1


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Undecodable lines skipped while reading this cache's roots,
    #: imports, and merge sources — the torn tails killed writers leave.
    torn_lines: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "torn_lines": self.torn_lines,
        }


def _parse_lines(
    path: str, on_torn: Callable[[], None] | None = None
) -> Iterator[tuple[str, dict[str, Any]]]:
    """Yield ``(key, record)`` pairs from one shard/export file.

    A missing file reads as empty; undecodable lines (the torn tail a
    killed writer leaves) are skipped rather than poisoning the run,
    with ``on_torn`` called once per skip so callers can account for
    them instead of silently under-reading.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    if on_torn is not None:
                        on_torn()
                    continue  # torn write at the tail of the file
                key = entry.get("key")
                if key and "record" in entry:
                    yield key, entry["record"]
    except OSError:
        return  # missing file == empty file


def _scan_root(
    root: str, on_torn: Callable[[], None] | None = None
) -> dict[str, dict[str, Any]]:
    """Last-record-per-key view of every ``*.jsonl`` directly in a root."""
    entries: dict[str, dict[str, Any]] = {}
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return entries
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        for key, record in _parse_lines(os.path.join(root, name), on_torn):
            entries[key] = record
    return entries


def load_export_manifest(root: str) -> dict[str, Any]:
    """Read and version-check the manifest of an exported directory."""
    path = os.path.join(root, EXPORT_MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("version") != EXPORT_MANIFEST_VERSION:
        raise ValueError(
            f"unsupported export-manifest version {manifest.get('version')!r} "
            f"(this build reads version {EXPORT_MANIFEST_VERSION})"
        )
    return manifest


def _dump_line(key: str, record: dict[str, Any]) -> str:
    return json.dumps({"key": key, "record": record}, sort_keys=True)


@dataclass
class TrialCache:
    """A sharded key -> JSON-record store with an in-memory index.

    ``isolation``, when set, is a private directory all *writes* go to
    while reads consult both it and ``root`` (the private copy wins).
    A sharded run gives each shard ``TrialCache(shared_root,
    isolation=private_root)``: shards reuse whatever the shared root
    already holds but never contend on its files, and afterward
    ``TrialCache(shared_root).merge(private_root)`` folds each private
    root back in.
    """

    root: str = DEFAULT_CACHE_DIR
    isolation: str | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._index: dict[str, dict[str, Any]] = {}
        self._loaded: set[str] = set()
        # Fail fast on an unusable cache root, before any trial work
        # whose results would otherwise be computed and then lost.
        os.makedirs(self.root, exist_ok=True)
        if self.isolation:
            os.makedirs(self.isolation, exist_ok=True)

    # -- sharding ------------------------------------------------------

    def _shard_name(self, key: str) -> str:
        return f"{key[:2]}.jsonl"

    def _read_roots(self) -> list[str]:
        # Isolation last: its records overwrite the shared root's on
        # load, matching "the private copy wins".
        return [self.root] + ([self.isolation] if self.isolation else [])

    def _count_torn(self) -> None:
        self.stats.torn_lines += 1
        get_telemetry().incr("cache.torn_lines_skipped")

    def _load_shard(self, name: str) -> None:
        if name in self._loaded:
            return
        self._loaded.add(name)
        get_telemetry().incr("cache.shard_files_loaded")
        for root in self._read_roots():
            for key, record in _parse_lines(
                os.path.join(root, name), self._count_torn
            ):
                self._index[key] = record

    def _peek(self, key: str) -> dict[str, Any] | None:
        """Lookup without touching hit/miss accounting."""
        self._load_shard(self._shard_name(key))
        return self._index.get(key)

    def _shard_names_on_disk(self) -> list[str]:
        names: set[str] = set()
        for root in self._read_roots():
            try:
                names.update(
                    name for name in os.listdir(root) if name.endswith(".jsonl")
                )
            except OSError:
                continue
        return sorted(names)

    def load_all(self) -> None:
        """Pull every on-disk record into the in-memory index."""
        for name in self._shard_names_on_disk():
            self._load_shard(name)

    # -- lookup / store ------------------------------------------------

    def contains(self, key: str) -> bool:
        """Presence probe that does not touch hit/miss accounting."""
        return self._peek(key) is not None

    def get(self, key: str) -> dict[str, Any] | None:
        record = self._peek(key)
        if record is None:
            self.stats.misses += 1
            get_telemetry().incr("cache.misses")
        else:
            self.stats.hits += 1
            get_telemetry().incr("cache.hits")
        return record

    def get_many(self, keys: Iterable[str]) -> dict[str, dict[str, Any]]:
        found: dict[str, dict[str, Any]] = {}
        for key in keys:
            record = self.get(key)
            if record is not None:
                found[key] = record
        return found

    def put(self, key: str, record: dict[str, Any]) -> None:
        self.put_many([(key, record)])

    def put_many(self, items: Iterable[tuple[str, dict[str, Any]]]) -> None:
        by_shard: dict[str, list[str]] = {}
        for key, record in items:
            name = self._shard_name(key)
            # Load the shard's existing records before the write marks
            # it loaded, so later gets of sibling keys still see disk.
            self._load_shard(name)
            self._index[key] = record
            by_shard.setdefault(name, []).append(_dump_line(key, record))
            self.stats.puts += 1
            get_telemetry().incr("cache.puts")
        if not by_shard:
            return
        write_root = self.isolation or self.root
        os.makedirs(write_root, exist_ok=True)
        for name, lines in by_shard.items():
            path = os.path.join(write_root, name)
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")

    def __len__(self) -> int:
        return len(self._index)

    # -- transport: export / import / merge ----------------------------

    def export(self, path: str, keys: Iterable[str] | None = None) -> int:
        """Write records as one portable JSONL file; returns the count.

        ``keys=None`` exports everything on disk; an explicit iterable
        exports exactly those keys (unknown ones are skipped).  Lines
        are key-sorted, so equal caches export byte-identical files.
        The file is staged and atomically replaced: a consumer pulling
        an export sees the previous complete file or the new one, never
        a half-written mixture, even if the exporter is killed.
        """
        if keys is None:
            self.load_all()
            entries = sorted(self._index.items())
        else:
            picked: dict[str, dict[str, Any]] = {}
            for key in keys:
                record = self._peek(key)
                if record is not None:
                    picked[key] = record  # dedups repeated keys, too
            entries = sorted(picked.items())
        atomic_write_text(
            path,
            "".join(_dump_line(key, record) + "\n" for key, record in entries),
        )
        return len(entries)

    def export_dir(self, dest: str) -> dict[str, Any]:
        """Write a compacted, integrity-checked copy of this cache.

        ``dest`` gets one key-sorted JSONL file per occupied shard plus
        a :data:`EXPORT_MANIFEST_NAME` recording each file's sha256,
        byte length, and record count — the shape ``serve-exports``
        serves and ``merge --from-url`` verifies, so a receiver can
        prove a transfer intact (or quarantine it) without trusting the
        sender or the network.  Equal caches export byte-identical
        directories; every file (and the manifest) is atomically
        replaced.  Returns the manifest payload.
        """
        self.load_all()
        os.makedirs(dest, exist_ok=True)
        groups: dict[str, list[tuple[str, dict[str, Any]]]] = {}
        for key, record in sorted(self._index.items()):
            groups.setdefault(self._shard_name(key), []).append((key, record))
        files: dict[str, dict[str, Any]] = {}
        for name, entries in sorted(groups.items()):
            text = "".join(_dump_line(key, record) + "\n" for key, record in entries)
            data = text.encode("utf-8")
            atomic_write_text(os.path.join(dest, name), text)
            files[name] = {
                "sha256": hashlib.sha256(data).hexdigest(),
                "bytes": len(data),
                "records": len(entries),
            }
        manifest = {
            "version": EXPORT_MANIFEST_VERSION,
            "files": files,
            "records_total": len(self._index),
        }
        atomic_write_text(
            os.path.join(dest, EXPORT_MANIFEST_NAME),
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )
        get_telemetry().incr("cache.dir_exports")
        return manifest

    def _absorb(self, incoming: dict[str, dict[str, Any]]) -> int:
        """Key-union incoming records; newcomers win only when they differ.

        Records are content-addressed, so a key collision with a
        *different* record should be impossible — but if it happens
        (hand-edited files), last writer wins, matching replay
        semantics.  Identical records are not re-appended, which is
        what keeps merge idempotent on disk as well as in the index.
        """
        fresh = [
            (key, record)
            for key, record in sorted(incoming.items())
            if self._peek(key) != record
        ]
        self.put_many(fresh)
        return len(fresh)

    def import_file(self, path: str) -> tuple[int, int]:
        """Import a JSONL export; returns ``(added, torn_lines_skipped)``.

        Tolerates a torn trailing line — but *reports* it, so a caller
        moving records between hosts can tell a clean transfer from one
        that silently lost its tail; within the file the last record
        per key wins, mirroring shard replay.
        """
        if not os.path.isfile(path):
            raise ValueError(f"cache export {path!r} does not exist")
        incoming: dict[str, dict[str, Any]] = {}
        skipped = 0

        def count() -> None:
            nonlocal skipped
            skipped += 1

        for key, record in _parse_lines(path, count):
            incoming[key] = record
        if skipped:
            self.stats.torn_lines += skipped
            get_telemetry().incr("cache.torn_lines_skipped", skipped)
            _LOG.warning(
                "import of %s skipped %d torn line(s)", path, skipped
            )
        return self._absorb(incoming), skipped

    def merge(self, other_root: str) -> int:
        """Union another cache root's records into this cache.

        ``merge`` is idempotent (re-merging adds nothing) and
        commutative up to file layout (any merge order yields the same
        key -> record mapping) because keys are content hashes: two
        caches can only disagree on presence.  Returns how many records
        were new; torn source lines land in ``stats.torn_lines`` and
        the ``cache.torn_lines_skipped`` counter.
        """
        if not os.path.isdir(other_root):
            raise ValueError(f"cache root {other_root!r} does not exist")
        added = self._absorb(_scan_root(other_root, self._count_torn))
        telemetry = get_telemetry()
        telemetry.incr("cache.merges")
        telemetry.incr("cache.merge_new_records", added)
        _LOG.debug("merged %s into %s: %d new record(s)", other_root, self.root, added)
        return added

    # -- maintenance ---------------------------------------------------

    def compact(self) -> tuple[int, int]:
        """Rewrite shard files keeping only the last record per key.

        Returns ``(kept, dropped)`` line counts.  Appends accumulate a
        line per put — re-runs after merges or interruptions write keys
        that already exist — and compaction is the one operation that
        reclaims that space.  Each file is rewritten atomically
        (temp file + ``os.replace``) and only when it actually shrinks;
        the read view is unchanged, since replay already kept only the
        last record per key.

        **Single-writer only**: unlike every other operation here,
        compaction is read-modify-replace, so records appended by a
        concurrent writer between the read pass and the replace would
        be clobbered.  Run it between sweeps (the CI smoke compacts
        after ``merge``), or point concurrent shards at isolation
        roots so the shared root has no other writer.
        """
        kept = 0
        dropped = 0
        roots = [self.root] + (
            [self.isolation]
            if self.isolation and self.isolation != self.root
            else []
        )
        for root in roots:
            try:
                names = sorted(os.listdir(root))
            except OSError:
                continue
            for name in names:
                if not name.endswith(".jsonl"):
                    continue
                path = os.path.join(root, name)
                entries: dict[str, dict[str, Any]] = {}
                lines = 0
                for key, record in _parse_lines(path):
                    entries[key] = record
                    lines += 1
                kept += len(entries)
                dropped += lines - len(entries)
                if lines == len(entries):
                    continue  # already compact: skip the rewrite
                tmp = path + ".compact"
                with open(tmp, "w", encoding="utf-8") as handle:
                    for key, record in sorted(entries.items()):
                        handle.write(_dump_line(key, record) + "\n")
                os.replace(tmp, path)
        telemetry = get_telemetry()
        telemetry.incr("cache.compactions")
        telemetry.incr("cache.records_compacted", dropped)
        _LOG.debug(
            "compacted %s: kept %d, dropped %d stale line(s)",
            self.root, kept, dropped,
        )
        return kept, dropped
