"""Spec -> pool -> cache orchestration, batched.

``run_experiment`` turns an :class:`~repro.engine.spec.ExperimentSpec`
into aggregated :class:`~repro.analysis.sweep.SweepPoint` rows:

1. expand the spec into its trial grid (n-major, seed-minor order);
2. look every trial key up in the cache;
3. group the missing trials into per-``(spec, n)`` chunks and ship each
   chunk to the worker pool as ONE task — one pickle/IPC round-trip per
   chunk, not per trial;
4. store the freshly computed records;
5. aggregate all records, in grid order, into a ``Sweep``.

The chunk — not the trial — is the unit of scheduling.  Inside a
worker, :func:`execute_trial_batch` amortizes everything a chunk's
trials share: entrypoint references resolve once per worker process
(the memo survives across chunks of the same spec), families with
seed-independent topology rebuild only identifiers/inputs/rng on a
shared frozen graph, and the verifier's configuration skeleton is
prepared once per shared core.  Records stay bit-identical to the
serial per-trial path (:func:`execute_trial`) at every worker count and
batch size, so aggregation — a pure function of the ordered record
list — cannot tell the difference.

``run_callable_sweep`` is the in-process path for callers holding live
solver objects and closures (the legacy ``run_sweep`` signature); it
shares the aggregation code but cannot be parallelized or cached,
since arbitrary callables have no content hash.
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.analysis.sweep import Sweep, SweepPoint
from repro.engine.cache import TrialCache
from repro.engine.pool import run_task_batches
from repro.engine.spec import ExperimentSpec, TrialSpec, resolve_ref

__all__ = [
    "EngineReport",
    "auto_batch_size",
    "execute_trial",
    "execute_trial_batch",
    "run_callable_sweep",
    "run_experiment",
]

# The auto heuristic never picks a chunk larger than this: it bounds
# both the result pickle and how stale the streaming progress can get.
# An explicit ``batch_size`` may exceed it (chunks still never span two
# grid sizes, so len(spec.seeds) remains the effective ceiling then).
MAX_BATCH_SIZE = 64


@dataclass
class EngineReport:
    """One experiment's aggregated results plus run accounting."""

    spec: ExperimentSpec
    sweep: Sweep
    records: list[dict[str, Any]]
    trials_total: int
    cache_hits: int
    computed: int
    elapsed: float
    workers: int
    #: Worker dispatch accounting: how many chunks the missing trials
    #: were grouped into, and the per-chunk trial cap used (0 = nothing
    #: was dispatched).
    batches: int = 0
    batch_size: int = 0

    def summary(self) -> str:
        dispatch = ""
        if self.batches:
            dispatch = f" in {self.batches} chunk(s) of <= {self.batch_size}"
        return (
            f"{self.spec.name}: {self.trials_total} trials "
            f"({self.cache_hits} cached, {self.computed} computed{dispatch}) "
            f"on {self.workers} worker(s) in {self.elapsed:.2f}s"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.spec.name,
            "solver": self.sweep.solver_name,
            "workers": self.workers,
            "trials_total": self.trials_total,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "batches": self.batches,
            "batch_size": self.batch_size,
            "elapsed_s": round(self.elapsed, 4),
            "points": [
                {
                    "n": p.n,
                    "trials": p.trials,
                    "rounds_mean": p.rounds_mean,
                    "rounds_max": p.rounds_max,
                    "rounds_min": p.rounds_min,
                }
                for p in self.sweep.points
            ],
        }


def _json_safe_extras(extras: dict) -> dict[str, Any]:
    return {
        key: value
        for key, value in extras.items()
        if isinstance(key, str) and isinstance(value, (bool, int, float, str))
    }


def execute_trial(trial: TrialSpec) -> dict[str, Any]:
    """Run one trial and return its JSON-safe record.

    The trial seed fully determines the instance (generator mixes it
    in) and the solver's randomness (the instance carries a
    ``NodeRng(seed)``), so this function is deterministic in any
    process.  This is the reference per-trial path: no memoization, no
    topology sharing — the equivalence suite holds the batched path to
    its records.
    """
    from repro.runtime.driver import dispatch_solver

    generator = resolve_ref(trial.generator)
    instance = generator(trial.n, trial.seed, **dict(trial.params))
    solver = resolve_ref(trial.solver)()
    result = dispatch_solver(solver, instance)
    if trial.verifier:
        resolve_ref(trial.verifier)(instance, result)
    return {
        "n": trial.n,
        "actual_n": instance.graph.num_nodes,
        "seed": trial.seed,
        "rounds": result.rounds,
        "extras": _json_safe_extras(result.extras),
    }


# -- per-worker amortization state --------------------------------------
#
# Module globals live once per worker process (and once in the parent
# for the serial path), so chunks of the same spec arriving at the same
# worker pay reference resolution, topology builds, and verifier
# skeleton preparation only once.

_RESOLVED: dict[str, Any] = {}
_PREPARED_CAP = 8
_PREPARED: "OrderedDict[tuple, Any]" = OrderedDict()
_WORKER_INSTANCES = None  # lazily constructed InstanceCache


def _resolved(ref: str) -> Any:
    """resolve_ref with a per-process memo (resolution is deterministic)."""
    obj = _RESOLVED.get(ref)
    if obj is None:
        obj = resolve_ref(ref)
        _RESOLVED[ref] = obj
    return obj


def _worker_instances():
    from repro.runtime.driver import InstanceCache

    global _WORKER_INSTANCES
    if _WORKER_INSTANCES is None:
        _WORKER_INSTANCES = InstanceCache(capacity=_PREPARED_CAP)
    return _WORKER_INSTANCES


def _registry_family(generator_ref: str):
    """The FamilyInfo behind an entrypoints generator ref, else None."""
    from repro.runtime import registry
    from repro.runtime.entrypoints import parse_entrypoint

    parsed = parse_entrypoint(generator_ref)
    if parsed is None or parsed[0] != "family":
        return None
    return registry.family(parsed[1])


def _prepared_checker(verifier_ref: str, core_key, instance):
    """A PreparedVerifier for (problem behind ref, shared core), or None.

    Only registry verifier refs over plain ne-LCL problems are
    preparable.  Caching policy (rebuild on new key or evicted core) is
    :func:`repro.runtime.driver.cached_prepared_verifier`, shared with
    ``TrialBatch``; this memo only adds the per-worker LRU bound, with
    hits refreshed so hot skeletons survive interleaved specs.
    """
    from repro.runtime import registry
    from repro.runtime.driver import cached_prepared_verifier
    from repro.runtime.entrypoints import parse_entrypoint

    parsed = parse_entrypoint(verifier_ref)
    if parsed is None or parsed[0] != "verifier":
        return None
    key = (verifier_ref,) + tuple(core_key)
    prepared = cached_prepared_verifier(
        _PREPARED, key, registry.problem(parsed[1]), instance
    )
    _PREPARED.move_to_end(key)
    if len(_PREPARED) > _PREPARED_CAP:
        _PREPARED.popitem(last=False)
    return prepared


def execute_trial_batch(trials: Sequence[TrialSpec]) -> list[dict[str, Any]]:
    """Run a chunk of same-spec trials with shared per-batch setup.

    All trials must share their solver/generator/verifier references
    (they come from one spec).  Per-trial records are exactly what
    :func:`execute_trial` produces, including the verifier raising
    ``AssertionError`` on a rejected output — only the setup work is
    amortized, never the per-trial solve or check.
    """
    from repro.runtime.driver import dispatch_solver

    if not trials:
        return []
    head = trials[0]
    for trial in trials:
        if (trial.solver, trial.generator, trial.verifier) != (
            head.solver, head.generator, head.verifier
        ):
            raise ValueError(
                "a trial batch must share solver/generator/verifier refs"
            )
    solver_factory = _resolved(head.solver)
    generator = _resolved(head.generator)
    checker = _resolved(head.verifier) if head.verifier else None
    family_info = _registry_family(head.generator)
    instances = _worker_instances()
    records = []
    for trial in trials:
        if family_info is not None:
            instance, core_key = instances.build(
                family_info, trial.n, trial.seed, dict(trial.params)
            )
        else:
            instance = generator(trial.n, trial.seed, **dict(trial.params))
            core_key = None
        result = dispatch_solver(solver_factory(), instance)
        if head.verifier:
            prepared = (
                _prepared_checker(head.verifier, core_key, instance)
                if core_key is not None
                else None
            )
            if prepared is not None:
                verdict = prepared.verify(result.outputs)
                assert verdict.ok, (
                    f"{prepared.problem.name}: {verdict.summary()}"
                )
            else:
                assert checker is not None
                checker(instance, result)
        records.append(
            {
                "n": trial.n,
                "actual_n": instance.graph.num_nodes,
                "seed": trial.seed,
                "rounds": result.rounds,
                "extras": _json_safe_extras(result.extras),
            }
        )
    return records


def _execute_batch_payload(payload: dict[str, Any]) -> list[dict[str, Any]]:
    """Module-level pool target: chunk payload in, record list out."""
    return execute_trial_batch(
        [TrialSpec.from_payload(entry) for entry in payload["trials"]]
    )


def auto_batch_size(num_missing: int, workers: int, seeds_per_n: int) -> int:
    """The default chunk size when the caller does not pin one.

    Large enough that one chunk usually covers a full seed group (so
    topology reuse sees every seed of a size), small enough to leave
    ~4 chunks per worker for load balancing, and capped at
    ``MAX_BATCH_SIZE`` to bound pickle sizes.
    """
    if num_missing <= 0:
        return 1
    balance = -(-num_missing // (max(workers, 1) * 4))  # ceil division
    return max(1, min(MAX_BATCH_SIZE, max(balance, seeds_per_n)))


def _chunk_missing(
    trials: Sequence[TrialSpec], missing: Sequence[int], batch_size: int
) -> list[list[int]]:
    """Group missing trial indices into per-n chunks of <= batch_size.

    ``missing`` is in grid (n-major, seed-minor) order; a chunk never
    spans two sizes, so every chunk is a run of seeds over one frozen
    topology.
    """
    chunks: list[list[int]] = []
    current: list[int] = []
    current_n: int | None = None
    for i in missing:
        n = trials[i].n
        if current and (n != current_n or len(current) >= batch_size):
            chunks.append(current)
            current = []
        current_n = n
        current.append(i)
    if current:
        chunks.append(current)
    return chunks


def aggregate_points(
    ns: Sequence[int], seeds: Sequence[int], records: Sequence[dict[str, Any]]
) -> list[SweepPoint]:
    """Fold grid-ordered records into one SweepPoint per requested n.

    Mirrors the legacy ``run_sweep`` accounting exactly: the reported
    ``n`` is the actual size of the point's (last) instance, and the
    mean is taken over the seed grid in seed order — hence bit-stable.
    """
    if not seeds:
        raise ValueError("aggregation needs at least one seed per point")
    per_point = len(seeds)
    if len(records) != len(ns) * per_point:
        raise ValueError(
            f"record count {len(records)} does not cover the "
            f"{len(ns)}x{per_point} trial grid"
        )
    points = []
    for i, _n in enumerate(ns):
        chunk = records[i * per_point : (i + 1) * per_point]
        rounds = [record["rounds"] for record in chunk]
        points.append(
            SweepPoint(
                n=chunk[-1]["actual_n"],
                trials=len(rounds),
                rounds_mean=sum(rounds) / len(rounds),
                rounds_max=max(rounds),
                rounds_min=min(rounds),
            )
        )
    return points


def run_experiment(
    spec: ExperimentSpec,
    workers: int = 1,
    cache: TrialCache | None = None,
    batch_size: int | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
) -> EngineReport:
    """Run (or replay) one experiment spec and aggregate its sweep.

    ``batch_size`` caps how many trials travel in one worker dispatch
    chunk (None = :func:`auto_batch_size`); chunks never span two grid
    sizes.  ``on_record`` streams results: it fires once per record —
    immediately (in grid order) for cache hits, then as each computed
    chunk completes, in chunk order at any worker count.
    """
    start = time.perf_counter()
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch size must be positive, got {batch_size}")
    trials = spec.trials()
    keys = [trial.key() for trial in trials]
    records: list[dict[str, Any] | None] = [None] * len(trials)
    missing: list[int] = []
    if cache is not None:
        for i, key in enumerate(keys):
            records[i] = cache.get(key)
            if records[i] is None:
                missing.append(i)
    else:
        missing = list(range(len(trials)))
    cache_hits = len(trials) - len(missing)
    if on_record is not None:
        for i, record in enumerate(records):
            if record is not None:
                on_record(record)

    chunks: list[list[int]] = []
    if missing:
        if batch_size is None:
            batch_size = auto_batch_size(len(missing), workers, len(spec.seeds))
        chunks = _chunk_missing(trials, missing, batch_size)
        payloads = [
            {"trials": [trials[i].to_payload() for i in chunk]}
            for chunk in chunks
        ]

        def deliver(chunk_pos: int, chunk_records: list[dict[str, Any]]) -> None:
            indices = chunks[chunk_pos]
            if len(chunk_records) != len(indices):
                raise ValueError(
                    f"chunk {chunk_pos} returned {len(chunk_records)} records "
                    f"for {len(indices)} trials"
                )
            for i, record in zip(indices, chunk_records):
                records[i] = record
                if on_record is not None:
                    on_record(record)

        run_task_batches(
            _execute_batch_payload,
            payloads,
            workers=workers,
            pool_seed=zlib.crc32(spec.name.encode()),
            on_result=deliver,
        )
        if cache is not None:
            cache.put_many((keys[i], records[i]) for i in missing)

    sweep = Sweep(
        solver_name=spec.solver_display_name(),
        points=aggregate_points(spec.ns, spec.seeds, records),
    )
    return EngineReport(
        spec=spec,
        sweep=sweep,
        records=records,  # type: ignore[arg-type]
        trials_total=len(trials),
        cache_hits=cache_hits,
        computed=len(missing),
        elapsed=time.perf_counter() - start,
        workers=workers,
        batches=len(chunks),
        batch_size=batch_size or 0,
    )


def run_callable_sweep(
    solver: Any,
    instance_factory: Callable[[int, int], Any],
    ns: Sequence[int],
    seeds: Sequence[int] = (0, 1, 2),
    verify: Callable[[Any, Any], None] | None = None,
) -> Sweep:
    """The engine's in-process sweep over live callables.

    This is the execution path behind :func:`repro.analysis.sweep.run_sweep`:
    same trial grid, same aggregation, no pickling requirements — and
    therefore serial and uncached.
    """
    from repro.runtime.driver import dispatch_solver

    if not seeds:
        raise ValueError("run_sweep needs at least one seed (got an empty grid)")
    records: list[dict[str, Any]] = []
    for n in ns:
        for seed in seeds:
            instance = instance_factory(n, seed)
            result = dispatch_solver(solver, instance)
            if verify is not None:
                verify(instance, result)
            records.append(
                {
                    "n": n,
                    "actual_n": instance.graph.num_nodes,
                    "seed": seed,
                    "rounds": result.rounds,
                    "extras": {},
                }
            )
    return Sweep(
        solver_name=solver.name,
        points=aggregate_points(ns, seeds, records),
    )
