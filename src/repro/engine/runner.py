"""Plan -> shard -> chunk execution, from one spec to many hosts.

The pipeline has three stages, each its own function, and
``run_experiment`` is nothing but their single-shard composition:

1. :func:`plan_experiment` expands the spec into its trial grid
   (n-major, seed-minor order), chunks the FULL grid into per-``(spec,
   n)`` dispatch chunks, and deals the chunks onto K shards — a pure
   function of ``(spec, num_shards, batch_size)``, so any host re-plans
   to byte-identical shards;
2. :func:`run_shard` executes one :class:`~repro.engine.shard.ShardManifest`:
   look the shard's trial keys up in the cache, ship each chunk's
   missing trials to the worker pool as ONE task (one pickle/IPC
   round-trip per chunk, not per trial), store the fresh records;
3. :func:`merge_shard_reports` reduces the K shard reports back into
   one :class:`EngineReport` — grid-ordered records, aggregated
   ``Sweep`` — bit-identical to what a single-host run produces, in
   whatever order the shards ran and on whatever mix of processes.

The chunk — not the trial — stays the unit of scheduling.  Inside a
worker, :func:`execute_trial_batch` amortizes everything a chunk's
trials share: entrypoint references resolve once per worker process
(the memo survives across chunks of the same spec), families with
seed-independent topology rebuild only identifiers/inputs/rng on a
shared frozen graph, and the verifier's configuration skeleton is
prepared once per shared core.  Records stay bit-identical to the
serial per-trial path (:func:`execute_trial`) at every worker count,
batch size, and shard count, so aggregation — a pure function of the
ordered record list — cannot tell the difference.

``run_callable_sweep`` is the in-process path for callers holding live
solver objects and closures (the legacy ``run_sweep`` signature); it
shares the aggregation code but cannot be parallelized or cached,
since arbitrary callables have no content hash.
"""

from __future__ import annotations

import logging
import os
import queue
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro import kernels as kernel_layer
from repro.analysis.sweep import Sweep, SweepPoint
from repro.engine.cache import TrialCache
from repro.engine.pool import run_task_batches
from repro.engine.shard import ShardManifest, ShardPlan
from repro.engine.spec import ExperimentSpec, TrialSpec, resolve_ref
from repro.obs import get_telemetry, merge_snapshots

_LOG = logging.getLogger("repro.engine")

__all__ = [
    "EngineReport",
    "ShardReport",
    "auto_batch_size",
    "execute_trial",
    "execute_trial_batch",
    "iter_records",
    "merge_shard_reports",
    "plan_experiment",
    "run_callable_sweep",
    "run_experiment",
    "run_shard",
]

# The auto heuristic never picks a chunk larger than this: it bounds
# both the result pickle and how stale the streaming progress can get.
# An explicit ``batch_size`` may exceed it (chunks still never span two
# grid sizes, so len(spec.seeds) remains the effective ceiling then).
MAX_BATCH_SIZE = 64


@dataclass
class EngineReport:
    """One experiment's aggregated results plus run accounting."""

    spec: ExperimentSpec
    sweep: Sweep
    records: list[dict[str, Any]]
    trials_total: int
    cache_hits: int
    computed: int
    #: Wall-clock proxy: the whole call for a single-host run, the
    #: slowest shard (max) for a merged one.
    elapsed: float
    workers: int
    #: Worker dispatch accounting: how many chunks the missing trials
    #: were grouped into, and the per-chunk trial cap used (0 = nothing
    #: was dispatched).
    batches: int = 0
    batch_size: int = 0
    #: Aggregate compute: the *sum* of shard elapsed times.  Equals
    #: ``elapsed`` for a single-shard run; for a K-shard merge the two
    #: answer different questions (how long you waited vs. how much
    #: work the fleet did).
    cpu_elapsed: float = 0.0
    #: Merged telemetry snapshot (see :mod:`repro.obs`); None when the
    #: producing run had telemetry disabled.
    telemetry: dict[str, Any] | None = None
    #: The kernels mode the run was dispatched with ("mixed" when
    #: merged shards disagree) — records are backend-independent, but
    #: mixed-backend merges should be auditable.
    kernels: str = "auto"

    def summary(self) -> str:
        dispatch = ""
        if self.batches:
            dispatch = f" in {self.batches} chunk(s) of <= {self.batch_size}"
        timing = f"{self.elapsed:.2f}s"
        if self.cpu_elapsed > self.elapsed + 1e-9:
            # Only a multi-shard merge splits the two: say both.
            timing = f"{self.elapsed:.2f}s wall ({self.cpu_elapsed:.2f}s compute)"
        return (
            f"{self.spec.name}: {self.trials_total} trials "
            f"({self.cache_hits} cached, {self.computed} computed{dispatch}) "
            f"on {self.workers} worker(s) in {timing}"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.spec.name,
            "solver": self.sweep.solver_name,
            "workers": self.workers,
            "trials_total": self.trials_total,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "batches": self.batches,
            "batch_size": self.batch_size,
            "kernels": self.kernels,
            "elapsed_s": round(self.elapsed, 4),
            "cpu_elapsed_s": round(self.cpu_elapsed, 4),
            "telemetry": self.telemetry,
            "points": [
                {
                    "n": p.n,
                    "trials": p.trials,
                    "rounds_mean": p.rounds_mean,
                    "rounds_max": p.rounds_max,
                    "rounds_min": p.rounds_min,
                }
                for p in self.sweep.points
            ],
        }


def _json_safe_extras(extras: dict) -> dict[str, Any]:
    return {
        key: value
        for key, value in extras.items()
        if isinstance(key, str) and isinstance(value, (bool, int, float, str))
    }


def execute_trial(trial: TrialSpec) -> dict[str, Any]:
    """Run one trial and return its JSON-safe record.

    The trial seed fully determines the instance (generator mixes it
    in) and the solver's randomness (the instance carries a
    ``NodeRng(seed)``), so this function is deterministic in any
    process.  This is the reference per-trial path: no memoization, no
    topology sharing — the equivalence suite holds the batched path to
    its records.
    """
    from repro.runtime.driver import dispatch_solver

    telemetry = get_telemetry()
    generator = resolve_ref(trial.generator)
    with telemetry.span("trial.build"):
        instance = generator(trial.n, trial.seed, **dict(trial.params))
    solver = resolve_ref(trial.solver)()
    with telemetry.span("trial.solve"):
        result = dispatch_solver(solver, instance)
    if trial.verifier:
        with telemetry.span("trial.verify"):
            resolve_ref(trial.verifier)(instance, result)
    telemetry.incr("trials.executed")
    return {
        "n": trial.n,
        "actual_n": instance.graph.num_nodes,
        "seed": trial.seed,
        "rounds": result.rounds,
        "extras": _json_safe_extras(result.extras),
    }


# -- per-worker amortization state --------------------------------------
#
# Module globals live once per worker process (and once in the parent
# for the serial path), so chunks of the same spec arriving at the same
# worker pay reference resolution, topology builds, and verifier
# skeleton preparation only once.

_RESOLVED: dict[str, Any] = {}
_PREPARED_CAP = 8
_PREPARED: "OrderedDict[tuple, Any]" = OrderedDict()
_WORKER_INSTANCES = None  # lazily constructed InstanceCache


def _resolved(ref: str) -> Any:
    """resolve_ref with a per-process memo (resolution is deterministic)."""
    obj = _RESOLVED.get(ref)
    if obj is None:
        obj = resolve_ref(ref)
        _RESOLVED[ref] = obj
    return obj


def _worker_instances():
    from repro.runtime.driver import InstanceCache

    global _WORKER_INSTANCES
    if _WORKER_INSTANCES is None:
        _WORKER_INSTANCES = InstanceCache(capacity=_PREPARED_CAP)
    return _WORKER_INSTANCES


def _registry_family(generator_ref: str):
    """The FamilyInfo behind an entrypoints generator ref, else None."""
    from repro.runtime import registry
    from repro.runtime.entrypoints import parse_entrypoint

    parsed = parse_entrypoint(generator_ref)
    if parsed is None or parsed[0] != "family":
        return None
    return registry.family(parsed[1])


def _prepared_checker(verifier_ref: str, core_key, instance):
    """A PreparedVerifier for (problem behind ref, shared core), or None.

    Only registry verifier refs over plain ne-LCL problems are
    preparable.  Caching policy (rebuild on new key or evicted core) is
    :func:`repro.runtime.driver.cached_prepared_verifier`, shared with
    ``TrialBatch``; this memo only adds the per-worker LRU bound, with
    hits refreshed so hot skeletons survive interleaved specs.
    """
    from repro.runtime import registry
    from repro.runtime.driver import cached_prepared_verifier
    from repro.runtime.entrypoints import parse_entrypoint

    parsed = parse_entrypoint(verifier_ref)
    if parsed is None or parsed[0] != "verifier":
        return None
    key = (verifier_ref,) + tuple(core_key)
    prepared = cached_prepared_verifier(
        _PREPARED, key, registry.problem(parsed[1]), instance
    )
    _PREPARED.move_to_end(key)
    if len(_PREPARED) > _PREPARED_CAP:
        _PREPARED.popitem(last=False)
    return prepared


def execute_trial_batch(
    trials: Sequence[TrialSpec], kernels: str = "auto"
) -> list[dict[str, Any]]:
    """Run a chunk of same-spec trials with shared per-batch setup.

    All trials must share their solver/generator/verifier references
    (they come from one spec).  Per-trial records are exactly what
    :func:`execute_trial` produces, including the verifier raising
    ``AssertionError`` on a rejected output — only the setup work is
    amortized, never the per-trial solve or check.  ``kernels`` travels
    in the chunk payload, NOT in the trial specs: records are
    backend-independent, so the cache key must not split on it.
    """
    from repro.runtime.driver import dispatch_solver

    if not trials:
        return []
    kernel_layer.ensure_mode(kernels)
    head = trials[0]
    for trial in trials:
        if (trial.solver, trial.generator, trial.verifier) != (
            head.solver, head.generator, head.verifier
        ):
            raise ValueError(
                "a trial batch must share solver/generator/verifier refs"
            )
    solver_factory = _resolved(head.solver)
    generator = _resolved(head.generator)
    checker = _resolved(head.verifier) if head.verifier else None
    family_info = _registry_family(head.generator)
    instances = _worker_instances()
    telemetry = get_telemetry()
    records = []
    for trial in trials:
        with telemetry.span("trial.build"):
            if family_info is not None:
                instance, core_key = instances.build(
                    family_info, trial.n, trial.seed, dict(trial.params)
                )
            else:
                instance = generator(trial.n, trial.seed, **dict(trial.params))
                core_key = None
        backend = kernel_layer.select_backend(kernels, instance.graph)
        telemetry.incr(f"kernels.{backend}_trials")
        with kernel_layer.active(backend):
            with telemetry.span("trial.solve"):
                result = dispatch_solver(solver_factory(), instance)
            if head.verifier:
                with telemetry.span("trial.verify"):
                    prepared = (
                        _prepared_checker(head.verifier, core_key, instance)
                        if core_key is not None
                        else None
                    )
                    if prepared is not None:
                        verdict = kernel_layer.prepared_verify(
                            prepared, result.outputs
                        )
                        assert verdict.ok, (
                            f"{prepared.problem.name}: {verdict.summary()}"
                        )
                    else:
                        assert checker is not None
                        checker(instance, result)
        telemetry.incr("trials.executed")
        records.append(
            {
                "n": trial.n,
                "actual_n": instance.graph.num_nodes,
                "seed": trial.seed,
                "rounds": result.rounds,
                "extras": _json_safe_extras(result.extras),
            }
        )
    return records


def _execute_batch_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Module-level pool target: chunk payload in, records + telemetry out.

    The worker's telemetry delta for this chunk piggybacks on the
    result — one extra dict per chunk, no new IPC round trips.  The
    delta snapshot (``reset=True``) drains everything this process
    accrued since its previous snapshot, so serial fallback (where
    "worker" and parent are the same process) partitions the exact same
    totals across the same chunk boundaries.

    A ``core`` entry, when present, names a shared-memory segment
    holding the chunk's frozen topology: the worker maps it (zero-copy,
    memoized per process) and seeds its instance cache, so dressing the
    chunk's trials touches the same physical bytes the parent exported
    instead of rebuilding — or unpickling — its own copy.
    """
    core = payload.get("core")
    if core is not None:
        from repro.kernels import shm as shm_cores

        graph = shm_cores.attach_graph(core["handle"])
        _worker_instances().adopt((core["family"], core["n"]), graph)
    records = execute_trial_batch(
        [TrialSpec.from_payload(entry) for entry in payload["trials"]],
        kernels=payload.get("kernels", "auto"),
    )
    return {
        "records": records,
        "telemetry": get_telemetry().snapshot(reset=True),
    }


def auto_batch_size(num_missing: int, workers: int, seeds_per_n: int) -> int:
    """The default chunk size when the caller does not pin one.

    Large enough that one chunk usually covers a full seed group (so
    topology reuse sees every seed of a size), small enough to leave
    ~4 chunks per worker for load balancing, and capped at
    ``MAX_BATCH_SIZE`` to bound pickle sizes.
    """
    if num_missing <= 0:
        return 1
    balance = -(-num_missing // (max(workers, 1) * 4))  # ceil division
    return max(1, min(MAX_BATCH_SIZE, max(balance, seeds_per_n)))


def _chunk_missing(
    trials: Sequence[TrialSpec], missing: Sequence[int], batch_size: int
) -> list[list[int]]:
    """Group missing trial indices into per-n chunks of <= batch_size.

    ``missing`` is in grid (n-major, seed-minor) order; a chunk never
    spans two sizes, so every chunk is a run of seeds over one frozen
    topology.
    """
    chunks: list[list[int]] = []
    current: list[int] = []
    current_n: int | None = None
    for i in missing:
        n = trials[i].n
        if current and (n != current_n or len(current) >= batch_size):
            chunks.append(current)
            current = []
        current_n = n
        current.append(i)
    if current:
        chunks.append(current)
    return chunks


def aggregate_points(
    ns: Sequence[int], seeds: Sequence[int], records: Sequence[dict[str, Any]]
) -> list[SweepPoint]:
    """Fold grid-ordered records into one SweepPoint per requested n.

    Mirrors the legacy ``run_sweep`` accounting exactly: the reported
    ``n`` is the actual size of the point's (last) instance, and the
    mean is taken over the seed grid in seed order — hence bit-stable.
    """
    if not seeds:
        raise ValueError("aggregation needs at least one seed per point")
    per_point = len(seeds)
    if len(records) != len(ns) * per_point:
        raise ValueError(
            f"record count {len(records)} does not cover the "
            f"{len(ns)}x{per_point} trial grid"
        )
    points = []
    for i, _n in enumerate(ns):
        chunk = records[i * per_point : (i + 1) * per_point]
        rounds = [record["rounds"] for record in chunk]
        points.append(
            SweepPoint(
                n=chunk[-1]["actual_n"],
                trials=len(rounds),
                rounds_mean=sum(rounds) / len(rounds),
                rounds_max=max(rounds),
                rounds_min=min(rounds),
            )
        )
    return points


def plan_experiment(
    spec: ExperimentSpec,
    num_shards: int = 1,
    batch_size: int | None = None,
    workers: int = 1,
) -> ShardPlan:
    """Cut a spec's full trial grid into a deterministic shard plan.

    The plan is a pure function of ``(spec, num_shards, batch_size)``:
    chunking always covers the FULL grid — never the cache-missing
    subset, which would differ per host — so re-planning anywhere, at
    any cache state, yields byte-identical shards.  ``workers`` only
    feeds the :func:`auto_batch_size` heuristic when ``batch_size`` is
    None; pin ``batch_size`` explicitly when plans must agree across
    hosts with different CPU counts.

    Invalid ``num_shards``/``batch_size`` values are rejected by
    ``ShardPlan.__post_init__`` — one copy of each guard.
    """
    trials = spec.trials()
    if batch_size is None:
        batch_size = auto_batch_size(len(trials), workers, len(spec.seeds))
    chunks = _chunk_missing(trials, range(len(trials)), batch_size)
    return ShardPlan(
        spec=spec,
        num_shards=num_shards,
        batch_size=batch_size,
        chunks=tuple(tuple(chunk) for chunk in chunks),
    )


@dataclass
class ShardReport:
    """One shard's slice of records plus its run accounting.

    ``records`` pairs each *global* trial index (into the spec's grid)
    with its JSON-safe record, in shard execution order — a shard only
    ever holds a slice of the grid, so aggregation waits for
    :func:`merge_shard_reports`.
    """

    manifest: ShardManifest
    records: list[tuple[int, dict[str, Any]]]
    trials_total: int
    cache_hits: int
    computed: int
    elapsed: float
    workers: int
    batches: int
    batch_size: int
    #: This shard's merged telemetry snapshot (parent deltas + one
    #: piggybacked delta per dispatched chunk); None with telemetry
    #: disabled.  Merges into the EngineReport exactly like records do.
    telemetry: dict[str, Any] | None = field(default=None)
    #: The kernels mode this shard was dispatched with.
    kernels: str = "auto"

    def summary(self) -> str:
        dispatch = ""
        if self.batches:
            dispatch = f" in {self.batches} chunk(s) of <= {self.batch_size}"
        return (
            f"{self.manifest.spec.name} "
            # 0-based, like --shard parsing and the status table.
            f"[shard {self.manifest.shard_index}/{self.manifest.num_shards}]: "
            f"{self.trials_total} trials ({self.cache_hits} cached, "
            f"{self.computed} computed{dispatch}) on {self.workers} worker(s) "
            f"in {self.elapsed:.2f}s"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "manifest": self.manifest.as_dict(),
            "records": [[i, record] for i, record in self.records],
            "trials_total": self.trials_total,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "elapsed_s": round(self.elapsed, 4),
            "workers": self.workers,
            "batches": self.batches,
            "batch_size": self.batch_size,
            "telemetry": self.telemetry,
            "kernels": self.kernels,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardReport":
        return cls(
            manifest=ShardManifest.from_dict(payload["manifest"]),
            records=[(int(i), record) for i, record in payload["records"]],
            trials_total=payload["trials_total"],
            cache_hits=payload["cache_hits"],
            computed=payload["computed"],
            elapsed=payload.get("elapsed_s", 0.0),
            workers=payload["workers"],
            batches=payload["batches"],
            batch_size=payload["batch_size"],
            telemetry=payload.get("telemetry"),
            kernels=payload.get("kernels", "auto"),
        )


# Cores below this many int64 words are not worth a shared segment:
# the pickle they replace is already smaller than a page or two, and
# segment setup/attach has a fixed syscall cost.  Override with the
# REPRO_SHM_CORES env var ("1" forces export even for small cores and
# serial runs, "0" disables export entirely).
_SHM_MIN_WORDS = 4096


def _shm_cores_enabled(workers: int) -> bool:
    env = os.environ.get("REPRO_SHM_CORES")
    if env is not None:
        return env.strip().lower() not in ("", "0", "false", "no", "off")
    return workers > 1


def _export_shared_cores(
    trials: Sequence[TrialSpec],
    chunks: Sequence[Sequence[int]],
    workers: int,
) -> dict[tuple[str, int], Any]:
    """Export each chunk's frozen core into shared memory, when worth it.

    Returns ``(family, n) -> CoreHandle`` for the cores that were
    exported (the caller owns them and must release in a ``finally``).
    Eligible chunks: a registered topology-reusable family, no extra
    params, a bare ``PortGraph`` core, and at least ``_SHM_MIN_WORDS``
    table words (env-overridable).  Anything else simply ships no
    handle and the workers build their own cores as before.
    """
    handles: dict[tuple[str, int], Any] = {}
    if not chunks or not _shm_cores_enabled(workers):
        return handles
    try:
        family_info = _registry_family(trials[chunks[0][0]].generator)
    except Exception:
        return handles
    if family_info is None or not family_info.reusable_topology:
        return handles
    from repro.kernels import shm as shm_cores
    from repro.local.graphs import PortGraph

    forced = os.environ.get("REPRO_SHM_CORES") is not None
    skipped: set[tuple[str, int]] = set()
    instances = _worker_instances()
    for chunk in chunks:
        head = trials[chunk[0]]
        if head.params:
            continue
        key = (family_info.name, head.n)
        if key in handles or key in skipped:
            continue
        core = instances.core(family_info, head.n)
        if not isinstance(core, PortGraph) or (
            shm_cores.core_words(core) < _SHM_MIN_WORDS and not forced
        ):
            skipped.add(key)
            continue
        handles[key] = shm_cores.export_graph(core)
    return handles


def run_shard(
    manifest: ShardManifest,
    workers: int = 1,
    cache: TrialCache | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
    kernels: str = "auto",
) -> ShardReport:
    """Execute one shard of a plan: this shard's chunks, nothing else.

    Cache-held trials replay without dispatch; the missing remainder
    re-packs into dispatch chunks that still never mix sizes or exceed
    the plan's ``batch_size`` — scattered misses after a partial merge
    travel a few full chunks, not many one-trial pickles.  ``on_record``
    streams the shard's records: cache hits first (in shard grid
    order), then computed chunks as they complete.  Give each shard its
    own cache root (``TrialCache(root, isolation=...)``) when several
    run concurrently on one filesystem, and merge the roots afterward.

    The report's ``telemetry`` block is assembled from delta snapshots:
    one per dispatched chunk (piggybacked on the chunk result by the
    worker that ran it) plus this process's own deltas around the
    lookup and store phases.  Deltas drain everything accrued since the
    previous snapshot, so telemetry recorded between two ``run_shard``
    calls in one process is attributed to the later shard's report —
    every increment lands in exactly one report, at any worker count.

    ``kernels`` rides in each dispatched chunk's payload (records stay
    bit-identical across backends, so cache keys ignore it).  For
    parallel runs over topology-reusable families, big frozen cores are
    additionally exported into ``multiprocessing.shared_memory`` and
    shipped as ``(segment, n, m)`` handles — every worker on the host
    maps the same table bytes; the segments are released when the
    dispatch ends.
    """
    kernel_layer.ensure_mode(kernels)
    telemetry = get_telemetry()
    snapshots: list[dict[str, Any]] = []
    start = time.perf_counter()
    spec = manifest.spec
    trials = spec.trials()
    indices = manifest.trial_indices()
    if any(not 0 <= i < len(trials) for i in indices):
        raise ValueError(
            f"manifest for {spec.name!r} indexes outside the "
            f"{len(trials)}-trial grid (stale plan?)"
        )
    got: dict[int, dict[str, Any]] = {}
    missing: set[int] = set()
    with telemetry.span("shard.lookup"):
        if cache is not None:
            for i in indices:
                record = cache.get(trials[i].key())
                if record is None:
                    missing.add(i)
                else:
                    got[i] = record
        else:
            missing = set(indices)
    if on_record is not None:
        for i in indices:
            if i in got:
                on_record(got[i])
    # Drain the lookup-phase delta now: in serial fallback the chunks
    # below execute in this same process, and their piggybacked deltas
    # must not scoop the parent-side counters accrued so far.
    snapshots.append(telemetry.snapshot(reset=True))

    # Re-pack the shard's missing trials with the same chunker the plan
    # used: on a cold run this reproduces the plan chunks exactly (they
    # are already maximal per size), and on a partially warm cache it
    # packs the remnants the way the pre-shard runner packed its
    # missing subset, instead of shipping many underfull chunks.
    missing_in_order = [
        i for chunk in manifest.chunks for i in chunk if i in missing
    ]
    chunks = _chunk_missing(trials, missing_in_order, manifest.batch_size)
    exported = _export_shared_cores(trials, chunks, workers)
    if chunks:
        payloads = []
        for chunk in chunks:
            head = trials[chunk[0]]
            payload: dict[str, Any] = {
                "trials": [trials[i].to_payload() for i in chunk],
                "kernels": kernels,
            }
            for (family, core_n), handle in exported.items():
                if core_n == head.n and not head.params:
                    payload["core"] = {
                        "family": family,
                        "n": core_n,
                        "handle": list(handle),
                    }
                    break
            payloads.append(payload)

        def deliver(chunk_pos: int, result: dict[str, Any]) -> None:
            chunk = chunks[chunk_pos]
            chunk_records = result["records"]
            if result.get("telemetry"):
                snapshots.append(result["telemetry"])
            if len(chunk_records) != len(chunk):
                raise ValueError(
                    f"chunk {chunk_pos} returned {len(chunk_records)} records "
                    f"for {len(chunk)} trials"
                )
            for i, record in zip(chunk, chunk_records):
                got[i] = record
                if on_record is not None:
                    on_record(record)
            # Store per chunk, not after the whole dispatch: a shard
            # killed mid-run (or a WorkerCrashed escaping below) keeps
            # every completed chunk durable, so a retry recomputes only
            # the chunks that were actually lost.
            if cache is not None:
                with telemetry.span("shard.store"):
                    cache.put_many((trials[i].key(), got[i]) for i in chunk)

        try:
            run_task_batches(
                _execute_batch_payload,
                payloads,
                workers=workers,
                pool_seed=zlib.crc32(spec.name.encode()),
                on_result=deliver,
            )
        finally:
            # The exporter owns the segments; workers only ever attach.
            # Releasing here (close + unlink) bounds segment lifetime to
            # the dispatch, even when a worker crash propagates out.
            from repro.kernels import shm as shm_cores

            for handle in exported.values():
                shm_cores.release_core(handle)
    # The store-phase delta (plus pool dispatch accounting).
    snapshots.append(telemetry.snapshot(reset=True))

    report = ShardReport(
        manifest=manifest,
        records=[(i, got[i]) for i in indices],
        trials_total=len(indices),
        cache_hits=len(indices) - len(missing),
        computed=len(missing),
        elapsed=time.perf_counter() - start,
        workers=workers,
        batches=len(chunks),
        batch_size=manifest.batch_size,
        telemetry=merge_snapshots(snapshots) if telemetry.enabled else None,
        kernels=kernels,
    )
    _LOG.info("%s", report.summary())
    return report


def merge_shard_reports(reports: Sequence[ShardReport]) -> EngineReport:
    """Reduce a plan's K shard reports into one :class:`EngineReport`.

    Accepts the reports in any order (shards may have run anywhere, in
    any interleaving) and rebuilds the grid-ordered record list and the
    aggregated ``Sweep`` bit-identically to a single-host
    :func:`run_experiment`.  Refuses reports from different plans
    (``plan_key`` mismatch), duplicate shards, and incomplete coverage
    — a merge must never silently aggregate half a grid.

    Time accounting keeps both meanings apart: ``elapsed`` is the
    slowest shard (the wall-clock proxy — shards running concurrently
    finish when the last one does), ``cpu_elapsed`` is the sum over
    shards (aggregate compute).  Shard telemetry snapshots reduce with
    the same idempotent key union the trial cache uses, so the merged
    ``telemetry`` block is independent of merge order.
    """
    if not reports:
        raise ValueError("merge needs at least one shard report")
    manifests = [report.manifest for report in reports]
    plan_keys = {manifest.plan_key for manifest in manifests}
    if len(plan_keys) != 1:
        raise ValueError(
            f"shard reports come from {len(plan_keys)} different plans; "
            "re-plan and re-run rather than merging across plans"
        )
    num_shards = manifests[0].num_shards
    seen = sorted(manifest.shard_index for manifest in manifests)
    if seen != list(range(num_shards)):
        raise ValueError(
            f"shard coverage incomplete or duplicated: have shards {seen}, "
            f"need exactly 0..{num_shards - 1}"
        )
    spec = manifests[0].spec
    total = len(spec.ns) * len(spec.seeds)
    records: list[dict[str, Any] | None] = [None] * total
    for report in reports:
        for i, record in report.records:
            if records[i] is not None:
                raise ValueError(f"trial index {i} appears in two shards")
            records[i] = record
    holes = [i for i, record in enumerate(records) if record is None]
    if holes:
        raise ValueError(
            f"merged reports leave {len(holes)} trial(s) uncovered "
            f"(first missing index: {holes[0]})"
        )
    sweep = Sweep(
        solver_name=spec.solver_display_name(),
        points=aggregate_points(spec.ns, spec.seeds, records),
    )
    shard_telemetry = [report.telemetry for report in reports]
    shard_kernels = {report.kernels for report in reports}
    return EngineReport(
        spec=spec,
        sweep=sweep,
        records=records,  # type: ignore[arg-type]
        trials_total=total,
        cache_hits=sum(report.cache_hits for report in reports),
        computed=sum(report.computed for report in reports),
        elapsed=max(report.elapsed for report in reports),
        workers=max(report.workers for report in reports),
        batches=sum(report.batches for report in reports),
        batch_size=manifests[0].batch_size if any(
            report.batches for report in reports
        ) else 0,
        cpu_elapsed=sum(report.elapsed for report in reports),
        telemetry=(
            merge_snapshots(shard_telemetry)
            if any(shard_telemetry)
            else None
        ),
        kernels=(
            shard_kernels.pop() if len(shard_kernels) == 1 else "mixed"
        ),
    )


def run_experiment(
    spec: ExperimentSpec,
    workers: int = 1,
    cache: TrialCache | None = None,
    batch_size: int | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
    kernels: str = "auto",
) -> EngineReport:
    """Run (or replay) one experiment spec and aggregate its sweep.

    This is the single-shard special case of the general pipeline —
    literally ``plan_experiment(num_shards=1)`` + :func:`run_shard` +
    :func:`merge_shard_reports`; there is no second code path.
    ``batch_size`` caps how many trials travel in one worker dispatch
    chunk (None = :func:`auto_batch_size`); chunks never span two grid
    sizes.  ``on_record`` streams results: it fires once per record —
    immediately (in grid order) for cache hits, then as each computed
    chunk completes, in chunk order at any worker count.
    """
    start = time.perf_counter()
    if batch_size is None and cache is not None:
        # Key the auto heuristic off the cache-missing subset, as the
        # pre-shard runner did: a warm cache's small remainder should
        # spread across the workers, not ride in one chunk sized for
        # the full grid.  Sharded plans cannot do this — their chunking
        # must be cache-independent to be host-independent — but the
        # single-shard case has no such constraint.
        missing = sum(
            1 for trial in spec.trials() if not cache.contains(trial.key())
        )
        if missing:
            batch_size = auto_batch_size(missing, workers, len(spec.seeds))
    plan = plan_experiment(
        spec, num_shards=1, batch_size=batch_size, workers=workers
    )
    shard = run_shard(
        plan.manifest(0),
        workers=workers,
        cache=cache,
        on_record=on_record,
        kernels=kernels,
    )
    report = merge_shard_reports([shard])
    # Whole-call elapsed, like the pre-shard runner: the warm-cache
    # pre-scan above does the shard-file loading, so the shard's own
    # timer alone would understate replay cost.  One host did all the
    # work, so the aggregate-compute figure is the same number.
    report.elapsed = time.perf_counter() - start
    report.cpu_elapsed = report.elapsed
    return report


_ITER_DONE = object()


class _IterAbandoned(Exception):
    """Raised inside the background run when the consumer went away."""


def iter_records(
    spec: ExperimentSpec,
    workers: int = 1,
    cache: TrialCache | None = None,
    batch_size: int | None = None,
) -> Iterator[dict[str, Any]]:
    """Generator view over ``on_record``: yield records as they complete.

    The experiment runs on a background thread feeding a queue, so the
    consumer iterates at its own pace while cache replay and chunk
    dispatch proceed underneath; ordering matches ``on_record`` (cache
    hits in grid order, then computed chunks in chunk order).  The
    generator's ``return`` value is the finished :class:`EngineReport`
    — reachable as ``StopIteration.value``, or by driving it with
    ``yield from`` — and a failed run re-raises the worker's exception
    at the consumption point.

    Closing the generator early (``break``, ``.close()``, garbage
    collection) cancels the run at its next record boundary instead of
    silently computing the rest of the grid; work not yet stored by
    then is discarded, exactly like interrupting ``run_experiment`` —
    a rerun replays whatever did reach the cache.
    """
    feed: "queue.Queue[Any]" = queue.Queue()
    box: dict[str, Any] = {}
    abandoned = threading.Event()

    def emit(record: dict[str, Any]) -> None:
        if abandoned.is_set():
            raise _IterAbandoned()
        feed.put(record)

    def drive() -> None:
        try:
            box["report"] = run_experiment(
                spec,
                workers=workers,
                cache=cache,
                batch_size=batch_size,
                on_record=emit,
            )
        except BaseException as err:  # re-raised on the consumer side
            box["error"] = err
        finally:
            feed.put(_ITER_DONE)

    thread = threading.Thread(
        target=drive, name=f"iter_records({spec.name})", daemon=True
    )
    thread.start()
    try:
        while True:
            item = feed.get()
            if item is _ITER_DONE:
                break
            yield item
    finally:
        # Await the worker even on early close: once close() returns,
        # nothing is still appending to the cache behind the caller's
        # back.  The queue is unbounded, so the worker can never block
        # on a put while we join it.
        abandoned.set()
        thread.join()
    if "error" in box and not isinstance(box["error"], _IterAbandoned):
        raise box["error"]
    return box.get("report")


def run_callable_sweep(
    solver: Any,
    instance_factory: Callable[[int, int], Any],
    ns: Sequence[int],
    seeds: Sequence[int] = (0, 1, 2),
    verify: Callable[[Any, Any], None] | None = None,
) -> Sweep:
    """The engine's in-process sweep over live callables.

    This is the execution path behind :func:`repro.analysis.sweep.run_sweep`:
    same trial grid, same aggregation, no pickling requirements — and
    therefore serial and uncached.
    """
    from repro.runtime.driver import dispatch_solver

    if not seeds:
        raise ValueError("run_sweep needs at least one seed (got an empty grid)")
    records: list[dict[str, Any]] = []
    for n in ns:
        for seed in seeds:
            instance = instance_factory(n, seed)
            result = dispatch_solver(solver, instance)
            if verify is not None:
                verify(instance, result)
            records.append(
                {
                    "n": n,
                    "actual_n": instance.graph.num_nodes,
                    "seed": seed,
                    "rounds": result.rounds,
                    "extras": {},
                }
            )
    return Sweep(
        solver_name=solver.name,
        points=aggregate_points(ns, seeds, records),
    )
