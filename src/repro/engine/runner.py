"""Spec -> pool -> cache orchestration.

``run_experiment`` turns an :class:`~repro.engine.spec.ExperimentSpec`
into aggregated :class:`~repro.analysis.sweep.SweepPoint` rows:

1. expand the spec into its trial grid (n-major, seed-minor order);
2. look every trial key up in the cache;
3. dispatch only the missing trials to the worker pool;
4. store the freshly computed records;
5. aggregate all records, in grid order, into a ``Sweep``.

Aggregation is a pure function of the ordered record list, and the
pool is order-preserving, so the same spec yields bit-identical sweeps
at any worker count, and a warm cache replays a sweep without running
a single solver.

``run_callable_sweep`` is the in-process path for callers holding live
solver objects and closures (the legacy ``run_sweep`` signature); it
shares the aggregation code but cannot be parallelized or cached,
since arbitrary callables have no content hash.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.analysis.sweep import Sweep, SweepPoint
from repro.engine.cache import TrialCache
from repro.engine.pool import run_tasks
from repro.engine.spec import ExperimentSpec, TrialSpec, resolve_ref

__all__ = ["EngineReport", "execute_trial", "run_callable_sweep", "run_experiment"]


@dataclass
class EngineReport:
    """One experiment's aggregated results plus run accounting."""

    spec: ExperimentSpec
    sweep: Sweep
    records: list[dict[str, Any]]
    trials_total: int
    cache_hits: int
    computed: int
    elapsed: float
    workers: int

    def summary(self) -> str:
        return (
            f"{self.spec.name}: {self.trials_total} trials "
            f"({self.cache_hits} cached, {self.computed} computed) "
            f"on {self.workers} worker(s) in {self.elapsed:.2f}s"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.spec.name,
            "solver": self.sweep.solver_name,
            "workers": self.workers,
            "trials_total": self.trials_total,
            "cache_hits": self.cache_hits,
            "computed": self.computed,
            "elapsed_s": round(self.elapsed, 4),
            "points": [
                {
                    "n": p.n,
                    "trials": p.trials,
                    "rounds_mean": p.rounds_mean,
                    "rounds_max": p.rounds_max,
                    "rounds_min": p.rounds_min,
                }
                for p in self.sweep.points
            ],
        }


def _json_safe_extras(extras: dict) -> dict[str, Any]:
    return {
        key: value
        for key, value in extras.items()
        if isinstance(key, str) and isinstance(value, (bool, int, float, str))
    }


def execute_trial(trial: TrialSpec) -> dict[str, Any]:
    """Run one trial and return its JSON-safe record.

    The trial seed fully determines the instance (generator mixes it
    in) and the solver's randomness (the instance carries a
    ``NodeRng(seed)``), so this function is deterministic in any
    process.
    """
    from repro.runtime.driver import dispatch_solver

    generator = resolve_ref(trial.generator)
    instance = generator(trial.n, trial.seed, **dict(trial.params))
    solver = resolve_ref(trial.solver)()
    result = dispatch_solver(solver, instance)
    if trial.verifier:
        resolve_ref(trial.verifier)(instance, result)
    return {
        "n": trial.n,
        "actual_n": instance.graph.num_nodes,
        "seed": trial.seed,
        "rounds": result.rounds,
        "extras": _json_safe_extras(result.extras),
    }


def _execute_payload(payload: dict[str, Any]) -> dict[str, Any]:
    """Module-level pool target: payload dict in, record dict out."""
    return execute_trial(TrialSpec.from_payload(payload))


def aggregate_points(
    ns: Sequence[int], seeds: Sequence[int], records: Sequence[dict[str, Any]]
) -> list[SweepPoint]:
    """Fold grid-ordered records into one SweepPoint per requested n.

    Mirrors the legacy ``run_sweep`` accounting exactly: the reported
    ``n`` is the actual size of the point's (last) instance, and the
    mean is taken over the seed grid in seed order — hence bit-stable.
    """
    if not seeds:
        raise ValueError("aggregation needs at least one seed per point")
    per_point = len(seeds)
    if len(records) != len(ns) * per_point:
        raise ValueError(
            f"record count {len(records)} does not cover the "
            f"{len(ns)}x{per_point} trial grid"
        )
    points = []
    for i, _n in enumerate(ns):
        chunk = records[i * per_point : (i + 1) * per_point]
        rounds = [record["rounds"] for record in chunk]
        points.append(
            SweepPoint(
                n=chunk[-1]["actual_n"],
                trials=len(rounds),
                rounds_mean=sum(rounds) / len(rounds),
                rounds_max=max(rounds),
                rounds_min=min(rounds),
            )
        )
    return points


def run_experiment(
    spec: ExperimentSpec,
    workers: int = 1,
    cache: TrialCache | None = None,
) -> EngineReport:
    """Run (or replay) one experiment spec and aggregate its sweep."""
    start = time.perf_counter()
    trials = spec.trials()
    keys = [trial.key() for trial in trials]
    records: list[dict[str, Any] | None] = [None] * len(trials)
    missing: list[int] = []
    if cache is not None:
        for i, key in enumerate(keys):
            records[i] = cache.get(key)
            if records[i] is None:
                missing.append(i)
    else:
        missing = list(range(len(trials)))
    cache_hits = len(trials) - len(missing)

    if missing:
        payloads = [trials[i].to_payload() for i in missing]
        computed = run_tasks(
            _execute_payload,
            payloads,
            workers=workers,
            pool_seed=zlib.crc32(spec.name.encode()),
        )
        for i, record in zip(missing, computed):
            records[i] = record
        if cache is not None:
            cache.put_many((keys[i], records[i]) for i in missing)

    solver_name = getattr(spec.make_solver(), "name", spec.solver)
    sweep = Sweep(
        solver_name=solver_name,
        points=aggregate_points(spec.ns, spec.seeds, records),
    )
    return EngineReport(
        spec=spec,
        sweep=sweep,
        records=records,  # type: ignore[arg-type]
        trials_total=len(trials),
        cache_hits=cache_hits,
        computed=len(missing),
        elapsed=time.perf_counter() - start,
        workers=workers,
    )


def run_callable_sweep(
    solver: Any,
    instance_factory: Callable[[int, int], Any],
    ns: Sequence[int],
    seeds: Sequence[int] = (0, 1, 2),
    verify: Callable[[Any, Any], None] | None = None,
) -> Sweep:
    """The engine's in-process sweep over live callables.

    This is the execution path behind :func:`repro.analysis.sweep.run_sweep`:
    same trial grid, same aggregation, no pickling requirements — and
    therefore serial and uncached.
    """
    from repro.runtime.driver import dispatch_solver

    if not seeds:
        raise ValueError("run_sweep needs at least one seed (got an empty grid)")
    records: list[dict[str, Any]] = []
    for n in ns:
        for seed in seeds:
            instance = instance_factory(n, seed)
            result = dispatch_solver(solver, instance)
            if verify is not None:
                verify(instance, result)
            records.append(
                {
                    "n": n,
                    "actual_n": instance.graph.num_nodes,
                    "seed": seed,
                    "rounds": result.rounds,
                    "extras": {},
                }
            )
    return Sweep(
        solver_name=solver.name,
        points=aggregate_points(ns, seeds, records),
    )
