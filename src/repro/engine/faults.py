"""Seeded fault injection: every failure mode a deterministic test case.

The fabric's failure handling is only trustworthy if each failure mode
can be reproduced on demand, at an exact point in an exact process.
This module provides that: a :class:`FaultSpec` names *what* breaks
(``kill``/``hang``/``delay``/``corrupt``, or a ``net-*`` transport
fault), *where* (a shard index), *when* (the k-th completed trial of
the shard run, the k-th record line of its export, or the k-th HTTP
request for the shard's export), and *on which attempts* — so a chaos
test states "shard 2 is SIGKILLed after its first trial, on attempt 1
only" and gets precisely that, every run.

Activation is explicit and external: specs arrive via the
``run-shard --inject`` flag or the ``REPRO_FAULTS`` environment
variable (how the fabric launcher forwards them to shard
subprocesses), and the launcher stamps each attempt's number into
``REPRO_FABRIC_ATTEMPT`` so faults default to firing on the first
attempt and letting retries succeed.  Without either, the injector is
inert and costs one integer increment per trial.

Process faults run inside the shard (:class:`FaultInjector`); network
faults run inside the export server (:class:`NetFaultInjector`, wired
into :class:`repro.engine.remote.ExportServer` via ``serve-exports
--inject``) and damage HTTP responses instead of processes.  For
``net-*`` specs the ``attempts`` option counts *record-file requests
for that shard* (the manifest is always served clean — it is the
integrity root the puller verifies everything else against), so
``attempts=1`` breaks the first transfer and lets the retry through,
and ``attempts=1+2+3`` models a burst.

Spec string format (``;``-separable for the env var)::

    kill@1              SIGKILL shard 1 after its 1st completed trial
    kill@1:at=3         ... after its 3rd
    hang@2:at=1         shard 2 stops making progress (sleeps) after trial 1
    delay@0:at=2,secs=0.5   shard 0 stalls 0.5s once, then continues
    corrupt@3:at=2      garble the 2nd record line of shard 3's written root
    kill@1:attempts=1+2     fire on attempts 1 AND 2 (default: 1 only)
    net-stall@2:secs=3      sleep 3s before shard 2's 1st export response
    net-drop@1              close the connection halfway through the body
    net-truncate@1          send a short body with a matching short length
    net-garble@0:attempts=1+2   flip body bytes (seeded) on requests 1 and 2
    net-5xx@3:attempts=1+2  respond 503 to shard 3's first two requests
"""

from __future__ import annotations

import logging
import os
import random
import re
import signal
import time
import zlib
from dataclasses import dataclass
from typing import Sequence

from repro.util.fsio import atomic_write_text

__all__ = [
    "ENV_ATTEMPT",
    "ENV_FAULTS",
    "FaultInjector",
    "FaultSpec",
    "NET_MODES",
    "NetFaultInjector",
    "corrupt_jsonl",
    "garble_bytes",
    "parse_fault_specs",
    "shard_from_path",
]

_LOG = logging.getLogger("repro.engine")

#: ``;``-joined spec strings; how the launcher arms shard subprocesses.
ENV_FAULTS = "REPRO_FAULTS"
#: 1-based attempt number the launcher stamps on each spawn.
ENV_ATTEMPT = "REPRO_FABRIC_ATTEMPT"

#: Faults that fire inside the shard process (:class:`FaultInjector`).
PROCESS_MODES = ("kill", "hang", "delay", "corrupt")
#: Faults that fire inside the export server (:class:`NetFaultInjector`).
NET_MODES = ("net-stall", "net-drop", "net-truncate", "net-garble", "net-5xx")
MODES = PROCESS_MODES + NET_MODES

# A hang must outlive any sane heartbeat timeout without wedging a
# run-away test forever if nothing kills the process.
_DEFAULT_HANG_SECONDS = 600.0


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: mode, target shard, trigger point."""

    mode: str
    shard: int
    #: 1-based: the k-th completed trial (kill/hang/delay) or the k-th
    #: record line of the shard's written cache root (corrupt).
    #: Unused by ``net-*`` modes, whose trigger is ``attempts``.
    at: int = 1
    #: Attempt numbers this fault fires on (1-based).  Defaulting to
    #: the first attempt is what makes retries recover: the injected
    #: failure happens once, the reassigned lease (or the puller's
    #: retry) runs clean.  For ``net-*`` modes this counts the shard's
    #: record-file requests at the server rather than fabric attempts.
    attempts: tuple[int, ...] = (1,)
    #: Sleep length for ``hang``/``delay``/``net-stall``.
    seconds: float = _DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r} (choose from {', '.join(MODES)})"
            )
        if self.shard < 0:
            raise ValueError(f"fault shard index must be >= 0, got {self.shard}")
        if self.at < 1:
            raise ValueError(f"fault trigger point 'at' is 1-based, got {self.at}")
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise ValueError(f"fault attempts are 1-based, got {self.attempts}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``mode@shard[:key=value,...]`` (see module docstring)."""
        head, _, options = text.strip().partition(":")
        mode, sep, shard_text = head.partition("@")
        if not sep or not shard_text:
            raise ValueError(
                f"fault spec {text!r} is not of the form 'mode@shard[:opts]'"
            )
        fields: dict[str, object] = {"mode": mode, "shard": int(shard_text)}
        for option in filter(None, options.split(",")):
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(f"fault option {option!r} is not 'key=value'")
            if key == "at":
                fields["at"] = int(value)
            elif key == "attempts":
                fields["attempts"] = tuple(int(a) for a in value.split("+"))
            elif key == "secs":
                fields["seconds"] = float(value)
            else:
                raise ValueError(
                    f"unknown fault option {key!r} (know: at, attempts, secs)"
                )
        return cls(**fields)  # type: ignore[arg-type]

    def spec_string(self) -> str:
        """The canonical string form; ``parse`` round-trips it."""
        options = [f"at={self.at}"]
        if self.attempts != (1,):
            options.append("attempts=" + "+".join(str(a) for a in self.attempts))
        if self.seconds != _DEFAULT_HANG_SECONDS:
            options.append(f"secs={self.seconds:g}")
        return f"{self.mode}@{self.shard}:" + ",".join(options)


def parse_fault_specs(text: str | None) -> list[FaultSpec]:
    """Parse a ``;``-joined spec list (the ``REPRO_FAULTS`` format)."""
    if not text:
        return []
    return [FaultSpec.parse(part) for part in text.split(";") if part.strip()]


def corrupt_jsonl(root: str, at: int) -> bool:
    """Garble the ``at``-th (1-based) record line under a cache root.

    Walks the root's ``*.jsonl`` files in sorted name order and
    overwrites the chosen line with same-length garbage — invalid JSON
    that keeps every other line's byte offsets intact, exactly the
    mid-file damage a torn disk write or truncated transfer leaves.
    Returns whether a line was corrupted (False: fewer than ``at``
    lines exist).
    """
    seen = 0
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return False
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        path = os.path.join(root, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            continue
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            seen += 1
            if seen == at:
                lines[i] = "x" * max(1, len(line.rstrip("\n"))) + "\n"
                atomic_write_text(path, "".join(lines))
                _LOG.warning(
                    "fault injection: corrupted record line %d in %s", at, path
                )
                return True
    return False


class FaultInjector:
    """The in-process half: counts trials, fires armed faults.

    Constructed once per shard run from whatever specs target *this*
    shard on *this* attempt; everything else filters out up front so
    the per-trial hook is an increment and a tuple scan.  ``kill``
    SIGKILLs the process (no cleanup, no atexit — the hard death the
    fabric must survive), ``hang`` stops progress without exiting (the
    heartbeat-timeout case), ``delay`` stalls once and continues (the
    slow-worker case), and ``corrupt`` damages the written cache root
    after the run (the torn-export case, applied via :meth:`on_exit`).
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        shard_index: int,
        attempt: int = 1,
    ):
        self.shard_index = shard_index
        self.attempt = attempt
        self._armed = tuple(
            spec
            for spec in specs
            if spec.mode in PROCESS_MODES
            and spec.shard == shard_index
            and attempt in spec.attempts
        )
        self._trials = 0
        self._fired: set[FaultSpec] = set()

    @property
    def active(self) -> bool:
        return bool(self._armed)

    def on_trial(self) -> None:
        """Hook after each completed trial (cache hits included)."""
        if not self._armed:
            return
        self._trials += 1
        for spec in self._armed:
            if spec.mode == "corrupt" or spec in self._fired:
                continue
            if self._trials != spec.at:
                continue
            self._fired.add(spec)
            _LOG.warning(
                "fault injection: %s on shard %d at trial %d (attempt %d)",
                spec.mode, self.shard_index, self._trials, self.attempt,
            )
            if spec.mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif spec.mode in ("hang", "delay"):
                time.sleep(spec.seconds)

    def on_exit(self, roots: Sequence[str]) -> None:
        """Hook after the shard run wrote its roots: apply corruption."""
        for spec in self._armed:
            if spec.mode != "corrupt" or spec in self._fired:
                continue
            self._fired.add(spec)
            for root in roots:
                if corrupt_jsonl(root, spec.at):
                    break


# -- network faults (server side) ---------------------------------------

_SHARD_PATH_RE = re.compile(r"(?:^|/)shard-(\d+)(?:/|$)")


def shard_from_path(path: str) -> int:
    """The shard index an export URL path addresses.

    ``serve-exports`` serves a directory of per-shard export dirs, so
    request paths look like ``shard-3/ab.jsonl`` and the ``shard-<i>``
    component names the target.  A flat root (one export served at
    ``/``) reads as shard 0, so single-source chaos specs still aim.
    """
    match = _SHARD_PATH_RE.search(path)
    return int(match.group(1)) if match else 0


def garble_bytes(data: bytes, rng: random.Random) -> bytes:
    """Flip a few bytes at seeded positions; always changes content.

    XOR with 0xFF can never map a byte to itself, so any non-empty
    input fails its sha256 afterward — the damage a flaky NIC or a
    corrupting middlebox inflicts, length-preserving so only the
    digest (never the byte count) can catch it.
    """
    if not data:
        return data
    out = bytearray(data)
    for _ in range(min(len(out), 8)):
        out[rng.randrange(len(out))] ^= 0xFF
    return bytes(out)


class NetFaultInjector:
    """The server-side half: decides per request how a response breaks.

    Armed from ``net-*`` specs (others filter out), consulted by the
    export server once per record-file request.  The request counter is
    per *shard*, so ``attempts=1`` breaks a shard's first transfer
    wherever it lands and ``attempts=1+2+3`` models a burst across its
    retries; the manifest is always served clean (it is the integrity
    root — corrupting it tests JSON parsing, not transfer recovery).
    Garbling is seeded per ``(seed, shard, request)``, so a failing
    chaos run replays byte-identically.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self._specs = tuple(spec for spec in specs if spec.mode in NET_MODES)
        self._seed = seed
        self._requests: dict[int, int] = {}

    @property
    def active(self) -> bool:
        return bool(self._specs)

    def on_request(self, path: str) -> FaultSpec | None:
        """Count a record-file request; the fault to apply, if any."""
        if not self._specs:
            return None
        shard = shard_from_path(path)
        count = self._requests.get(shard, 0) + 1
        self._requests[shard] = count
        for spec in self._specs:
            if spec.shard == shard and count in spec.attempts:
                _LOG.warning(
                    "net fault injection: %s on %s (shard %d, request %d)",
                    spec.mode, path, shard, count,
                )
                return spec
        return None

    def rng_for(self, path: str) -> random.Random:
        """A deterministic byte-garbling stream for the current request."""
        shard = shard_from_path(path)
        token = f"{self._seed}:{shard}:{self._requests.get(shard, 0)}"
        return random.Random(zlib.crc32(token.encode()))
