"""Shards: content-addressed slices of an experiment's chunk plan.

A shard is the unit of *distribution* the way PR 4's chunk is the unit
of *scheduling*: a :class:`ShardPlan` fixes — once, deterministically —
how one spec's full (n, seed) trial grid is cut into worker-dispatch
chunks and how those chunks are dealt onto K shards, and a
:class:`ShardManifest` is the JSON-serializable view one shard needs to
execute anywhere.  A remote host holding only ``(experiment name,
manifest)`` reconstructs the exact trials it owns; the content-addressed
trial cache then makes the merge step a plain key union.

Three properties carry the whole design:

* **determinism** — the plan is a pure function of ``(spec, num_shards,
  batch_size)``; it chunks the *full* grid, never the cache-missing
  subset, so re-planning on any host at any cache state yields
  byte-identical shards;
* **chunk alignment** — shards are built from whole chunks (chunk ``i``
  goes to shard ``i % K``), so a shard never splits a same-size seed
  run and the per-worker topology/verifier memos keep their hit rates;
* **content addressing** — :meth:`ShardPlan.key` hashes everything that
  determines the partition, so reports from different plans can never
  be merged by accident.

This module is pure data; the execution half (``plan_experiment``,
``run_shard``, ``merge_shard_reports``) lives in
:mod:`repro.engine.runner`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.engine.spec import CACHE_VERSION, ExperimentSpec

__all__ = [
    "PLAN_VERSION",
    "ShardManifest",
    "ShardPlan",
    "coverage_gaps",
    "dump_plan_file",
    "load_plan_file",
    "spec_from_payload",
    "spec_payload",
]

# Bump when the plan/manifest layout changes; a loader seeing a foreign
# version must refuse rather than misread shard boundaries.
PLAN_VERSION = 1


def spec_payload(spec: ExperimentSpec) -> dict[str, Any]:
    """A JSON-safe dict that round-trips an :class:`ExperimentSpec`."""
    return {
        "name": spec.name,
        "solver": spec.solver,
        "generator": spec.generator,
        "verifier": spec.verifier,
        "ns": list(spec.ns),
        "seeds": list(spec.seeds),
        "params": dict(spec.params) if spec.params else None,
    }


def spec_from_payload(payload: dict[str, Any]) -> ExperimentSpec:
    return ExperimentSpec(
        name=payload["name"],
        solver=payload["solver"],
        generator=payload["generator"],
        verifier=payload["verifier"],
        ns=tuple(payload["ns"]),
        seeds=tuple(payload["seeds"]),
        params=payload.get("params") or None,
    )


def _as_chunk_tuple(chunks: Sequence[Sequence[int]]) -> tuple[tuple[int, ...], ...]:
    return tuple(tuple(int(i) for i in chunk) for chunk in chunks)


@dataclass(frozen=True)
class ShardPlan:
    """One spec's full-grid chunking plus its K-way shard partition.

    ``chunks`` indexes into ``spec.trials()`` (grid order) and covers
    the whole grid; every chunk respects the runner's invariants (never
    spans two sizes, never exceeds ``batch_size``).  Shard ``s`` owns
    ``chunks[s::num_shards]`` — round-robin by chunk index, so the
    per-size chunk runs (which grow with ``n``) spread evenly instead
    of piling the largest sizes onto the last shard.
    """

    spec: ExperimentSpec
    num_shards: int
    batch_size: int
    chunks: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "chunks", _as_chunk_tuple(self.chunks))
        if self.num_shards < 1:
            raise ValueError(f"a plan needs >= 1 shard, got {self.num_shards}")
        if self.batch_size < 1:
            raise ValueError(f"batch size must be positive, got {self.batch_size}")
        covered = [i for chunk in self.chunks for i in chunk]
        total = len(self.spec.ns) * len(self.spec.seeds)
        if sorted(covered) != list(range(total)):
            # Also catches truncated plan files whose optional
            # plan_key went missing along with the tail chunks.
            raise ValueError(
                f"plan chunks must cover the full {total}-trial grid "
                f"exactly once (got {len(covered)} indices over "
                f"{self.spec.name!r})"
            )

    def trial_count(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    def key(self) -> str:
        """Content hash of everything that determines the partition.

        Memoized (plans are frozen): ``manifest()`` stamps it on every
        shard, and hashing re-serializes the whole chunk list.
        """
        cached = self.__dict__.get("_key")
        if cached is not None:
            return cached
        payload = json.dumps(
            {
                "v": PLAN_VERSION,
                "cache_v": CACHE_VERSION,
                "spec": spec_payload(self.spec),
                "num_shards": self.num_shards,
                "batch_size": self.batch_size,
                "chunks": [list(chunk) for chunk in self.chunks],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        key = hashlib.sha256(payload.encode()).hexdigest()
        object.__setattr__(self, "_key", key)
        return key

    def shard_chunks(self, shard_index: int) -> tuple[tuple[int, ...], ...]:
        """The chunks shard ``shard_index`` owns (round-robin deal)."""
        self._check_index(shard_index)
        return self.chunks[shard_index :: self.num_shards]

    def manifest(self, shard_index: int) -> "ShardManifest":
        """The serializable execution order for one shard."""
        self._check_index(shard_index)
        return ShardManifest(
            spec=self.spec,
            num_shards=self.num_shards,
            shard_index=shard_index,
            batch_size=self.batch_size,
            chunks=self.shard_chunks(shard_index),
            plan_key=self.key(),
        )

    def manifests(self) -> list["ShardManifest"]:
        return [self.manifest(i) for i in range(self.num_shards)]

    def _check_index(self, shard_index: int) -> None:
        if not 0 <= shard_index < self.num_shards:
            raise ValueError(
                f"shard index {shard_index} out of range for a "
                f"{self.num_shards}-shard plan"
            )

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": PLAN_VERSION,
            "spec": spec_payload(self.spec),
            "num_shards": self.num_shards,
            "batch_size": self.batch_size,
            "chunks": [list(chunk) for chunk in self.chunks],
            "plan_key": self.key(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardPlan":
        if payload.get("version") != PLAN_VERSION:
            raise ValueError(
                f"unsupported plan version {payload.get('version')!r} "
                f"(this build reads version {PLAN_VERSION})"
            )
        plan = cls(
            spec=spec_from_payload(payload["spec"]),
            num_shards=int(payload["num_shards"]),
            batch_size=int(payload["batch_size"]),
            chunks=_as_chunk_tuple(payload["chunks"]),
        )
        stored = payload.get("plan_key")
        if stored is not None and stored != plan.key():
            raise ValueError(
                f"plan for {plan.spec.name!r} fails its content hash "
                "(edited by hand, or written by an incompatible build?)"
            )
        return plan


@dataclass(frozen=True)
class ShardManifest:
    """Everything one shard needs to run anywhere: spec + chunk slice.

    ``chunks`` holds *global* trial indices into ``spec.trials()``, in
    plan order, so two hosts executing different shards of one plan
    agree on what every index means.  ``plan_key`` pins the manifest to
    the plan that produced it; the merge step refuses reports whose
    keys disagree.
    """

    spec: ExperimentSpec
    num_shards: int
    shard_index: int
    batch_size: int
    chunks: tuple[tuple[int, ...], ...]
    plan_key: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "chunks", _as_chunk_tuple(self.chunks))
        if not 0 <= self.shard_index < self.num_shards:
            raise ValueError(
                f"shard index {self.shard_index} out of range for a "
                f"{self.num_shards}-shard plan"
            )

    def trial_indices(self) -> list[int]:
        """This shard's global trial indices, in execution order."""
        return [i for chunk in self.chunks for i in chunk]

    def as_dict(self) -> dict[str, Any]:
        return {
            "version": PLAN_VERSION,
            "spec": spec_payload(self.spec),
            "num_shards": self.num_shards,
            "shard_index": self.shard_index,
            "batch_size": self.batch_size,
            "chunks": [list(chunk) for chunk in self.chunks],
            "plan_key": self.plan_key,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardManifest":
        if payload.get("version") != PLAN_VERSION:
            raise ValueError(
                f"unsupported manifest version {payload.get('version')!r} "
                f"(this build reads version {PLAN_VERSION})"
            )
        return cls(
            spec=spec_from_payload(payload["spec"]),
            num_shards=int(payload["num_shards"]),
            shard_index=int(payload["shard_index"]),
            batch_size=int(payload["batch_size"]),
            chunks=_as_chunk_tuple(payload["chunks"]),
            plan_key=payload["plan_key"],
        )

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardManifest":
        return cls.from_dict(json.loads(text))


def coverage_gaps(
    plans: Sequence[ShardPlan], contains: Callable[[str], bool]
) -> tuple[int, int, list[dict[str, Any]]]:
    """Probe a plan's full trial grid against a presence predicate.

    Returns ``(trials_total, trials_missing, spec_entries)`` where each
    entry names a spec with holes and its exact missing grid indices —
    the common core of every gap manifest (the fabric's after failed
    shards, the merge's after failed pulls).  ``contains`` is typically
    ``TrialCache.contains``; because trial keys are content hashes, the
    probe is exact regardless of which host computed what.
    """
    spec_entries: list[dict[str, Any]] = []
    trials_total = 0
    trials_missing = 0
    for plan in plans:
        trials = plan.spec.trials()
        trials_total += len(trials)
        missing = [
            i for i, trial in enumerate(trials) if not contains(trial.key())
        ]
        trials_missing += len(missing)
        if missing:
            spec_entries.append(
                {
                    "spec": plan.spec.name,
                    "plan_key": plan.key(),
                    "trials_total": len(trials),
                    "missing_indices": missing,
                }
            )
    return trials_total, trials_missing, spec_entries


# -- plan files ---------------------------------------------------------
#
# One plan file covers one *experiment* (possibly many specs — the
# landscape is 62 of them); every spec is planned with the same shard
# count, and shard i of the file means shard i of every spec.


def dump_plan_file(experiment: str, plans: Sequence[ShardPlan]) -> dict[str, Any]:
    """The JSON document ``python -m repro.engine plan`` writes."""
    if not plans:
        raise ValueError("a plan file needs at least one spec plan")
    shard_counts = {plan.num_shards for plan in plans}
    if len(shard_counts) != 1:
        raise ValueError(f"mixed shard counts in one plan file: {shard_counts}")
    return {
        "version": PLAN_VERSION,
        "experiment": experiment,
        "num_shards": plans[0].num_shards,
        "trials_total": sum(plan.trial_count() for plan in plans),
        "specs": [plan.as_dict() for plan in plans],
    }


def load_plan_file(payload: dict[str, Any]) -> tuple[str, list[ShardPlan]]:
    """Invert :func:`dump_plan_file`, revalidating every spec plan."""
    if payload.get("version") != PLAN_VERSION:
        raise ValueError(
            f"unsupported plan-file version {payload.get('version')!r} "
            f"(this build reads version {PLAN_VERSION})"
        )
    plans = [ShardPlan.from_dict(entry) for entry in payload["specs"]]
    if not plans:
        raise ValueError("plan file contains no spec plans")
    declared = payload.get("num_shards")
    if declared is not None and any(p.num_shards != declared for p in plans):
        raise ValueError("plan file's num_shards disagrees with its specs")
    return payload.get("experiment", ""), plans
