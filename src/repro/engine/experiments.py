"""Named experiments, generated from the runtime registry.

Every spec here names its solver, generator, and verifier through
:mod:`repro.runtime.entrypoints` references — importable in any worker
process, content-hashable by the trial cache, and resolved against the
registry catalogs rather than hand-wired factories:

* ``sinkless``  — the Figure 1 separation dot: deterministic
  Theta(log n) vs randomized Theta(loglog n) sinkless orientation on
  random cubic instances;
* ``padding``   — Theorem 1 / Lemma 4: the padded solver's rounds
  across gadget heights (the grid values are heights, not node
  counts; the reported n is the padded instance size);
* ``gadget``    — Lemma 10: the prover V's O(log n) radius on valid
  gadgets of growing height;
* ``landscape`` — the *full* sound (problem x solver x family)
  cross-product of the registry: one spec per triple whose family
  grid fits the size budget.  Registering a new problem, solver, or
  family widens this experiment automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.spec import ExperimentSpec, grid
from repro.runtime import registry
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref
from repro.runtime.registry import FamilyInfo, ProblemInfo, SolverInfo

__all__ = ["EXPERIMENTS", "Experiment", "build_experiment", "paper_placement"]


def paper_placement(spec_name: str) -> tuple[str, str]:
    """The paper's (det, rand) placement for a spec, from the registry.

    Registry-generated spec names embed the problem as their second
    path segment (``<experiment>/<problem>/<solver>@<family>``); the
    placement is the registered problem's.  Unknown shapes get ("-", "-").
    """
    parts = spec_name.split("/")
    if len(parts) < 2:
        return ("-", "-")
    problems = registry.problems()
    info = problems.get(parts[1])
    if info is None:
        return ("-", "-")
    return (info.paper_det, info.paper_rand)


def _registry_spec(
    experiment: str,
    problem: ProblemInfo,
    solver: SolverInfo,
    family: FamilyInfo,
    ns: tuple[int, ...],
    seeds: tuple[int, ...],
) -> ExperimentSpec:
    """One spec for one sound triple, entirely by registry reference."""
    return ExperimentSpec(
        name=f"{experiment}/{problem.name}/{solver.name}@{family.name}",
        solver=solver_ref(solver.name),
        generator=family_ref(family.name),
        verifier=verifier_ref(problem.name),
        ns=ns,
        seeds=seeds,
    )


def _named_triple(
    solver_name: str, family_name: str
) -> tuple[ProblemInfo, SolverInfo, FamilyInfo]:
    solver = registry.solver(solver_name)
    return registry.problem(solver.problem), solver, registry.family(family_name)


# -- the named experiments ---------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """A named group of specs plus how to scale it to a size budget."""

    name: str
    description: str
    build: Callable[[int, tuple[int, ...]], list[ExperimentSpec]]
    default_max_n: int
    default_seed_count: int


def _build_sinkless(max_n: int, seeds: tuple[int, ...]) -> list[ExperimentSpec]:
    ns = grid(64, max_n)
    specs = []
    for solver_name in ("sinkless-det", "sinkless-rand"):
        problem, solver, family = _named_triple(solver_name, "cubic")
        specs.append(
            _registry_spec("sinkless", problem, solver, family, ns, seeds)
        )
    return specs


def _build_padding(max_n: int, seeds: tuple[int, ...]) -> list[ExperimentSpec]:
    problem, solver, family = _named_triple("padded-sinkless-det", "padded-sinkless")
    heights = family.sweep_sizes(max_n)
    if not heights:
        raise ValueError(
            "padding experiment needs --max-n >= 128 (the smallest "
            "height-2 padded instance has ~128 nodes)"
        )
    return [_registry_spec("padding", problem, solver, family, heights, seeds)]


def _build_gadget(max_n: int, seeds: tuple[int, ...]) -> list[ExperimentSpec]:
    del seeds  # the prover is deterministic; one seed suffices
    problem, solver, family = _named_triple("gadget-prover", "gadget")
    heights = family.sweep_sizes(max_n)
    if not heights:
        raise ValueError(
            "gadget experiment needs --max-n >= 16 (the smallest "
            "height-3 gadget has ~22 nodes)"
        )
    return [_registry_spec("gadget", problem, solver, family, heights, (0,))]


def _build_landscape(max_n: int, seeds: tuple[int, ...]) -> list[ExperimentSpec]:
    """The full sound cross-product of the registry, one spec per triple."""
    specs = []
    for problem, solver, family in registry.sound_triples():
        ns = family.sweep_sizes(max_n)
        if not ns:
            continue  # family's smallest member exceeds the budget
        spec_seeds = seeds if solver.randomized else seeds[:1]
        specs.append(
            _registry_spec("landscape", problem, solver, family, ns, spec_seeds)
        )
    if not specs:
        raise ValueError(
            "landscape experiment needs --max-n >= 64 (the smallest "
            "grid point of every node-graded family)"
        )
    return specs


EXPERIMENTS: dict[str, Experiment] = {
    "sinkless": Experiment(
        "sinkless",
        "deterministic vs randomized sinkless orientation (Figure 1 dot)",
        _build_sinkless,
        default_max_n=4096,
        default_seed_count=2,
    ),
    "padding": Experiment(
        "padding",
        "Theorem 1 multiplicative padding overhead across gadget heights",
        _build_padding,
        default_max_n=4096,
        default_seed_count=1,
    ),
    "gadget": Experiment(
        "gadget",
        "Lemma 10 prover V radius on valid gadgets",
        _build_gadget,
        default_max_n=2048,
        default_seed_count=1,
    ),
    "landscape": Experiment(
        "landscape",
        "the registry's full sound problem x solver x family cross-product",
        _build_landscape,
        default_max_n=1024,
        default_seed_count=2,
    ),
}


def build_experiment(
    name: str, max_n: int | None = None, seed_count: int | None = None
) -> list[ExperimentSpec]:
    """Instantiate a named experiment's specs at the requested scale."""
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {name!r} (known: {known})") from None
    if seed_count is None:
        seed_count = experiment.default_seed_count
    if seed_count < 1:
        raise ValueError(f"need at least one seed, got --seeds {seed_count}")
    if max_n is None:
        max_n = experiment.default_max_n
    if max_n < 1:
        raise ValueError(f"--max-n must be positive, got {max_n}")
    return experiment.build(max_n, tuple(range(seed_count)))


# -- legacy importable aliases -----------------------------------------
# Pre-registry spec references ("repro.engine.experiments:<attr>") are
# baked into existing benches and caches; keep them resolvable.


def cycle_instance(n: int, seed: int):
    from repro.generators.classic import cycle_instance as build

    return build(n, seed)


def padded_sinkless_instance(height: int, seed: int):
    from repro.core.family import padded_sinkless_instance as build

    return build(height, seed)


def padded_sinkless_solver():
    from repro.core.family import padded_sinkless_solver as make

    return make()


def verify_sinkless(instance, result) -> None:
    from repro.runtime.driver import verifier_for

    verifier_for(registry.problem("sinkless-orientation"))(instance, result)


def verify_padded_sinkless(instance, result) -> None:
    from repro.runtime.driver import verifier_for

    verifier_for(registry.problem("padded-sinkless"))(instance, result)
