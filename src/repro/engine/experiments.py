"""Named experiments: the paper's headline measurements as specs.

Everything in this module is importable by reference
(``"repro.engine.experiments:<attr>"``), which is what lets worker
processes rebuild solvers, generators and verifiers from a spec
without pickling live objects:

* ``sinkless``  — the Figure 1 separation dot: deterministic
  Theta(log n) vs randomized Theta(loglog n) sinkless orientation on
  random cubic instances;
* ``padding``   — Theorem 1 / Lemma 4: the padded solver's rounds
  across gadget heights (the grid values are heights, not node
  counts; the reported n is the padded instance size);
* ``gadget``    — Lemma 10: the prover V's O(log n) radius on valid
  gadgets of growing height;
* ``landscape`` — one spec per implemented LCL row of Figure 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.engine.spec import ExperimentSpec, grid

__all__ = ["EXPERIMENTS", "Experiment", "build_experiment"]

_PAPER_PLACEMENT = {
    "landscape/trivial": ("O(1)", "O(1)"),
    "landscape/3-coloring-cycles": ("Theta(log* n)", "Theta(log* n)"),
    "landscape/mis": ("Theta(log* n)", "Theta(log* n)"),
    "landscape/sinkless-det": ("Theta(log n)", "-"),
    "landscape/sinkless-rand": ("-", "Theta(loglog n)"),
}


def paper_placement(spec_name: str) -> tuple[str, str]:
    return _PAPER_PLACEMENT.get(spec_name, ("-", "-"))


# -- generators --------------------------------------------------------


def cycle_instance(n: int, seed: int):
    """A cycle with random identifiers (trivial / coloring rows)."""
    from repro.generators import cycle
    from repro.local import Instance
    from repro.local.identifiers import random_ids
    from repro.util.rng import NodeRng

    rng = random.Random(seed * 7919 + n)
    return Instance(cycle(n), random_ids(n, rng), None, None, NodeRng(seed))


def padded_sinkless_instance(height: int, seed: int):
    """A 16-node cubic base padded with gadgets of the given height."""
    from repro.core.padding import pad_graph
    from repro.gadgets import build_gadget
    from repro.generators import random_regular
    from repro.local import Instance
    from repro.local.identifiers import sequential_ids
    from repro.util.rng import NodeRng

    base = random_regular(16, 3, random.Random(2 + seed))
    gadgets = [build_gadget(3, height) for _ in base.nodes()]
    padded = pad_graph(base, gadgets)
    return Instance(
        padded.graph,
        sequential_ids(padded.graph.num_nodes),
        padded.inputs,
        None,
        NodeRng(seed),
    )


def gadget_instance(height: int, seed: int):
    """One valid gadget of the family, as a prover instance."""
    del seed  # the gadget family is deterministic per height
    from repro.gadgets import LogGadgetFamily
    from repro.local import Instance
    from repro.local.identifiers import sequential_ids

    built = LogGadgetFamily(3).member_with_height(height)
    return Instance(
        built.graph, sequential_ids(built.graph.num_nodes), built.inputs
    )


# -- solver factories --------------------------------------------------


def padded_sinkless_solver():
    from repro.core import PaddedSolver
    from repro.problems import DeterministicSinklessSolver

    return PaddedSolver(_padded_problem(), DeterministicSinklessSolver())


def _padded_problem():
    from repro.core import PaddedProblem
    from repro.gadgets import LogGadgetFamily
    from repro.problems import SinklessOrientation

    return PaddedProblem(SinklessOrientation().problem(), LogGadgetFamily(3))


class GadgetProverSolver:
    """Adapter: the distributed prover V as a ``LocalAlgorithm``."""

    name = "gadget-prover-V"
    randomized = False

    def solve(self, instance):
        from repro.gadgets import GadgetScope, run_prover
        from repro.local.algorithm import RunResult

        scope = GadgetScope(instance.graph, instance.inputs)
        component = sorted(instance.graph.nodes())
        result = run_prover(scope, component, 3, instance.n_hint)
        return RunResult(
            outputs=result.outputs,
            node_radius=[result.node_radius[v] for v in component],
            extras={"all_ok": result.all_ok(), "is_valid": result.is_valid},
        )


# -- verifiers ---------------------------------------------------------


def verify_sinkless(instance, result) -> None:
    from repro.lcl import Labeling, verify
    from repro.problems import SinklessOrientation

    problem = SinklessOrientation().problem()
    verdict = verify(
        problem, instance.graph, Labeling(instance.graph), result.outputs
    )
    assert verdict.ok, verdict.summary()


def verify_cycle_coloring(instance, result) -> None:
    from repro.lcl import Labeling, verify
    from repro.problems import ThreeColoringCycles

    problem = ThreeColoringCycles().problem()
    verdict = verify(
        problem, instance.graph, Labeling(instance.graph), result.outputs
    )
    assert verdict.ok, verdict.summary()


def verify_mis(instance, result) -> None:
    from repro.lcl import Labeling, verify
    from repro.problems import MaximalIndependentSet

    problem = MaximalIndependentSet().problem()
    verdict = verify(
        problem, instance.graph, Labeling(instance.graph), result.outputs
    )
    assert verdict.ok, verdict.summary()


def verify_padded_sinkless(instance, result) -> None:
    verdict = _padded_problem().verify(
        instance.graph, instance.inputs, result.outputs
    )
    assert verdict.ok, verdict.summary()


def verify_prover_ok(instance, result) -> None:
    assert result.extras["all_ok"], "prover flagged a valid gadget"


# -- the registry ------------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """A named group of specs plus how to scale it to a size budget."""

    name: str
    description: str
    build: Callable[[int, tuple[int, ...]], list[ExperimentSpec]]
    default_max_n: int
    default_seed_count: int


def _build_sinkless(max_n: int, seeds: tuple[int, ...]) -> list[ExperimentSpec]:
    ns = grid(64, max_n)
    return [
        ExperimentSpec(
            name="sinkless/det",
            solver="repro.problems:DeterministicSinklessSolver",
            generator="repro.generators.hard:cubic_instance",
            verifier="repro.engine.experiments:verify_sinkless",
            ns=ns,
            seeds=seeds,
        ),
        ExperimentSpec(
            name="sinkless/rand",
            solver="repro.problems:RandomizedSinklessSolver",
            generator="repro.generators.hard:cubic_instance",
            verifier="repro.engine.experiments:verify_sinkless",
            ns=ns,
            seeds=seeds,
        ),
    ]


def _build_padding(max_n: int, seeds: tuple[int, ...]) -> list[ExperimentSpec]:
    # The grid values are gadget heights; padded sizes grow as ~2^h.
    heights = tuple(h for h in range(2, 8) if 16 * (2 ** (h + 1)) <= max_n)
    if not heights:
        raise ValueError(
            "padding experiment needs --max-n >= 128 (the smallest "
            "height-2 padded instance has ~128 nodes)"
        )
    return [
        ExperimentSpec(
            name="padding/multiplicative-overhead",
            solver="repro.engine.experiments:padded_sinkless_solver",
            generator="repro.engine.experiments:padded_sinkless_instance",
            verifier="repro.engine.experiments:verify_padded_sinkless",
            ns=heights,
            seeds=seeds,
        )
    ]


def _build_gadget(max_n: int, seeds: tuple[int, ...]) -> list[ExperimentSpec]:
    del seeds  # the prover is deterministic; one seed suffices
    heights = tuple(h for h in range(3, 11) if 2 ** (h + 1) <= max_n)
    if not heights:
        raise ValueError(
            "gadget experiment needs --max-n >= 16 (the smallest "
            "height-3 gadget has ~22 nodes)"
        )
    return [
        ExperimentSpec(
            name="gadget/prover-radius",
            solver="repro.engine.experiments:GadgetProverSolver",
            generator="repro.engine.experiments:gadget_instance",
            verifier="repro.engine.experiments:verify_prover_ok",
            ns=heights,
            seeds=(0,),
        )
    ]


def _build_landscape(max_n: int, seeds: tuple[int, ...]) -> list[ExperimentSpec]:
    ns = grid(64, max_n)
    cycle_gen = "repro.engine.experiments:cycle_instance"
    cubic_gen = "repro.generators.hard:cubic_instance"
    return [
        ExperimentSpec(
            name="landscape/trivial",
            solver="repro.problems:ConstantSolver",
            generator=cycle_gen,
            ns=ns,
            seeds=(0,),
        ),
        ExperimentSpec(
            name="landscape/3-coloring-cycles",
            solver="repro.problems:CycleColoringSolver",
            generator=cycle_gen,
            verifier="repro.engine.experiments:verify_cycle_coloring",
            ns=ns,
            seeds=seeds,
        ),
        ExperimentSpec(
            name="landscape/mis",
            solver="repro.problems:ColorClassMisSolver",
            generator=cubic_gen,
            verifier="repro.engine.experiments:verify_mis",
            ns=ns,
            seeds=(0,),
        ),
        ExperimentSpec(
            name="landscape/sinkless-det",
            solver="repro.problems:DeterministicSinklessSolver",
            generator=cubic_gen,
            verifier="repro.engine.experiments:verify_sinkless",
            ns=ns,
            seeds=seeds,
        ),
        ExperimentSpec(
            name="landscape/sinkless-rand",
            solver="repro.problems:RandomizedSinklessSolver",
            generator=cubic_gen,
            verifier="repro.engine.experiments:verify_sinkless",
            ns=ns,
            seeds=seeds,
        ),
    ]


EXPERIMENTS: dict[str, Experiment] = {
    "sinkless": Experiment(
        "sinkless",
        "deterministic vs randomized sinkless orientation (Figure 1 dot)",
        _build_sinkless,
        default_max_n=4096,
        default_seed_count=2,
    ),
    "padding": Experiment(
        "padding",
        "Theorem 1 multiplicative padding overhead across gadget heights",
        _build_padding,
        default_max_n=4096,
        default_seed_count=1,
    ),
    "gadget": Experiment(
        "gadget",
        "Lemma 10 prover V radius on valid gadgets",
        _build_gadget,
        default_max_n=2048,
        default_seed_count=1,
    ),
    "landscape": Experiment(
        "landscape",
        "Figure 1 landscape rows (one spec per LCL)",
        _build_landscape,
        default_max_n=1024,
        default_seed_count=2,
    ),
}


def build_experiment(
    name: str, max_n: int | None = None, seed_count: int | None = None
) -> list[ExperimentSpec]:
    """Instantiate a named experiment's specs at the requested scale."""
    try:
        experiment = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {name!r} (known: {known})") from None
    if seed_count is None:
        seed_count = experiment.default_seed_count
    if seed_count < 1:
        raise ValueError(f"need at least one seed, got --seeds {seed_count}")
    if max_n is None:
        max_n = experiment.default_max_n
    if max_n < 1:
        raise ValueError(f"--max-n must be positive, got {max_n}")
    return experiment.build(max_n, tuple(range(seed_count)))
