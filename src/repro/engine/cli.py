"""``python -m repro.engine`` — run a named experiment from the shell.

Examples::

    python -m repro.engine --experiment sinkless --workers 4
    python -m repro.engine --experiment landscape --max-n 512 --json out.json
    python -m repro.engine --experiment sinkless --workers 2 --max-n 64

Prints one table per spec (the same renderer the benchmark suite
feeds into ``benchmarks/conftest.report``) plus cache/parallelism
accounting, and optionally writes the full JSON report.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.engine.cache import DEFAULT_CACHE_DIR, TrialCache
from repro.engine.experiments import EXPERIMENTS, build_experiment, paper_placement
from repro.engine.pool import default_workers
from repro.engine.runner import EngineReport, run_experiment

__all__ = ["main", "format_report"]


def format_report(reports: Sequence[EngineReport]) -> str:
    """Render engine reports as benchmark-style tables.

    The return value is plain text suitable for
    ``benchmarks.conftest.report`` — one table per spec with the
    measured growth fit in the title, followed by run accounting.
    """
    from repro.analysis import best_fit, render_table

    blocks = []
    for rep in reports:
        sweep = rep.sweep
        fit_note = ""
        if len(sweep.points) >= 3:
            fit = best_fit(sweep.ns(), sweep.means())
            fit_note = f"\n    measured fit: {fit}"
        paper_det, paper_rand = paper_placement(rep.spec.name)
        paper_note = ""
        if (paper_det, paper_rand) != ("-", "-"):
            paper_note = f"\n    paper: det {paper_det} / rand {paper_rand}"
        table = render_table(
            ["n", "trials", "rounds mean", "rounds max", "rounds min"],
            [
                [p.n, p.trials, round(p.rounds_mean, 2), p.rounds_max, p.rounds_min]
                for p in sweep.points
            ],
            title=f"{rep.spec.name} [{sweep.solver_name}]{fit_note}{paper_note}",
        )
        blocks.append(table + "\n" + rep.summary())
    return "\n\n".join(blocks)


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="parallel, cached experiment runs for the reproduction",
    )
    parser.add_argument(
        "--experiment",
        required=True,
        choices=sorted(EXPERIMENTS),
        help="named experiment to run",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="worker processes (1 = serial; default: CPU count capped at 8)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="upper bound of the size grid (experiment default otherwise)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="COUNT",
        help="number of seeds per point (experiment default otherwise)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"trial cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every trial; do not read or write the cache",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the report as JSON to PATH ('-' for stdout)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    try:
        specs = build_experiment(args.experiment, args.max_n, args.seeds)
        cache = None if args.no_cache else TrialCache(args.cache_dir)
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    reports = [
        run_experiment(spec, workers=args.workers, cache=cache) for spec in specs
    ]
    print(format_report(reports))
    total = sum(rep.trials_total for rep in reports)
    hits = sum(rep.cache_hits for rep in reports)
    elapsed = sum(rep.elapsed for rep in reports)
    print(
        f"\ntotal: {total} trials, {hits} cache hits, "
        f"{args.workers} worker(s), {elapsed:.2f}s"
    )
    if args.json:
        payload = json.dumps(
            {
                "experiment": args.experiment,
                "workers": args.workers,
                "cache": None if cache is None else args.cache_dir,
                "reports": [rep.as_dict() for rep in reports],
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
