"""``python -m repro.engine`` — run, list, and describe experiments.

Subcommands::

    python -m repro.engine run --experiment sinkless --workers 4
    python -m repro.engine list
    python -m repro.engine describe mis-luby
    python -m repro.engine describe landscape

The bare legacy form (``python -m repro.engine --experiment ...``) is
still accepted and means ``run``.  ``run`` prints one table per spec
(the same renderer the benchmark suite feeds into
``benchmarks/conftest.report``) plus cache/parallelism accounting, and
optionally writes the full JSON report; ``list``/``describe`` read the
runtime registry's catalogs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.engine.cache import DEFAULT_CACHE_DIR, TrialCache
from repro.engine.experiments import EXPERIMENTS, build_experiment, paper_placement
from repro.engine.pool import default_workers
from repro.engine.runner import EngineReport, run_experiment
from repro.runtime import registry

__all__ = ["main", "format_report", "format_catalog"]


def format_report(reports: Sequence[EngineReport]) -> str:
    """Render engine reports as benchmark-style tables.

    The return value is plain text suitable for
    ``benchmarks.conftest.report`` — one table per spec with the
    measured growth fit in the title, followed by run accounting.
    """
    from repro.analysis import best_fit, render_table

    blocks = []
    for rep in reports:
        sweep = rep.sweep
        fit_note = ""
        if len(sweep.points) >= 3:
            fit = best_fit(sweep.ns(), sweep.means())
            fit_note = f"\n    measured fit: {fit}"
        paper_det, paper_rand = paper_placement(rep.spec.name)
        paper_note = ""
        if (paper_det, paper_rand) != ("-", "-"):
            paper_note = f"\n    paper: det {paper_det} / rand {paper_rand}"
        table = render_table(
            ["n", "trials", "rounds mean", "rounds max", "rounds min"],
            [
                [p.n, p.trials, round(p.rounds_mean, 2), p.rounds_max, p.rounds_min]
                for p in sweep.points
            ],
            title=f"{rep.spec.name} [{sweep.solver_name}]{fit_note}{paper_note}",
        )
        blocks.append(table + "\n" + rep.summary())
    return "\n\n".join(blocks)


# -- list / describe ---------------------------------------------------


def _constraint_note(
    max_degree: int | None, min_degree: int | None, girth: int | None
) -> str:
    parts = []
    if min_degree is not None:
        parts.append(f"deg>={min_degree}")
    if max_degree is not None:
        parts.append(f"deg<={max_degree}")
    if girth is not None:
        parts.append(f"girth>={girth}")
    return ", ".join(parts) if parts else "any graph"


def format_catalog() -> str:
    """The ``list`` view: every registered problem, solver, and family."""
    problems = registry.problems()
    solvers = registry.solvers()
    families = registry.families()
    lines = [f"problems ({len(problems)}):"]
    for name in sorted(problems):
        info = problems[name]
        lines.append(
            f"  {name:24s} det {info.paper_det} / rand {info.paper_rand}"
            f"  [{_constraint_note(info.max_degree, info.min_degree, info.min_girth)}]"
        )
    lines.append(f"\nsolvers ({len(solvers)}):")
    for name in sorted(solvers):
        info = solvers[name]
        kind = "randomized" if info.randomized else "deterministic"
        lines.append(
            f"  {name:24s} {kind:13s} -> {info.problem}"
            f"  on {', '.join(info.families)}"
        )
    lines.append(f"\nfamilies ({len(families)}):")
    for name in sorted(families):
        info = families[name]
        note = _constraint_note(info.max_degree, info.min_degree, info.girth_at_least)
        lines.append(
            f"  {name:24s} sized by {info.size_kind:6s} [{note}]  {info.description}"
        )
    lines.append(f"\nexperiments ({len(EXPERIMENTS)}):")
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:24s} {EXPERIMENTS[name].description}")
    lines.append(
        f"\n{len(registry.sound_triples())} sound (problem, solver, family) "
        "triples; `describe <name>` for details"
    )
    return "\n".join(lines)


def format_description(name: str) -> str:
    """The ``describe`` view for one catalog or experiment entry."""
    problems = registry.problems()
    solvers = registry.solvers()
    families = registry.families()
    blocks = []
    if name in problems:
        info = problems[name]
        rows = [
            f"problem {info.name}",
            f"  {info.description}",
            f"  paper placement: det {info.paper_det} / rand {info.paper_rand}",
            "  instance constraints: "
            + _constraint_note(info.max_degree, info.min_degree, info.min_girth),
            "  solvers: "
            + (
                ", ".join(s.name for s in registry.solvers_for(name)) or "(none)"
            ),
        ]
        blocks.append("\n".join(rows))
    if name in solvers:
        info = solvers[name]
        rows = [
            f"solver {info.name}",
            f"  {info.description}",
            f"  {'randomized' if info.randomized else 'deterministic'}, "
            f"solves {info.problem}",
            f"  sound on families: {', '.join(info.families)}",
        ]
        if info.ref:
            rows.append(f"  factory: {info.ref}")
        blocks.append("\n".join(rows))
    if name in families:
        info = families[name]
        rows = [
            f"family {info.name}",
            f"  {info.description}",
            "  guarantees: "
            + _constraint_note(info.max_degree, info.min_degree, info.girth_at_least),
            f"  sized by: {info.size_kind}; conformance sizes {info.test_sizes}",
            "  solvers sound here: "
            + (
                ", ".join(
                    s.name
                    for s in sorted(solvers.values(), key=lambda s: s.name)
                    if s.sound_on(name)
                )
                or "(none)"
            ),
        ]
        blocks.append("\n".join(rows))
    if name in EXPERIMENTS:
        exp = EXPERIMENTS[name]
        specs = build_experiment(name)
        rows = [
            f"experiment {exp.name}",
            f"  {exp.description}",
            f"  defaults: max-n {exp.default_max_n}, "
            f"{exp.default_seed_count} seed(s)",
            f"  specs at defaults ({len(specs)}):",
        ]
        rows += [f"    {spec.name}  ns={list(spec.ns)}" for spec in specs]
        blocks.append("\n".join(rows))
    if not blocks:
        known = sorted({*problems, *solvers, *families, *EXPERIMENTS})
        raise ValueError(
            f"unknown name {name!r}; known problems/solvers/families/"
            f"experiments: {', '.join(known)}"
        )
    return "\n\n".join(blocks)


# -- argument parsing --------------------------------------------------


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--experiment",
        required=True,
        choices=sorted(EXPERIMENTS),
        help="named experiment to run",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="worker processes (1 = serial; default: CPU count capped at 8)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="upper bound of the size grid (experiment default otherwise)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="COUNT",
        help="number of seeds per point (experiment default otherwise)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="COUNT",
        help=(
            "trials per worker dispatch chunk (default: auto — covers a "
            "full seed group, ~4 chunks per worker)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render per-trial progress on stderr as chunks complete",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"trial cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every trial; do not read or write the cache",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the report as JSON to PATH ('-' for stdout)",
    )


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="parallel, cached experiment runs for the reproduction",
    )
    subparsers = parser.add_subparsers(dest="command")
    run = subparsers.add_parser("run", help="run a named experiment")
    _add_run_arguments(run)
    subparsers.add_parser(
        "list", help="list registered problems, solvers, families, experiments"
    )
    describe = subparsers.add_parser(
        "describe", help="describe one problem, solver, family, or experiment"
    )
    describe.add_argument("name", help="catalog or experiment name")
    return parser


def _progress_callback(spec_name: str, total: int):
    """A per-record progress renderer for one spec (stderr, in place)."""
    state = {"done": 0}

    def on_record(record) -> None:
        state["done"] += 1
        print(
            f"\r{spec_name}: {state['done']}/{total} trials",
            end="",
            file=sys.stderr,
            flush=True,
        )

    return on_record


def _run(args: argparse.Namespace) -> int:
    try:
        specs = build_experiment(args.experiment, args.max_n, args.seeds)
        cache = None if args.no_cache else TrialCache(args.cache_dir)
        if args.batch_size is not None and args.batch_size < 1:
            raise ValueError(
                f"--batch-size must be positive, got {args.batch_size}"
            )
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    reports = []
    for spec in specs:
        on_record = None
        if args.progress:
            on_record = _progress_callback(
                spec.name, len(spec.ns) * len(spec.seeds)
            )
        reports.append(
            run_experiment(
                spec,
                workers=args.workers,
                cache=cache,
                batch_size=args.batch_size,
                on_record=on_record,
            )
        )
        if args.progress:
            print(file=sys.stderr)
    print(format_report(reports))
    if args.experiment == "landscape":
        from repro.analysis import render_landscape
        from repro.analysis.landscape import rows_from_engine_reports

        rows = rows_from_engine_reports(reports)
        if rows:
            print("\n" + render_landscape(rows))
    total = sum(rep.trials_total for rep in reports)
    hits = sum(rep.cache_hits for rep in reports)
    batches = sum(rep.batches for rep in reports)
    elapsed = sum(rep.elapsed for rep in reports)
    print(
        f"\ntotal: {total} trials in {batches} chunk(s), {hits} cache hits, "
        f"{args.workers} worker(s), {elapsed:.2f}s"
    )
    if args.json:
        payload = json.dumps(
            {
                "experiment": args.experiment,
                "workers": args.workers,
                "cache": None if cache is None else args.cache_dir,
                "reports": [rep.as_dict() for rep in reports],
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Legacy form: bare flags mean `run` — but top-level -h/--help must
    # keep showing the subcommand overview.
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["run", *argv]
    args = _parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    if args.command == "list":
        print(format_catalog())
        return 0
    if args.command == "describe":
        try:
            print(format_description(args.name))
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        return 0
    _parser().print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
