"""``python -m repro.engine`` — run, shard, merge, and inspect experiments.

Subcommands::

    python -m repro.engine run --experiment sinkless --workers 4
    python -m repro.engine plan --experiment landscape --shards 4 --out plan.json
    python -m repro.engine run-shard --plan plan.json --shard 0/4 --cache-out shard0
    python -m repro.engine merge --plan plan.json --from shard0 shard1 shard2 shard3
    python -m repro.engine fabric --plan plan.json --cache-dir cache
    python -m repro.engine fabric --plan plan.json --target 'cmd://ssh h ...'
    python -m repro.engine cache --export exports/shard-0
    python -m repro.engine serve-exports --root exports --port 8750
    python -m repro.engine merge --plan plan.json --from-url http://h:8750/shard-0
    python -m repro.engine status --plan plan.json
    python -m repro.engine stats --report report.json
    python -m repro.engine cache --status
    python -m repro.engine cache --compact
    python -m repro.engine list
    python -m repro.engine describe mis-luby

Observability: every subcommand takes ``-v``/``-vv`` (INFO/DEBUG on
the ``repro`` loggers, stderr) and ``-q`` (errors only — library
users can equally attach their own handlers and silence the CLI);
``run``/``run-shard``/``merge`` take ``--trace PATH`` to stream span
and event JSONL for offline analysis; ``stats`` renders the
phase/counter breakdown a ``--json`` report carries, and ``cache
--status`` the trial cache's counters.

The bare legacy form (``python -m repro.engine --experiment ...``) is
still accepted and means ``run``.  ``run`` prints one table per spec
(the same renderer the benchmark suite feeds into
``benchmarks/conftest.report``) plus cache/parallelism accounting, and
optionally writes the full JSON report; ``list``/``describe`` read the
runtime registry's catalogs.

The shard flow needs no scheduler integration: ``plan`` writes one
JSON file fixing the chunk/shard partition for every spec of an
experiment, ``run-shard`` executes one shard of it anywhere (a private
``--cache-out`` root keeps concurrent shards from contending), and
``merge`` unions the shard caches and rebuilds the exact report — and
Figure 1 table — a single-host run would have produced.  Any shell
loop, make, or batch scheduler can drive it — or ``fabric`` drives all
shards itself as supervised subprocesses, with leases, heartbeat
liveness, retry with backoff, and graceful degradation (exit 4 plus a
gap manifest when shards exhaust their attempts).

Failure hygiene: ``run-shard``/``merge``/``fabric`` failures print one
structured line (command, experiment, shard, cause) to stderr — never
a bare traceback — and ``--json-errors`` switches that line to a JSON
object for supervising processes.  Exit codes: 0 success, 2 bad
invocation/setup, 3 runtime failure, 4 degraded fabric.  ``run-shard
--heartbeat PATH`` publishes the :mod:`repro.obs.heartbeat` progress
file the fabric watches, ``--inject SPEC`` arms the
:mod:`repro.engine.faults` chaos harness, and ``status --heartbeats
DIR`` renders the heartbeat files in a fabric work dir.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import shlex
import sys
from typing import Sequence

from repro.engine.cache import DEFAULT_CACHE_DIR, TrialCache
from repro.engine.experiments import EXPERIMENTS, build_experiment, paper_placement
from repro.engine.fabric import GAP_MANIFEST_VERSION, BackoffPolicy, run_fabric
from repro.engine.faults import (
    ENV_ATTEMPT,
    ENV_FAULTS,
    FaultInjector,
    NetFaultInjector,
    parse_fault_specs,
)
from repro.engine.pool import default_workers
from repro.engine.remote import (
    ExecTarget,
    ExportServer,
    PullPolicy,
    assign_targets,
    pull_export,
    shard_context,
)
from repro.engine.runner import (
    EngineReport,
    plan_experiment,
    run_experiment,
    run_shard,
)
from repro.engine.shard import (
    ShardPlan,
    coverage_gaps,
    dump_plan_file,
    load_plan_file,
)
from repro.obs import (
    HeartbeatEmitter,
    TraceSink,
    format_telemetry,
    get_telemetry,
    merge_snapshots,
    read_heartbeat,
)
from repro.runtime import registry
from repro.util.fsio import atomic_write_text

__all__ = ["main", "format_report", "format_catalog"]

_LOG = logging.getLogger("repro.engine.cli")


def _setup_logging(args: argparse.Namespace) -> None:
    """Configure the ``repro`` logger tree from the CLI verbosity flags.

    The library logs through stdlib ``logging`` (``repro.engine`` /
    ``repro.runtime``) and never prints; the CLI decides what surfaces.
    Default is warnings only; ``-v`` (or ``--progress``, which implies
    wanting to watch the run) shows INFO, ``-vv`` DEBUG, ``-q`` errors
    only.  Embedding callers configure the same loggers themselves and
    never go through here.
    """
    quiet = getattr(args, "quiet", False)
    verbose = getattr(args, "verbose", 0)
    progress = getattr(args, "progress", False)
    if quiet:
        level = logging.ERROR
    elif verbose >= 2:
        level = logging.DEBUG
    elif verbose or progress:
        level = logging.INFO
    else:
        level = logging.WARNING
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
        root.addHandler(handler)


def _attach_trace(args: argparse.Namespace) -> TraceSink | None:
    """Open ``--trace PATH`` and attach it to the default telemetry."""
    path = getattr(args, "trace", None)
    if not path:
        return None
    sink = TraceSink(path)
    get_telemetry().attach_sink(sink)
    _LOG.info("streaming span/event trace to %s", path)
    return sink


def _detach_trace(sink: TraceSink | None) -> None:
    if sink is not None:
        get_telemetry().detach_sink()
        sink.close()


def _emit_error(
    args: argparse.Namespace,
    command: str,
    err: BaseException,
    code: int,
    experiment: str | None = None,
    shard: int | None = None,
) -> int:
    """One structured error line to stderr; returns the exit code.

    The default form is a single greppable key=value line; with
    ``--json-errors`` it becomes one JSON object, which is what the
    fabric launcher parses out of a failed shard's log to attribute the
    failure.  Never a traceback on this path — ``-vv`` logs one.
    """
    cause = type(err).__name__
    message = str(err) or cause
    _LOG.debug("%s failed", command, exc_info=True)
    if getattr(args, "json_errors", False):
        payload: dict[str, object] = {
            "command": command,
            "cause": cause,
            "message": message,
        }
        if experiment is not None:
            payload["experiment"] = experiment
        if shard is not None:
            payload["shard"] = shard
        payload["exit_code"] = code
        print(json.dumps({"error": payload}, sort_keys=True), file=sys.stderr)
    else:
        parts = [f"command={command}"]
        if experiment is not None:
            parts.append(f"experiment={experiment}")
        if shard is not None:
            parts.append(f"shard={shard}")
        parts.append(f"cause={cause}")
        parts.append(f"message={message!r}")
        print("error: " + " ".join(parts), file=sys.stderr)
    return code


def format_report(reports: Sequence[EngineReport]) -> str:
    """Render engine reports as benchmark-style tables.

    The return value is plain text suitable for
    ``benchmarks.conftest.report`` — one table per spec with the
    measured growth fit in the title, followed by run accounting.
    """
    from repro.analysis import best_fit, render_table

    blocks = []
    for rep in reports:
        sweep = rep.sweep
        fit_note = ""
        if len(sweep.points) >= 3:
            fit = best_fit(sweep.ns(), sweep.means())
            fit_note = f"\n    measured fit: {fit}"
        paper_det, paper_rand = paper_placement(rep.spec.name)
        paper_note = ""
        if (paper_det, paper_rand) != ("-", "-"):
            paper_note = f"\n    paper: det {paper_det} / rand {paper_rand}"
        table = render_table(
            ["n", "trials", "rounds mean", "rounds max", "rounds min"],
            [
                [p.n, p.trials, round(p.rounds_mean, 2), p.rounds_max, p.rounds_min]
                for p in sweep.points
            ],
            title=f"{rep.spec.name} [{sweep.solver_name}]{fit_note}{paper_note}",
        )
        blocks.append(table + "\n" + rep.summary())
    return "\n\n".join(blocks)


# -- list / describe ---------------------------------------------------


def _constraint_note(
    max_degree: int | None, min_degree: int | None, girth: int | None
) -> str:
    parts = []
    if min_degree is not None:
        parts.append(f"deg>={min_degree}")
    if max_degree is not None:
        parts.append(f"deg<={max_degree}")
    if girth is not None:
        parts.append(f"girth>={girth}")
    return ", ".join(parts) if parts else "any graph"


def format_catalog() -> str:
    """The ``list`` view: every registered problem, solver, and family."""
    problems = registry.problems()
    solvers = registry.solvers()
    families = registry.families()
    lines = [f"problems ({len(problems)}):"]
    for name in sorted(problems):
        info = problems[name]
        lines.append(
            f"  {name:24s} det {info.paper_det} / rand {info.paper_rand}"
            f"  [{_constraint_note(info.max_degree, info.min_degree, info.min_girth)}]"
        )
    lines.append(f"\nsolvers ({len(solvers)}):")
    for name in sorted(solvers):
        info = solvers[name]
        kind = "randomized" if info.randomized else "deterministic"
        lines.append(
            f"  {name:24s} {kind:13s} -> {info.problem}"
            f"  on {', '.join(info.families)}"
        )
    lines.append(f"\nfamilies ({len(families)}):")
    for name in sorted(families):
        info = families[name]
        note = _constraint_note(info.max_degree, info.min_degree, info.girth_at_least)
        lines.append(
            f"  {name:24s} sized by {info.size_kind:6s} [{note}]  {info.description}"
        )
    lines.append(f"\nexperiments ({len(EXPERIMENTS)}):")
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:24s} {EXPERIMENTS[name].description}")
    lines.append(
        f"\n{len(registry.sound_triples())} sound (problem, solver, family) "
        f"triples, {len(registry.unsound_triples())} declared-unsound probe "
        "triples; `describe <name>` for details"
    )
    return "\n".join(lines)


def format_description(name: str) -> str:
    """The ``describe`` view for one catalog or experiment entry."""
    problems = registry.problems()
    solvers = registry.solvers()
    families = registry.families()
    blocks = []
    if name in problems:
        info = problems[name]
        rows = [
            f"problem {info.name}",
            f"  {info.description}",
            f"  paper placement: det {info.paper_det} / rand {info.paper_rand}",
            "  instance constraints: "
            + _constraint_note(info.max_degree, info.min_degree, info.min_girth),
            "  solvers: "
            + (
                ", ".join(s.name for s in registry.solvers_for(name)) or "(none)"
            ),
        ]
        blocks.append("\n".join(rows))
    if name in solvers:
        info = solvers[name]
        rows = [
            f"solver {info.name}",
            f"  {info.description}",
            f"  {'randomized' if info.randomized else 'deterministic'}, "
            f"solves {info.problem}",
            f"  sound on families: {', '.join(info.families)}",
        ]
        if info.unsound_families:
            rows.append(
                "  declared unsound (verifier must reject) on: "
                + ", ".join(info.unsound_families)
            )
        if info.ref:
            rows.append(f"  factory: {info.ref}")
        blocks.append("\n".join(rows))
    if name in families:
        info = families[name]
        rows = [
            f"family {info.name}",
            f"  {info.description}",
            "  guarantees: "
            + _constraint_note(info.max_degree, info.min_degree, info.girth_at_least),
            f"  sized by: {info.size_kind}; conformance sizes {info.test_sizes}",
            "  solvers sound here: "
            + (
                ", ".join(
                    s.name
                    for s in sorted(solvers.values(), key=lambda s: s.name)
                    if s.sound_on(name)
                )
                or "(none)"
            ),
        ]
        blocks.append("\n".join(rows))
    if name in EXPERIMENTS:
        exp = EXPERIMENTS[name]
        specs = build_experiment(name)
        rows = [
            f"experiment {exp.name}",
            f"  {exp.description}",
            f"  defaults: max-n {exp.default_max_n}, "
            f"{exp.default_seed_count} seed(s)",
            f"  specs at defaults ({len(specs)}):",
        ]
        rows += [f"    {spec.name}  ns={list(spec.ns)}" for spec in specs]
        blocks.append("\n".join(rows))
    if not blocks:
        known = sorted({*problems, *solvers, *families, *EXPERIMENTS})
        raise ValueError(
            f"unknown name {name!r}; known problems/solvers/families/"
            f"experiments: {', '.join(known)}"
        )
    return "\n\n".join(blocks)


# -- argument parsing --------------------------------------------------


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--experiment",
        required=True,
        choices=sorted(EXPERIMENTS),
        help="named experiment to run",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="worker processes (1 = serial; default: CPU count capped at 8)",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="upper bound of the size grid (experiment default otherwise)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="COUNT",
        help="number of seeds per point (experiment default otherwise)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="COUNT",
        help=(
            "trials per worker dispatch chunk (default: auto — covers a "
            "full seed group, ~4 chunks per worker)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render per-trial progress on stderr as chunks complete",
    )
    parser.add_argument(
        "--kernels",
        choices=("auto", "vector", "object"),
        default="auto",
        help=(
            "kernel backend: 'vector' forces the numpy layer, 'object' the "
            "pure-python oracle, 'auto' (default) picks vector on large "
            "instances when numpy is importable"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"trial cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every trial; do not read or write the cache",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the report as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream span/event telemetry as JSONL to PATH (off by default)",
    )


def _sub_parser(common: argparse.ArgumentParser):
    """A subparser class that carries the shared -v/-q flags."""

    class _Sub(argparse.ArgumentParser):
        def __init__(self, **kwargs):
            parents = list(kwargs.pop("parents", []))
            parents.append(common)
            super().__init__(parents=parents, **kwargs)

    return _Sub


def _verbosity_parent() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="log INFO from the repro loggers to stderr (-vv for DEBUG)",
    )
    common.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="errors only: silence logs and progress rendering",
    )
    return common


def _parser() -> argparse.ArgumentParser:
    common = _verbosity_parent()
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="parallel, cached, shardable experiment runs",
    )
    subparsers = parser.add_subparsers(dest="command", parser_class=_sub_parser(common))
    run = subparsers.add_parser("run", help="run a named experiment")
    _add_run_arguments(run)

    plan = subparsers.add_parser(
        "plan", help="write a deterministic sharded execution plan"
    )
    plan.add_argument(
        "--experiment",
        required=True,
        choices=sorted(EXPERIMENTS),
        help="named experiment to plan",
    )
    plan.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="K",
        help="number of shards to deal the dispatch chunks onto",
    )
    plan.add_argument(
        "--max-n",
        type=int,
        default=None,
        help="upper bound of the size grid (experiment default otherwise)",
    )
    plan.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="COUNT",
        help="number of seeds per point (experiment default otherwise)",
    )
    plan.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="COUNT",
        help="trials per dispatch chunk (default: auto, host-independent)",
    )
    plan.add_argument(
        "--out",
        default="-",
        metavar="PATH",
        help="where to write the plan JSON ('-' for stdout, the default)",
    )

    run_shard_p = subparsers.add_parser(
        "run-shard", help="execute one shard of a plan"
    )
    run_shard_p.add_argument(
        "--plan", required=True, metavar="PATH", help="plan file from `plan`"
    )
    run_shard_p.add_argument(
        "--shard",
        required=True,
        metavar="I[/K]",
        help="0-based shard to run, e.g. '1' or '1/4' (the /K must match the plan)",
    )
    run_shard_p.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="worker processes (1 = serial; default: CPU count capped at 8)",
    )
    run_shard_p.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"shared cache root to read (default: {DEFAULT_CACHE_DIR})",
    )
    run_shard_p.add_argument(
        "--cache-out",
        default=None,
        metavar="DIR",
        help=(
            "private root this shard writes to (reads still see --cache-dir); "
            "merge the roots afterward.  Default: write into --cache-dir"
        ),
    )
    run_shard_p.add_argument(
        "--progress",
        action="store_true",
        help="render per-trial progress on stderr as chunks complete",
    )
    run_shard_p.add_argument(
        "--kernels",
        choices=("auto", "vector", "object"),
        default="auto",
        help=(
            "kernel backend: 'vector' forces the numpy layer, 'object' the "
            "pure-python oracle, 'auto' (default) picks per instance"
        ),
    )
    run_shard_p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the shard reports (with records) as JSON to PATH",
    )
    run_shard_p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream span/event telemetry as JSONL to PATH (off by default)",
    )
    run_shard_p.add_argument(
        "--heartbeat",
        default=None,
        metavar="PATH",
        help=(
            "publish a progress heartbeat file (atomically replaced) that "
            "a supervisor can watch for liveness"
        ),
    )
    run_shard_p.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "arm fault injection, e.g. 'kill@1:at=3' (repeatable; also "
            f"read from ${ENV_FAULTS}); for chaos tests only"
        ),
    )
    run_shard_p.add_argument(
        "--json-errors",
        action="store_true",
        help="emit failures as one JSON object on stderr instead of a text line",
    )

    merge = subparsers.add_parser(
        "merge",
        help=(
            "union shard cache roots and rebuild the single-host report "
            "(any remainder is computed locally)"
        ),
    )
    merge.add_argument(
        "--plan", required=True, metavar="PATH", help="plan file from `plan`"
    )
    merge.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"destination cache root (default: {DEFAULT_CACHE_DIR})",
    )
    merge.add_argument(
        "--from",
        dest="sources",
        nargs="*",
        default=[],
        metavar="ROOT",
        help="shard cache roots to union into --cache-dir before replaying",
    )
    merge.add_argument(
        "--from-url",
        dest="source_urls",
        action="append",
        default=None,
        metavar="URL",
        help=(
            "pull an exported cache over HTTP (a `serve-exports` "
            "endpoint, checksum-verified, resumable) and union it like a "
            "--from root (repeatable)"
        ),
    )
    merge.add_argument(
        "--pull-dir",
        default=None,
        metavar="DIR",
        help=(
            "where --from-url downloads land "
            "(default: <cache-dir>/.pulls/)"
        ),
    )
    merge.add_argument(
        "--pull-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request timeout for --from-url transfers (default: 10)",
    )
    merge.add_argument(
        "--pull-attempts",
        type=int,
        default=4,
        metavar="N",
        help="attempts per file before quarantining it (default: 4)",
    )
    merge.add_argument(
        "--pull-backoff",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="first retry delay; doubles per attempt, jittered (default: 0.25)",
    )
    merge.add_argument(
        "--compact",
        action="store_true",
        help="compact the destination cache after merging",
    )
    merge.add_argument(
        "--workers",
        type=int,
        default=default_workers(),
        help="workers for any remainder trials the shards did not cover",
    )
    merge.add_argument(
        "--kernels",
        choices=("auto", "vector", "object"),
        default="auto",
        help="kernel backend for any remainder trials computed during merge",
    )
    merge.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the merged report as JSON to PATH ('-' for stdout)",
    )
    merge.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream span/event telemetry as JSONL to PATH (off by default)",
    )
    merge.add_argument(
        "--json-errors",
        action="store_true",
        help="emit failures as one JSON object on stderr instead of a text line",
    )

    fabric = subparsers.add_parser(
        "fabric",
        help=(
            "drive every shard of a plan as supervised subprocesses with "
            "leases, heartbeat liveness, and retry/backoff"
        ),
    )
    fabric.add_argument(
        "--plan", required=True, metavar="PATH", help="plan file from `plan`"
    )
    fabric.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"shared cache root shards read and merge into (default: {DEFAULT_CACHE_DIR})",
    )
    fabric.add_argument(
        "--work-dir",
        default=None,
        metavar="DIR",
        help=(
            "fabric state directory: lease board, shard roots, heartbeats, "
            "logs (default: <plan>.fabric/)"
        ),
    )
    fabric.add_argument(
        "--shard-workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes inside each shard subprocess (default: 1)",
    )
    fabric.add_argument(
        "--max-parallel",
        type=int,
        default=None,
        metavar="N",
        help="shard subprocesses at once (default: half the CPUs)",
    )
    fabric.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "kill and reassign a shard whose heartbeat stops advancing for "
            "this long (default: 30)"
        ),
    )
    fabric.add_argument(
        "--poll-interval",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="launcher supervision loop period (default: 0.1)",
    )
    fabric.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per shard before it is marked failed (default: 3)",
    )
    fabric.add_argument(
        "--backoff-base",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="first retry delay; doubles per attempt, jittered (default: 0.5)",
    )
    fabric.add_argument(
        "--retry-failed",
        action="store_true",
        help=(
            "on resume, reset shards a previous launcher marked failed "
            "and try them again"
        ),
    )
    fabric.add_argument(
        "--target",
        dest="targets",
        action="append",
        default=None,
        metavar="URI",
        help=(
            "exec target(s) shards are dealt onto round-robin (repeatable): "
            "'local://' (default) or a 'cmd://' command template with "
            "{plan} {shard} {num_shards} {workers} {cache_dir} {out} "
            "{heartbeat} {kernels} {python} placeholders, e.g. "
            "\"cmd://ssh host repro-shard {plan} {shard}\"; append "
            "'#concurrency=N,timeout=S' for per-target caps"
        ),
    )
    fabric.add_argument(
        "--kernels",
        choices=("auto", "vector", "object"),
        default="auto",
        help="kernel backend forwarded to every shard (default: auto)",
    )
    fabric.add_argument(
        "--dry-run",
        action="store_true",
        help=(
            "print each shard's resolved target, workdir, and command "
            "without spawning anything"
        ),
    )
    fabric.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "forward fault-injection specs to shard subprocesses, e.g. "
            "'kill@1:at=3' (repeatable); for chaos tests only"
        ),
    )
    fabric.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="also write the fabric result (outcomes, gaps) as JSON to PATH",
    )
    fabric.add_argument(
        "--json-errors",
        action="store_true",
        help="emit failures as one JSON object on stderr instead of a text line",
    )

    status = subparsers.add_parser(
        "status", help="per-shard completion of a plan against a cache"
    )
    status.add_argument(
        "--plan", required=True, metavar="PATH", help="plan file from `plan`"
    )
    status.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"cache root to check (default: {DEFAULT_CACHE_DIR})",
    )
    status.add_argument(
        "--from",
        dest="sources",
        nargs="*",
        default=[],
        metavar="ROOT",
        help=(
            "additional (not-yet-merged) shard cache roots to count as "
            "present, e.g. the --cache-out roots of running shards"
        ),
    )
    status.add_argument(
        "--heartbeats",
        default=None,
        metavar="DIR",
        help=(
            "also render the shard heartbeat files in DIR (a fabric work "
            "dir): phase, trial progress, emitting pid"
        ),
    )

    stats = subparsers.add_parser(
        "stats",
        help="render the telemetry (phase/counter breakdown) of a report or cache",
    )
    stats.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help=(
            "a JSON report written by run/run-shard/merge --json; renders "
            "its merged telemetry block"
        ),
    )
    stats.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "render a cache root's stats instead (record count + cache "
            f"counters; default when --report is absent: {DEFAULT_CACHE_DIR})"
        ),
    )

    cache = subparsers.add_parser(
        "cache", help="inspect or compact a trial cache root"
    )
    cache.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"cache root (default: {DEFAULT_CACHE_DIR})",
    )
    cache.add_argument(
        "--compact",
        action="store_true",
        help=(
            "rewrite shard files keeping only the last record per key "
            "(run only while no writer is using the root)"
        ),
    )
    cache.add_argument(
        "--status",
        action="store_true",
        help=(
            "render the cache's obs counters (hits, misses, shard files "
            "loaded, records compacted) alongside the record count"
        ),
    )
    cache.add_argument(
        "--export",
        default=None,
        metavar="DIR",
        help=(
            "write a sha256-manifested export of the cache to DIR, "
            "servable with `serve-exports` and pullable with "
            "`merge --from-url`"
        ),
    )

    serve = subparsers.add_parser(
        "serve-exports",
        help=(
            "serve a directory of cache exports over HTTP for "
            "`merge --from-url` (stdlib server; trusted networks only)"
        ),
    )
    serve.add_argument(
        "--root",
        required=True,
        metavar="DIR",
        help="directory holding `cache --export` output (or several)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 picks an ephemeral one and prints it (default: 0)",
    )
    serve.add_argument(
        "--inject",
        action="append",
        default=None,
        metavar="SPEC",
        help=(
            "arm network fault injection on served responses, e.g. "
            "'net-truncate@0:attempts=1' (repeatable); for chaos tests only"
        ),
    )
    serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for deterministic fault corruption (default: 0)",
    )
    serve.add_argument(
        "--ready-file",
        default=None,
        metavar="PATH",
        help=(
            "write the bound URL to PATH once listening (lets scripts "
            "wait for readiness instead of polling)"
        ),
    )

    subparsers.add_parser(
        "list", help="list registered problems, solvers, families, experiments"
    )
    describe = subparsers.add_parser(
        "describe", help="describe one problem, solver, family, or experiment"
    )
    describe.add_argument("name", help="catalog or experiment name")
    return parser


def _progress_callback(spec_name: str, total: int):
    """A per-record progress renderer for one spec (stderr, in place)."""
    state = {"done": 0}

    def on_record(record) -> None:
        state["done"] += 1
        print(
            f"\r{spec_name}: {state['done']}/{total} trials",
            end="",
            file=sys.stderr,
            flush=True,
        )

    return on_record


def _render_partial_landscape(reports: Sequence[EngineReport]) -> str | None:
    """The Figure 1 table as assembled so far, or None when still empty."""
    from repro.analysis import render_landscape
    from repro.analysis.landscape import rows_from_engine_reports

    rows = rows_from_engine_reports(reports)
    if not rows:
        return None
    return render_landscape(rows)


def _run(args: argparse.Namespace) -> int:
    try:
        specs = build_experiment(args.experiment, args.max_n, args.seeds)
        cache = None if args.no_cache else TrialCache(args.cache_dir)
        if args.batch_size is not None and args.batch_size < 1:
            raise ValueError(
                f"--batch-size must be positive, got {args.batch_size}"
            )
        sink = _attach_trace(args)
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    try:
        return _run_specs(args, specs, cache)
    finally:
        _detach_trace(sink)


def _run_specs(args, specs, cache) -> int:
    show_progress = args.progress and not args.quiet
    reports = []
    last_partial: str | None = None
    for spec in specs:
        on_record = None
        if show_progress:
            on_record = _progress_callback(
                spec.name, len(spec.ns) * len(spec.seeds)
            )
        reports.append(
            run_experiment(
                spec,
                workers=args.workers,
                cache=cache,
                batch_size=args.batch_size,
                on_record=on_record,
                kernels=args.kernels,
            )
        )
        if show_progress:
            print(file=sys.stderr)
            # Progressive Figure 1 at large --max-n: re-render the
            # partial landscape whenever a completed spec changed it,
            # so long runs show the table filling in instead of
            # staying silent until the end.
            if args.experiment == "landscape" and len(reports) < len(specs):
                partial = _render_partial_landscape(reports)
                if partial is not None and partial != last_partial:
                    last_partial = partial
                    _LOG.info(
                        "[%d/%d specs]\n%s", len(reports), len(specs), partial
                    )
    print(format_report(reports))
    if args.experiment == "landscape":
        table = _render_partial_landscape(reports)
        if table is not None:
            print("\n" + table)
    total = sum(rep.trials_total for rep in reports)
    hits = sum(rep.cache_hits for rep in reports)
    batches = sum(rep.batches for rep in reports)
    elapsed = sum(rep.elapsed for rep in reports)
    print(
        f"\ntotal: {total} trials in {batches} chunk(s), {hits} cache hits, "
        f"{args.workers} worker(s), {elapsed:.2f}s"
    )
    if args.json:
        payload = json.dumps(
            {
                "experiment": args.experiment,
                "workers": args.workers,
                "cache": None if cache is None else args.cache_dir,
                "reports": [rep.as_dict() for rep in reports],
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            atomic_write_text(args.json, payload + "\n")
    return 0


# -- sharded execution -------------------------------------------------


def _load_plans(path: str) -> tuple[str, list[ShardPlan]]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return load_plan_file(payload)


def _parse_shard(value: str, num_shards: int) -> int:
    """Parse ``--shard`` values: a 0-based index, optionally ``i/K``."""
    text = value
    if "/" in text:
        text, _, declared = text.partition("/")
        if int(declared) != num_shards:
            raise ValueError(
                f"--shard says /{declared} but the plan has "
                f"{num_shards} shard(s)"
            )
    index = int(text)
    if not 0 <= index < num_shards:
        raise ValueError(
            f"shard index {index} out of range for a {num_shards}-shard plan "
            "(indices are 0-based)"
        )
    return index


def _plan(args: argparse.Namespace) -> int:
    try:
        specs = build_experiment(args.experiment, args.max_n, args.seeds)
        plans = [
            plan_experiment(
                spec, num_shards=args.shards, batch_size=args.batch_size
            )
            for spec in specs
        ]
        payload = dump_plan_file(args.experiment, plans)
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    text = json.dumps(payload, indent=2)
    if args.out == "-":
        print(text)
    else:
        # Atomic: a scheduler (or fabric launcher) watching for the plan
        # file must never read a half-written partition.
        atomic_write_text(args.out, text + "\n")
        print(
            f"wrote {args.out}: {args.experiment}, {len(plans)} spec(s) x "
            f"{args.shards} shard(s), {payload['trials_total']} trials"
        )
    return 0


def _shard_instrumentation(args, index: int, plans: Sequence[ShardPlan]):
    """The shard's heartbeat emitter and fault injector, from flags + env.

    Fault specs come from repeated ``--inject`` flags and the
    ``REPRO_FAULTS`` environment variable (how the fabric launcher arms
    subprocesses); the attempt number the injector filters on is the
    launcher-stamped ``REPRO_FABRIC_ATTEMPT``.  Both default to inert.
    """
    specs = []
    for text in getattr(args, "inject", None) or []:
        specs.extend(parse_fault_specs(text))
    specs.extend(parse_fault_specs(os.environ.get(ENV_FAULTS)))
    attempt = int(os.environ.get(ENV_ATTEMPT) or 1)
    injector = FaultInjector(specs, index, attempt)
    emitter = None
    if getattr(args, "heartbeat", None):
        total = sum(len(plan.manifest(index).trial_indices()) for plan in plans)
        emitter = HeartbeatEmitter(args.heartbeat, index, total)
    return emitter, injector


def _run_shard(args: argparse.Namespace) -> int:
    experiment = None
    index = None
    try:
        experiment, plans = _load_plans(args.plan)
        index = _parse_shard(args.shard, plans[0].num_shards)
        cache = TrialCache(args.cache_dir, isolation=args.cache_out)
        sink = _attach_trace(args)
    except (ValueError, OSError) as err:
        return _emit_error(args, "run-shard", err, 2, experiment, index)
    try:
        return _run_shard_plans(args, plans, index, cache)
    except Exception as err:
        # The CLI boundary: a solver bug, a rejecting verifier, a full
        # disk — one attributable line for the supervisor, not a
        # traceback (which -vv still logs).
        return _emit_error(args, "run-shard", err, 3, experiment, index)
    finally:
        _detach_trace(sink)


def _run_shard_plans(args, plans, index, cache) -> int:
    show_progress = args.progress and not args.quiet
    emitter, injector = _shard_instrumentation(args, index, plans)
    if emitter is not None:
        emitter.start()
    reports = []
    for plan in plans:
        manifest = plan.manifest(index)
        progress_cb = None
        if show_progress:
            progress_cb = _progress_callback(
                f"{manifest.spec.name} [shard {index}]",
                len(manifest.trial_indices()),
            )
        on_record = None
        if progress_cb is not None or emitter is not None or injector.active:
            def on_record(record, _cb=progress_cb):
                if _cb is not None:
                    _cb(record)
                if emitter is not None:
                    emitter.record()
                injector.on_trial()
        reports.append(
            run_shard(
                manifest,
                workers=args.workers,
                cache=cache,
                on_record=on_record,
                kernels=args.kernels,
            )
        )
        if show_progress:
            print(file=sys.stderr)
        print(reports[-1].summary())
    # Corruption applies to what was actually written, after it all was;
    # the final heartbeat still reports honest progress either way.
    injector.on_exit([args.cache_out or args.cache_dir])
    if emitter is not None:
        emitter.done()
    total = sum(rep.trials_total for rep in reports)
    hits = sum(rep.cache_hits for rep in reports)
    computed = sum(rep.computed for rep in reports)
    elapsed = sum(rep.elapsed for rep in reports)
    wrote = args.cache_out or args.cache_dir
    print(
        f"\nshard {index}/{plans[0].num_shards}: {total} trials "
        f"({hits} cached, {computed} computed) in {elapsed:.2f}s; "
        f"records in {wrote}"
    )
    if args.json:
        atomic_write_text(
            args.json,
            json.dumps(
                {
                    "plan": args.plan,
                    "shard_index": index,
                    "reports": [rep.as_dict() for rep in reports],
                },
                indent=2,
            )
            + "\n",
        )
    return 0


def _merge(args: argparse.Namespace) -> int:
    sink = None
    experiment = None
    source_urls = args.source_urls or []
    try:
        experiment, plans = _load_plans(args.plan)
        if not args.sources and not source_urls and not os.path.isdir(args.cache_dir):
            # With --from roots or --from-url endpoints, creating a
            # fresh destination is the point; without them, a typo'd
            # --cache-dir would silently recompute the whole experiment
            # instead of replaying it.
            raise ValueError(
                f"cache root {args.cache_dir!r} does not exist and no "
                "--from roots or --from-url endpoints were given; "
                "nothing to merge"
            )
        sink = _attach_trace(args)
        cache = TrialCache(args.cache_dir)
        added = 0
        for root in args.sources:
            added += cache.merge(root)
        added, degraded = _merge_pulls(args, source_urls, cache, added)
    except (ValueError, OSError) as err:
        _detach_trace(sink)
        return _emit_error(args, "merge", err, 2, experiment)
    try:
        if degraded is not None:
            return _merge_degraded(args, experiment, plans, cache, added, degraded)
        return _merge_replay(args, experiment, plans, cache, added)
    except Exception as err:
        return _emit_error(args, "merge", err, 3, experiment)
    finally:
        _detach_trace(sink)


def _merge_pulls(args, source_urls, cache, added):
    """Pull each --from-url endpoint and union what verified.

    Returns ``(added, degraded)`` where ``degraded`` is None on a fully
    clean pull and otherwise the ``{"failed_sources", "quarantined"}``
    accounting a gap manifest needs.  Partial results still merge —
    quarantined files sit in an ignored subdirectory, so a dest with
    one bad file contributes its good ones.
    """
    if not source_urls:
        return added, None
    policy = PullPolicy(
        timeout=args.pull_timeout,
        max_attempts=args.pull_attempts,
        backoff_base=args.pull_backoff,
    )
    pull_root = args.pull_dir or os.path.join(args.cache_dir, ".pulls")
    failed_sources = []
    quarantined = []
    for index, url in enumerate(source_urls):
        dest = os.path.join(pull_root, f"src-{index}")
        result = pull_export(url, dest, policy=policy)
        print(result.summary())
        if result.error is not None:
            failed_sources.append({"url": url, "cause": result.error})
            continue
        for file in result.quarantined:
            quarantined.append(
                {
                    "url": url,
                    "file": file.name,
                    "cause": file.cause,
                    "quarantine": os.path.join(dest, "quarantine", file.name),
                }
            )
        added += cache.merge(dest)
    if not failed_sources and not quarantined:
        return added, None
    return added, {"failed_sources": failed_sources, "quarantined": quarantined}


def _merge_degraded(args, experiment, plans, cache, added, degraded) -> int:
    """Exit 4 with a gap manifest instead of replaying a holey grid.

    The same degradation contract as the fabric's: everything that
    verified is merged and durable, the holes are machine-readable in
    ``<cache-dir>/gaps.json``, and nothing quarantined ever entered
    the cache.
    """
    trials_total, trials_missing, specs = coverage_gaps(plans, cache.contains)
    gap = {
        "version": GAP_MANIFEST_VERSION,
        "experiment": experiment,
        "num_shards": plans[0].num_shards,
        "trials_total": trials_total,
        "trials_present": trials_total - trials_missing,
        "trials_missing": trials_missing,
        "failed_sources": degraded["failed_sources"],
        "quarantined": degraded["quarantined"],
        "specs": specs,
    }
    gap_path = os.path.join(args.cache_dir, "gaps.json")
    atomic_write_text(gap_path, json.dumps(gap, indent=2, sort_keys=True) + "\n")
    print(
        f"merged {added} new record(s) into {args.cache_dir}; "
        f"{len(degraded['failed_sources'])} source(s) unreachable, "
        f"{len(degraded['quarantined'])} file(s) quarantined, "
        f"{trials_missing} trial(s) missing"
    )
    print(f"gap manifest: {gap_path}", file=sys.stderr)
    return 4


def _merge_replay(args, experiment, plans, cache, added) -> int:
    pulled = len(args.source_urls or [])
    pulled_note = f" and {pulled} pulled export(s)" if pulled else ""
    torn = cache.stats.torn_lines
    torn_note = f" ({torn} torn line(s) skipped)" if torn else ""
    print(
        f"merged {len(args.sources)} shard root(s){pulled_note} into "
        f"{args.cache_dir}: {added} new record(s){torn_note}"
    )
    if args.compact:
        kept, dropped = cache.compact()
        print(f"compacted: kept {kept} record(s), dropped {dropped} stale line(s)")
    # Replay the plan from the merged cache — the single-shard pipeline
    # again, so a complete merge is pure cache hits and an incomplete
    # one computes exactly the remainder.
    reports = [
        run_experiment(
            plan.spec,
            workers=args.workers,
            cache=cache,
            batch_size=plan.batch_size,
            kernels=args.kernels,
        )
        for plan in plans
    ]
    print("\n" + format_report(reports))
    if experiment == "landscape":
        table = _render_partial_landscape(reports)
        if table is not None:
            print("\n" + table)
    total = sum(rep.trials_total for rep in reports)
    hits = sum(rep.cache_hits for rep in reports)
    print(
        f"\ntotal: {total} trials, {hits} from the merged cache, "
        f"{total - hits} computed during merge"
    )
    if args.json:
        payload = json.dumps(
            {
                "experiment": experiment,
                "merged_roots": list(args.sources),
                "records_added": added,
                "reports": [rep.as_dict() for rep in reports],
            },
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            atomic_write_text(args.json, payload + "\n")
    return 0


def _status(args: argparse.Namespace) -> int:
    from repro.analysis import render_table

    try:
        experiment, plans = _load_plans(args.plan)
        # A read-only probe must not conjure an empty cache out of a
        # typo'd path and report a finished plan as all-remaining.
        for root in [args.cache_dir, *args.sources]:
            if not os.path.isdir(root):
                raise ValueError(f"cache root {root!r} does not exist")
        # Probe the shared root plus any not-yet-merged shard roots, so
        # a scheduler can watch shards that write to private
        # --cache-out dirs without forcing an early merge.
        probes = [TrialCache(args.cache_dir)] + [
            TrialCache(root) for root in args.sources
        ]
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    num_shards = plans[0].num_shards
    done_by_shard = [0] * num_shards
    total_by_shard = [0] * num_shards
    for plan in plans:
        trials = plan.spec.trials()
        for shard_index in range(num_shards):
            for i in plan.manifest(shard_index).trial_indices():
                total_by_shard[shard_index] += 1
                key = trials[i].key()
                if any(probe.contains(key) for probe in probes):
                    done_by_shard[shard_index] += 1
    rows = []
    for shard_index in range(num_shards):
        done = done_by_shard[shard_index]
        total = total_by_shard[shard_index]
        state = "complete" if done == total else f"{total - done} remaining"
        rows.append([f"{shard_index}/{num_shards}", total, done, state])
    print(
        render_table(
            ["shard", "trials", "cached", "status"],
            rows,
            title=(
                f"{experiment}: {len(plans)} spec(s) x {num_shards} shard(s) "
                f"against {args.cache_dir}"
            ),
        )
    )
    remaining = sum(total_by_shard) - sum(done_by_shard)
    if remaining:
        print(f"\n{remaining} trial(s) remaining before `merge` is all-hits")
    else:
        print("\nplan complete — `merge` will replay without computing")
    if args.heartbeats:
        print("\n" + _render_heartbeats(args.heartbeats))
    return 0


def _render_heartbeats(directory: str) -> str:
    """A one-shot view of the heartbeat files in a fabric work dir.

    Point-in-time, not liveness: staleness needs repeated observation
    (the fabric launcher's LivenessMonitor does that); what a status
    probe *can* report is each shard's last published phase and
    progress, which is usually the question being asked.
    """
    from repro.analysis import render_table

    rows = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if not name.endswith(".hb.json"):
            continue
        beat = read_heartbeat(os.path.join(directory, name))
        if beat is None:
            rows.append([name, "(unreadable)", "-", "-", "-"])
            continue
        rows.append(
            [
                beat.shard_index,
                beat.phase,
                f"{beat.done}/{beat.total}",
                beat.seq,
                beat.pid,
            ]
        )
    if not rows:
        return f"no heartbeat files under {directory}"
    return render_table(
        ["shard", "phase", "trials", "seq", "pid"],
        rows,
        title=f"heartbeats in {directory}",
    )


def _fabric(args: argparse.Namespace) -> int:
    experiment = None
    try:
        experiment, plans = _load_plans(args.plan)
        targets = [ExecTarget.parse(uri) for uri in args.targets or []]
        faults = []
        for text in args.inject or []:
            faults.extend(parse_fault_specs(text))
        backoff = BackoffPolicy(
            base=args.backoff_base, max_attempts=args.max_attempts
        )
    except (ValueError, OSError) as err:
        return _emit_error(args, "fabric", err, 2, experiment)
    if args.dry_run:
        return _fabric_dry_run(args, plans, targets)
    try:
        result = run_fabric(
            args.plan,
            args.cache_dir,
            work_dir=args.work_dir,
            shard_workers=args.shard_workers,
            max_parallel=args.max_parallel,
            heartbeat_timeout=args.heartbeat_timeout,
            poll_interval=args.poll_interval,
            backoff=backoff,
            faults=faults,
            retry_failed=args.retry_failed,
            targets=targets,
            kernels=args.kernels,
        )
    except Exception as err:
        return _emit_error(args, "fabric", err, 3, experiment)
    if result.reports is not None:
        print(format_report(result.reports))
        print()
    print(result.summary())
    if args.json:
        atomic_write_text(
            args.json, json.dumps(result.as_dict(), indent=2) + "\n"
        )
    if not result.ok:
        work_dir = args.work_dir or args.plan + ".fabric"
        print(
            f"gap manifest: {os.path.join(work_dir, 'gaps.json')}",
            file=sys.stderr,
        )
        return 4
    return 0


def _fabric_dry_run(args, plans, targets) -> int:
    """Print each shard's resolved launch plan without spawning.

    The exact context and command :func:`run_fabric` would use — the
    way to sanity-check a ``cmd://`` template (quoting, placeholder
    coverage, host assignment) before burning attempts on it.
    """
    num_shards = plans[0].num_shards
    work_dir = args.work_dir or args.plan + ".fabric"
    target_by_shard = assign_targets(num_shards, targets)
    for i in range(num_shards):
        target = target_by_shard[i]
        ctx = shard_context(
            args.plan,
            i,
            num_shards,
            args.cache_dir,
            work_dir,
            shard_workers=args.shard_workers,
            kernels=args.kernels,
        )
        print(f"shard {i}/{num_shards}: target {target.uri}")
        print(f"  workdir {work_dir}")
        print(f"  out     {ctx['out']}")
        print(f"  command {shlex.join(target.command(ctx))}")
    return 0


def _serve_exports(args: argparse.Namespace) -> int:
    try:
        specs = []
        for text in args.inject or []:
            specs.extend(parse_fault_specs(text))
        injector = (
            NetFaultInjector(specs, seed=args.fault_seed) if specs else None
        )
        server = ExportServer(
            args.root, host=args.host, port=args.port, injector=injector
        )
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(f"serving {args.root} at {server.url}", flush=True)
    if args.ready_file:
        atomic_write_text(args.ready_file, server.url + "\n")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cache(args: argparse.Namespace) -> int:
    try:
        if not os.path.isdir(args.cache_dir):
            raise ValueError(f"cache root {args.cache_dir!r} does not exist")
        cache = TrialCache(args.cache_dir)
        if args.compact:
            kept, dropped = cache.compact()
            print(
                f"compacted {args.cache_dir}: kept {kept} record(s), "
                f"dropped {dropped} stale line(s)"
            )
        if args.export:
            manifest = cache.export_dir(args.export)
            print(
                f"exported {len(manifest['files'])} file(s), "
                f"{manifest['records_total']} record(s) to {args.export}"
            )
        if args.status or not (args.compact or args.export):
            cache.load_all()
            print(f"{args.cache_dir}: {len(cache)} record(s) on disk")
        if args.status:
            # The obs counters this process accrued touching the root:
            # shard files loaded by load_all, stale lines compacted by
            # --compact, plus hits/misses/puts once a runner used it.
            print(
                "\n"
                + format_telemetry(
                    get_telemetry().snapshot(),
                    title=args.cache_dir,
                    counter_prefix="cache.",
                )
            )
    except (ValueError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    return 0


def _stats(args: argparse.Namespace) -> int:
    """Render telemetry: from a --json report file, or a cache root."""
    try:
        if args.report is not None:
            with open(args.report, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            entries = payload.get("reports", [])
            if isinstance(payload, dict) and "telemetry" in payload:
                entries = [payload]  # a single report object
            snapshots = [
                entry.get("telemetry")
                for entry in entries
                if isinstance(entry, dict)
            ]
            if not any(snapshots):
                print(
                    f"{args.report}: no telemetry blocks "
                    "(written by an older build, or telemetry disabled?)"
                )
                return 0
            merged = merge_snapshots(snapshots)
            title = payload.get("experiment") or args.report
            print(format_telemetry(merged, title=str(title)))
            for entry in entries:
                if isinstance(entry, dict) and "elapsed_s" in entry:
                    name = entry.get("experiment", "?")
                    wall = entry.get("elapsed_s", 0.0)
                    compute = entry.get("cpu_elapsed_s", wall)
                    print(
                        f"{name}: {wall:.2f}s wall, {compute:.2f}s compute"
                    )
            return 0
        root = args.cache_dir or DEFAULT_CACHE_DIR
        if not os.path.isdir(root):
            raise ValueError(f"cache root {root!r} does not exist")
        cache = TrialCache(root)
        cache.load_all()
        print(f"{root}: {len(cache)} record(s) on disk\n")
        print(
            format_telemetry(
                get_telemetry().snapshot(), title=root, counter_prefix="cache."
            )
        )
    except (ValueError, OSError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    # Legacy form: bare flags mean `run` — but top-level -h/--help must
    # keep showing the subcommand overview.
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["run", *argv]
    args = _parser().parse_args(argv)
    _setup_logging(args)
    if args.command == "run":
        return _run(args)
    if args.command == "plan":
        return _plan(args)
    if args.command == "run-shard":
        return _run_shard(args)
    if args.command == "merge":
        return _merge(args)
    if args.command == "fabric":
        return _fabric(args)
    if args.command == "status":
        return _status(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "cache":
        return _cache(args)
    if args.command == "serve-exports":
        return _serve_exports(args)
    if args.command == "list":
        print(format_catalog())
        return 0
    if args.command == "describe":
        try:
            print(format_description(args.name))
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
        return 0
    _parser().print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
