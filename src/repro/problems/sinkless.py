"""Sinkless orientation as an ne-LCL (paper Figure 3).

Each node labels every incident half-edge ``out`` or ``in``.  The node
constraint demands an ``out`` among the incident half-edges; the edge
constraint demands that the two sides of an edge carry complementary
labels, so the half-edge labels describe a consistent orientation.

Nodes of degree below ``exempt_below`` (default 3) are exempt from the
out-edge requirement: the problem is non-trivial only at minimum degree
3 (a cycle could otherwise not be oriented at all and an isolated node
never could), and the paper's hard instances as well as the Lemma 5
construction (which adds isolated nodes) rely on low-degree nodes being
unconstrained.
"""

from __future__ import annotations

from repro.lcl.labels import EMPTY, LabelSet
from repro.lcl.problem import EdgeConfiguration, NeLCL, NodeConfiguration
from repro.problems.orientation import IN, OUT
from repro.runtime.registry import register_problem

__all__ = ["SinklessOrientation", "sinkless_orientation"]

_HALF_OUTPUTS = LabelSet("orientation", {OUT, IN})
_SILENT = LabelSet("silent", {EMPTY})


@register_problem(
    "sinkless-orientation",
    description="orient every edge; nodes of degree >= 3 need an out-edge",
    paper_det="Theta(log n)",
    paper_rand="Theta(loglog n)",
)
class SinklessOrientation:
    """Factory for the sinkless-orientation ne-LCL."""

    def __init__(self, exempt_below: int = 3):
        if exempt_below < 0:
            raise ValueError("exempt_below must be non-negative")
        self.exempt_below = exempt_below

    def problem(self) -> NeLCL:
        exempt_below = self.exempt_below

        def node_ok(cfg: NodeConfiguration) -> bool:
            if cfg.node_output is not EMPTY:
                return False
            if any(h not in (OUT, IN) for h in cfg.half_outputs):
                return False
            if cfg.degree < exempt_below:
                return True
            return OUT in cfg.half_outputs

        def edge_ok(cfg: EdgeConfiguration) -> bool:
            return set(cfg.half_outputs) == {OUT, IN}

        return NeLCL(
            name=f"sinkless-orientation(exempt<{exempt_below})",
            node_constraint=node_ok,
            edge_constraint=edge_ok,
            node_outputs=_SILENT,
            edge_outputs=_SILENT,
            half_outputs=_HALF_OUTPUTS,
            edge_symmetric=True,
            description=(
                "orient every edge so that every node of degree >= "
                f"{exempt_below} has an outgoing edge"
            ),
            metadata={"exempt_below": exempt_below},
        )


def sinkless_orientation(exempt_below: int = 3) -> NeLCL:
    """Convenience constructor for the default sinkless-orientation LCL."""
    return SinklessOrientation(exempt_below).problem()
