"""Maximal independent set as an ne-LCL, with two solvers.

The ne-LCL encoding follows the paper's remark that commonly studied
problems become node-edge checkable by replicating constant-radius
information into the output: every half-edge (v, e) carries the pair
``(membership of v, membership of the other endpoint)``.  The edge
constraint forces the two halves to mirror each other and forbids two
adjacent members; the node constraint forces consistency with the
node's own bit and — for non-members — demands a member neighbor
(maximality).

Solvers:

* :class:`ColorClassMisSolver` (deterministic): proper coloring via
  Linial, then one sweep over color classes; O(log* n) + poly(Delta)
  rounds.
* :class:`LubyMisSolver` (randomized): classic Luby rounds; O(log n)
  w.h.p.  Included as the natural randomized baseline even though
  randomness does not improve over the deterministic complexity here
  (3-coloring lower bounds make MIS Omega(log* n) for both).
"""

from __future__ import annotations

from repro.lcl.assignment import Labeling
from repro.lcl.labels import EMPTY, LabelSet
from repro.lcl.problem import EdgeConfiguration, NeLCL, NodeConfiguration
from repro.local.algorithm import Instance, RunResult
from repro.local.graphs import HalfEdge, PortGraph
from repro.problems.coloring import LinialColoringSolver
from repro.runtime.registry import register_problem, register_solver

__all__ = ["MaximalIndependentSet", "ColorClassMisSolver", "LubyMisSolver", "mis_labeling"]

_MIS_FAMILIES = ("cycle", "path", "cubic", "torus", "tree", "high-girth-cubic")

IN_SET = 1
OUT_SET = 0

_HALF = LabelSet("mis-half", {(a, b) for a in (0, 1) for b in (0, 1)})
_NODE = LabelSet("mis-node", {IN_SET, OUT_SET})


@register_problem(
    "mis",
    description="maximal independent set (independent dominating set)",
    paper_det="Theta(log* n)",
    paper_rand="Theta(log* n)",
)
class MaximalIndependentSet:
    """Factory for the MIS ne-LCL."""

    def problem(self) -> NeLCL:
        def node_ok(cfg: NodeConfiguration) -> bool:
            bit = cfg.node_output
            if bit not in (IN_SET, OUT_SET):
                return False
            for mine, _theirs in cfg.half_outputs:
                if mine != bit:
                    return False
            if bit == OUT_SET:
                # maximality: some neighbor is in the set.  Isolated
                # non-members are maximality violations by definition,
                # so isolated nodes must join the set.
                return any(theirs == IN_SET for _mine, theirs in cfg.half_outputs)
            return True

        def edge_ok(cfg: EdgeConfiguration) -> bool:
            (a_mine, a_theirs), (b_mine, b_theirs) = cfg.half_outputs
            if cfg.is_loop:
                # both halves describe the same node
                return a_mine == a_theirs == b_mine == b_theirs
            if a_mine != b_theirs or b_mine != a_theirs:
                return False
            return not (a_mine == IN_SET and b_mine == IN_SET)

        return NeLCL(
            name="maximal-independent-set",
            node_constraint=node_ok,
            edge_constraint=edge_ok,
            node_outputs=_NODE,
            half_outputs=_HALF,
            edge_symmetric=True,
            description="independent dominating set (MIS)",
        )


def mis_labeling(graph: PortGraph, members: set[int]) -> Labeling:
    """Encode a member set into the ne-LCL output format."""
    labeling = Labeling(graph)
    for v in graph.nodes():
        labeling.set_node(v, IN_SET if v in members else OUT_SET)
    for edge in graph.edges():
        a_bit = IN_SET if edge.a.node in members else OUT_SET
        b_bit = IN_SET if edge.b.node in members else OUT_SET
        labeling.set_half(edge.a, (a_bit, b_bit))
        labeling.set_half(edge.b, (b_bit, a_bit))
    return labeling


@register_solver(
    "mis-color-classes",
    problem="mis",
    families=_MIS_FAMILIES,
    description="Linial coloring followed by a color-class sweep",
)
class ColorClassMisSolver:
    """Deterministic MIS: Linial coloring, then a color-class sweep."""

    name = "mis-color-classes"
    randomized = False

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        coloring_run = LinialColoringSolver().solve(instance)
        colors = [coloring_run.outputs.node(v) for v in graph.nodes()]
        palette = max(colors, default=0) + 1
        members: set[int] = set()
        blocked: set[int] = set()
        # one synchronous round per color class; same-class nodes are
        # non-adjacent so their joint decision is conflict-free
        sweep_rounds = 0
        for c in range(palette):
            sweep_rounds += 1
            for v in graph.nodes():
                if colors[v] == c and v not in blocked and v not in members:
                    members.add(v)
                    for u in graph.neighbors(v):
                        if u != v:
                            blocked.add(u)
        total = [r + sweep_rounds for r in coloring_run.node_radius]
        return RunResult(
            outputs=mis_labeling(graph, members),
            node_radius=total,
            extras={
                "coloring_rounds": coloring_run.rounds,
                "sweep_rounds": sweep_rounds,
                "set_size": len(members),
            },
        )


@register_solver(
    "mis-luby",
    problem="mis",
    families=_MIS_FAMILIES,
    description="Luby's randomized marking rounds",
)
class LubyMisSolver:
    """Luby's randomized MIS (O(log n) rounds w.h.p.)."""

    name = "mis-luby"
    randomized = True

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        rng = instance.require_rng()
        undecided = set(graph.nodes())
        members: set[int] = set()
        rounds = 0
        node_radius = [0] * graph.num_nodes
        while undecided:
            rounds += 1
            marks = {
                v: rng.for_node(v).random() for v in undecided
            }
            joined = []
            for v in undecided:
                neighbors = [
                    u for u in graph.neighbors(v) if u in undecided and u != v
                ]
                if all(
                    (marks[v], instance.ids.of(v)) < (marks[u], instance.ids.of(u))
                    for u in neighbors
                ):
                    joined.append(v)
            for v in joined:
                members.add(v)
                undecided.discard(v)
                for u in graph.neighbors(v):
                    undecided.discard(u)
            if rounds > 64 * max(graph.num_nodes, 2):
                raise RuntimeError("Luby did not converge")  # pragma: no cover
        for v in graph.nodes():
            node_radius[v] = rounds
        return RunResult(
            outputs=mis_labeling(graph, members),
            node_radius=node_radius,
            extras={"luby_rounds": rounds, "set_size": len(members)},
        )
