"""Proper vertex coloring: ne-LCL and the deterministic Linial solver.

``VertexColoring(k)`` is the classic (Delta+1)-coloring LCL from the
paper's preliminaries.  The solver runs genuinely round-by-round on the
synchronous engine: identifiers seed the initial proper coloring, each
Linial step shrinks the palette (O(log* n) rounds), and a final
color-class elimination walks the palette down to the target size
(O(Delta^2 polylog Delta) rounds, constant in n).
"""

from __future__ import annotations

from repro.lcl.assignment import Labeling
from repro.lcl.labels import EMPTY, LabelSet
from repro.lcl.problem import EdgeConfiguration, NeLCL, NodeConfiguration
from repro.local.algorithm import Instance, RunResult
from repro.local.simulator import SyncEngine
from repro.problems.linial import reduce_color, reduction_schedule
from repro.runtime.registry import register_problem, register_solver

__all__ = ["VertexColoring", "LinialColoringSolver", "proper_coloring_labeling"]


class VertexColoring:
    """Factory for the proper k-coloring ne-LCL.

    Self-loops are exempt from the difference constraint (a looped node
    could never be properly colored); parallel edges behave like single
    edges.  This keeps the problem total on the paper's graph class.
    """

    def __init__(self, num_colors: int):
        if num_colors < 1:
            raise ValueError("need at least one color")
        self.num_colors = num_colors

    def problem(self) -> NeLCL:
        palette = LabelSet("colors", frozenset(range(self.num_colors)))

        def node_ok(cfg: NodeConfiguration) -> bool:
            return cfg.node_output in palette

        def edge_ok(cfg: EdgeConfiguration) -> bool:
            if cfg.is_loop:
                return True
            return cfg.node_outputs[0] != cfg.node_outputs[1]

        return NeLCL(
            name=f"{self.num_colors}-coloring",
            node_constraint=node_ok,
            edge_constraint=edge_ok,
            node_outputs=palette,
            edge_symmetric=True,
            description=f"proper vertex coloring with {self.num_colors} colors",
            metadata={"num_colors": self.num_colors},
        )


def proper_coloring_labeling(graph, colors: list[int]) -> Labeling:
    labeling = Labeling(graph)
    for v, color in enumerate(colors):
        labeling.set_node(v, color)
    return labeling


class _LinialNode:
    """One node of the engine-based Linial algorithm."""

    def __init__(self, v: int, instance: Instance, schedule, target: int, id_space: int):
        self.v = v
        self.graph = instance.graph
        self.degree = self.graph.degree(v)
        self.color = instance.ids.of(self.v) - 1  # palette [id_space]
        self.schedule = schedule
        self.target = target
        self.palette_after = schedule[-1][0] ** 2 if schedule else id_space
        self.phase_splits = len(schedule)
        self.total_rounds = len(schedule) + max(self.palette_after - target, 0)
        self.round = 0
        self.done = self.total_rounds == 0

    def outgoing(self, round_index):
        if self.done:
            return None
        return [self.color] * self.degree

    def receive(self, round_index, inbox):
        # With multigraphs a node may hear itself through a self-loop;
        # self-colors are ignored (the coloring constraint exempts loops).
        neighbor_colors = [
            c for port, c in enumerate(inbox)
            if c is not None and self.graph.neighbor(self.v, port) != self.v
        ]
        if self.round < self.phase_splits:
            q, d = self.schedule[self.round]
            self.color = reduce_color(self.color, neighbor_colors, q, d)
        else:
            # Eliminate the highest remaining class this round.
            eliminated = self.palette_after - 1 - (self.round - self.phase_splits)
            if self.color == eliminated:
                taken = set(neighbor_colors)
                self.color = min(c for c in range(self.target) if c not in taken)
        self.round += 1
        if self.round >= self.total_rounds:
            self.done = True

    def result(self):
        return self.color


class LinialColoringSolver:
    """Deterministic O(log* n)-round proper coloring on the sync engine."""

    name = "linial-coloring"
    randomized = False

    def __init__(self, num_colors: int | None = None):
        """``num_colors=None`` targets Delta + 1 (computed per instance)."""
        self.num_colors = num_colors

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        delta = max(graph.max_degree, 1)
        target = self.num_colors if self.num_colors is not None else delta + 1
        if target < delta + 1:
            raise ValueError(
                f"{target} colors cannot properly color max degree {delta} "
                "graphs in general"
            )
        id_space = max(instance.ids.max_id(), target)
        schedule = reduction_schedule(id_space, delta)
        # Drop schedule steps that are already at or below the target.
        schedule = [
            (q, d) for q, d in schedule if q * q > target
        ] or schedule[:1] if schedule else []

        def factory(v: int, inst: Instance):
            return _LinialNode(v, inst, schedule, target, id_space)

        def array_program():
            from repro.kernels.programs import LinialProgram

            return LinialProgram(schedule, target, id_space)

        engine = SyncEngine(instance, factory, array_program=array_program)
        run = engine.run()
        outputs = proper_coloring_labeling(graph, run.results)
        return RunResult(
            outputs=outputs,
            node_radius=run.node_radius(),
            extras={
                "linial_rounds": len(schedule),
                "elimination_rounds": run.rounds - len(schedule),
                "palette_after_linial": schedule[-1][0] ** 2 if schedule else id_space,
            },
        )


# The landscape's proper-coloring row: 4 colors cover every registered
# family of maximum degree <= 3; the solver is Linial's reduction with
# the palette pinned at 4.
register_problem(
    "4-coloring",
    description="proper vertex coloring with 4 colors (Delta <= 3)",
    max_degree=3,
    paper_det="Theta(log* n)",
    paper_rand="Theta(log* n)",
)(lambda: VertexColoring(4))

register_solver(
    "linial-4-coloring",
    problem="4-coloring",
    families=("cycle", "path", "tree", "cubic", "high-girth-cubic"),
    randomized=False,
    description="Linial color reduction to a fixed 4-color palette",
)(lambda: LinialColoringSolver(num_colors=4))
