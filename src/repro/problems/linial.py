"""Linial's color reduction via polynomial cover-free families.

The deterministic O(log* n) algorithms (3-coloring cycles, (Delta+1)
coloring of bounded-degree graphs) rest on one primitive: given a
proper k-coloring, compute a proper coloring with a much smaller
palette in a single communication round.

Linial's construction uses a *Delta-cover-free family*: sets
``S(0..k-1)`` over a ground set ``[q^2]`` such that no set is covered
by the union of any ``Delta`` others.  With ``S(c)`` the graph of a
degree-``d`` polynomial over GF(q) (q prime, q > Delta * d), two
distinct polynomials intersect in at most ``d`` points, so a node with
color ``c`` can always pick a point of ``S(c)`` hit by none of its
neighbors' sets.  One round reduces ``k`` colors to ``q^2 =
O((Delta log k)^2)`` colors; iterating reaches a palette of size
poly(Delta) in ``O(log* k)`` rounds.
"""

from __future__ import annotations

from repro.util.logmath import ceil_log2

__all__ = [
    "is_prime",
    "next_prime",
    "polynomial_family_params",
    "polynomial_set",
    "reduce_color",
    "reduction_schedule",
]


def is_prime(x: int) -> bool:
    if x < 2:
        return False
    if x % 2 == 0:
        return x == 2
    f = 3
    while f * f <= x:
        if x % f == 0:
            return False
        f += 2
    return True


def next_prime(x: int) -> int:
    """The smallest prime >= x."""
    candidate = max(x, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def polynomial_family_params(k: int, delta: int) -> tuple[int, int]:
    """Choose ``(q, d)`` for a Delta-cover-free family of size >= k.

    Requirements: ``q`` prime, ``q**(d+1) >= k`` (one polynomial per
    color) and ``q > delta * d`` (cover-freeness).  The search minimizes
    the new palette size ``q**2``.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if delta < 1:
        raise ValueError("delta must be positive")
    best: tuple[int, int] | None = None
    # d up to log2 k suffices: q >= 2 gives q**(d+1) >= 2**(d+1).
    for d in range(1, ceil_log2(max(k, 2)) + 2):
        # smallest prime q satisfying both constraints
        q_floor = max(delta * d + 1, 2)
        q = next_prime(q_floor)
        while q ** (d + 1) < k:
            q = next_prime(q + 1)
        if best is None or q * q < best[0] ** 2:
            best = (q, d)
    assert best is not None
    return best


def polynomial_set(color: int, q: int, d: int) -> list[int]:
    """The set S(color): the graph of the color's polynomial over GF(q).

    The color index written base q gives the d+1 coefficients; the set
    contains ``x * q + p(x)`` for every ``x`` in GF(q).
    """
    coefficients = []
    value = color
    for _ in range(d + 1):
        coefficients.append(value % q)
        value //= q
    points = []
    for x in range(q):
        acc = 0
        power = 1
        for coefficient in coefficients:
            acc = (acc + coefficient * power) % q
            power = (power * x) % q
        points.append(x * q + acc)
    return points


def reduce_color(color: int, neighbor_colors: list[int], q: int, d: int) -> int:
    """One Linial step: a palette-[q^2] color distinct from all neighbors'.

    Correct whenever the input coloring is proper, the neighbor count is
    at most ``(q - 1) // d``, and all colors are below ``q**(d+1)``.
    """
    own = polynomial_set(color, q, d)
    blocked: set[int] = set()
    for other in neighbor_colors:
        if other == color:
            raise ValueError("reduce_color requires a proper input coloring")
        blocked.update(polynomial_set(other, q, d))
    for point in own:
        if point not in blocked:
            return point
    raise ValueError(
        f"cover-freeness violated: q={q}, d={d}, "
        f"{len(neighbor_colors)} neighbors"
    )


def reduction_schedule(k: int, delta: int) -> list[tuple[int, int]]:
    """The (q, d) parameters of each round until the palette stabilizes.

    Returns the list of per-round parameters; the final palette size is
    ``schedule[-1][0] ** 2``.  Its length is O(log* k), which the tests
    check against ``log_star``.
    """
    schedule: list[tuple[int, int]] = []
    palette = k
    for _ in range(64):
        q, d = polynomial_family_params(palette, delta)
        new_palette = q * q
        if new_palette >= palette:
            break
        schedule.append((q, d))
        palette = new_palette
    return schedule
