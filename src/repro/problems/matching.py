"""Maximal matching as an ne-LCL, with deterministic and randomized solvers.

Half-edge output: ``(edge_matched, i_am_matched, other_is_matched)``.
Edge constraints force the two halves to mirror each other; node
constraints force at most one matched incidence, consistency of the
"am matched" bit, and maximality (an unmatched node sees only matched
neighbors).

The deterministic solver colors the *line graph* with Linial's
algorithm and sweeps color classes; the randomized one is a Luby-style
proposal scheme on edges.
"""

from __future__ import annotations

import random

from repro.lcl.assignment import Labeling
from repro.lcl.labels import LabelSet
from repro.lcl.problem import EdgeConfiguration, NeLCL, NodeConfiguration
from repro.local.algorithm import Instance, RunResult
from repro.local.graphs import PortGraph
from repro.local.identifiers import IdAssignment
from repro.problems.coloring import LinialColoringSolver
from repro.runtime.registry import register_problem, register_solver

_MATCHING_FAMILIES = ("cycle", "path", "cubic", "torus", "high-girth-cubic")

__all__ = [
    "MaximalMatching",
    "line_graph",
    "ColorClassMatchingSolver",
    "LubyMatchingSolver",
    "matching_labeling",
]

_BITS = (0, 1)
_HALF = LabelSet(
    "matching-half", {(m, a, b) for m in _BITS for a in _BITS for b in _BITS}
)


@register_problem(
    "maximal-matching",
    description="maximal matching (no two matched edges share a node)",
    paper_det="Theta(log* n)",
    paper_rand="Theta(log* n)",
)
class MaximalMatching:
    """Factory for the maximal-matching ne-LCL (loops never matched)."""

    def problem(self) -> NeLCL:
        def node_ok(cfg: NodeConfiguration) -> bool:
            matched_ports = [
                p for p in cfg.ports() if cfg.half_outputs[p][0] == 1
            ]
            own = {cfg.half_outputs[p][1] for p in cfg.ports()}
            if len(own) > 1:
                return False
            am_matched = own.pop() if own else 0
            if am_matched != (1 if matched_ports else 0):
                return False
            if len(matched_ports) > 1:
                return False
            if cfg.degree > 0 and am_matched == 0:
                # maximality: every neighbor across a real (non-loop)
                # edge must be matched
                return all(
                    cfg.half_outputs[p][2] == 1
                    for p in cfg.ports()
                    if not cfg.loop_ports[p]
                )
            return True

        def edge_ok(cfg: EdgeConfiguration) -> bool:
            (m1, a1, b1), (m2, a2, b2) = cfg.half_outputs
            if m1 != m2:
                return False
            if cfg.is_loop:
                return m1 == 0 and a1 == b1 == a2 == b2
            if a1 != b2 or a2 != b1:
                return False
            if m1 == 1 and not (a1 == 1 and a2 == 1):
                return False
            return True

        return NeLCL(
            name="maximal-matching",
            node_constraint=node_ok,
            edge_constraint=edge_ok,
            half_outputs=_HALF,
            edge_symmetric=True,
            description="maximal matching (no two matched edges share a node)",
        )


def matching_labeling(graph: PortGraph, matched_edges: set[int]) -> Labeling:
    """Encode a matching (set of edge ids) into the output format."""
    node_matched = [0] * graph.num_nodes
    for eid in matched_edges:
        edge = graph.edge(eid)
        node_matched[edge.a.node] = 1
        node_matched[edge.b.node] = 1
    labeling = Labeling(graph)
    for edge in graph.edges():
        m = 1 if edge.eid in matched_edges else 0
        a, b = edge.a.node, edge.b.node
        labeling.set_half(edge.a, (m, node_matched[a], node_matched[b]))
        labeling.set_half(edge.b, (m, node_matched[b], node_matched[a]))
    return labeling


def line_graph(graph: PortGraph) -> PortGraph:
    """The line graph: one node per edge, adjacency = shared endpoint.

    Self-loops of the base graph become isolated line-graph nodes (they
    are never matchable); parallel base edges become adjacent line
    nodes.  Each shared endpoint contributes exactly one line edge.
    """
    pairs = []
    for v in graph.nodes():
        incident = sorted({graph.edge_id_at(v, p) for p in range(graph.degree(v))})
        incident = [e for e in incident if not graph.edge(e).is_loop]
        for i, e1 in enumerate(incident):
            for e2 in incident[i + 1 :]:
                pairs.append((e1, e2))
    return PortGraph.from_edge_list(graph.num_edges, pairs)


@register_solver(
    "matching-line-coloring",
    problem="maximal-matching",
    families=_MATCHING_FAMILIES,
    description="Linial coloring of the line graph, then a class sweep",
)
class ColorClassMatchingSolver:
    """Deterministic maximal matching via line-graph coloring."""

    name = "matching-line-coloring"
    randomized = False

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        if graph.num_edges == 0:
            return RunResult(matching_labeling(graph, set()), [0] * graph.num_nodes)
        lg = line_graph(graph)
        # Identifier of a line node = identifier pair of its endpoints,
        # flattened injectively; communication on the line graph costs a
        # constant factor on the base graph, accounted below.
        base = instance.ids.max_id() + 1
        line_ids = []
        for edge in graph.edges():
            lo, hi = sorted(
                (instance.ids.of(edge.a.node), instance.ids.of(edge.b.node))
            )
            line_ids.append(lo * base + hi + 1)
        line_instance = Instance(
            lg, IdAssignment(line_ids), None, None, instance.rng
        )
        coloring_run = LinialColoringSolver().solve(line_instance)
        colors = [coloring_run.outputs.node(e) for e in lg.nodes()]
        palette = max(colors, default=0) + 1
        matched: set[int] = set()
        node_matched = [False] * graph.num_nodes
        sweep_rounds = 0
        for c in range(palette):
            sweep_rounds += 1
            for eid in range(graph.num_edges):
                edge = graph.edge(eid)
                if colors[eid] != c or edge.is_loop:
                    continue
                if not node_matched[edge.a.node] and not node_matched[edge.b.node]:
                    matched.add(eid)
                    node_matched[edge.a.node] = True
                    node_matched[edge.b.node] = True
        line_rounds = coloring_run.rounds
        total_rounds = 2 * line_rounds + sweep_rounds + 1
        return RunResult(
            outputs=matching_labeling(graph, matched),
            node_radius=[total_rounds] * graph.num_nodes,
            extras={
                "line_coloring_rounds": line_rounds,
                "sweep_rounds": sweep_rounds,
                "matching_size": len(matched),
            },
        )


@register_solver(
    "matching-luby",
    problem="maximal-matching",
    families=_MATCHING_FAMILIES,
    description="randomized Luby-style edge proposals",
)
class LubyMatchingSolver:
    """Randomized maximal matching by iterated edge proposals."""

    name = "matching-luby"
    randomized = True

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        rng = instance.require_rng()
        stream = rng.global_stream()
        live = {e.eid for e in graph.edges() if not e.is_loop}
        matched: set[int] = set()
        node_matched = [False] * graph.num_nodes
        rounds = 0
        while live:
            rounds += 1
            marks = {eid: stream.random() for eid in live}
            for eid in sorted(live):
                edge = graph.edge(eid)
                a, b = edge.a.node, edge.b.node
                competitors = set()
                for v in (a, b):
                    for port in range(graph.degree(v)):
                        other = graph.edge_id_at(v, port)
                        if other in live and other != eid:
                            competitors.add(other)
                if all(marks[eid] < marks[c] for c in competitors):
                    if not node_matched[a] and not node_matched[b]:
                        matched.add(eid)
                        node_matched[a] = True
                        node_matched[b] = True
            live = {
                eid
                for eid in live
                if eid not in matched
                and not node_matched[graph.edge(eid).a.node]
                and not node_matched[graph.edge(eid).b.node]
            }
            if rounds > 64 * max(graph.num_edges, 2):  # pragma: no cover
                raise RuntimeError("matching proposals did not converge")
        return RunResult(
            outputs=matching_labeling(graph, matched),
            node_radius=[rounds] * graph.num_nodes,
            extras={"proposal_rounds": rounds, "matching_size": len(matched)},
        )
