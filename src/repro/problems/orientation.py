"""Edge orientations and the augmenting-path deficiency fixer.

Both sinkless-orientation solvers share this machinery:

* :class:`Orientation` — a total assignment of a direction to every
  edge, tracked by the *tail* half-edge (the side labeled ``out``).
* :func:`fix_deficient` — repairs nodes that ended up with out-degree
  zero by reversing a directed path into the node from a *donor*
  (a node that can spare an out-edge).  Reversing a simple directed
  path ``u -> w_1 -> ... -> v`` gives ``v`` an out-edge, keeps every
  intermediate node's out-degree unchanged, and costs the donor ``u``
  one out-edge.

Donor existence is guaranteed on every input: if the backward closure
``S`` of a deficient node contained no donor, every non-exempt node of
``S`` would have out-degree at most 1 and in-degree at least 2, and all
in-edges of ``S`` would originate inside ``S``; counting edges with
head in ``S`` then gives ``2|S_ne| + |S_ex| <= |S_ne|``, which is
impossible because the deficient node itself is non-exempt.  (See
DESIGN.md; tested by failure-injection tests.)
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from repro.lcl.assignment import Labeling
from repro.lcl.labels import EMPTY
from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["OUT", "IN", "Orientation", "fix_deficient", "FixReport"]

OUT = "out"
IN = "in"


class Orientation:
    """A direction for every edge of a graph, mutable via reversal."""

    def __init__(self, graph: PortGraph, tails: dict[int, HalfEdge]):
        self.graph = graph
        if set(tails) != set(range(graph.num_edges)):
            raise ValueError("an orientation must direct every edge")
        self._tail: list[HalfEdge] = [None] * graph.num_edges  # type: ignore
        self._out_degree = [0] * graph.num_nodes
        for eid, tail in tails.items():
            edge = graph.edge(eid)
            if tail not in (edge.a, edge.b):
                raise ValueError(f"half-edge {tail} does not belong to edge {eid}")
            self._tail[eid] = tail
            self._out_degree[tail.node] += 1

    # -- construction -----------------------------------------------------------

    @classmethod
    def by_lower_id(cls, graph: PortGraph, ids) -> "Orientation":
        """Canonical orientation: tail = endpoint with the smaller id.

        Self-loops use the lower port as tail (any choice gives the node
        an out-edge).
        """
        tails = {}
        for edge in graph.edges():
            if edge.is_loop or ids.of(edge.a.node) < ids.of(edge.b.node):
                tails[edge.eid] = edge.a
            else:
                tails[edge.eid] = edge.b
        return cls(graph, tails)

    @classmethod
    def by_coin_flips(cls, graph: PortGraph, rng: random.Random) -> "Orientation":
        """Independent fair coin per edge (the randomized first round)."""
        tails = {}
        for edge in graph.edges():
            tails[edge.eid] = edge.a if rng.random() < 0.5 else edge.b
        return cls(graph, tails)

    # -- queries ---------------------------------------------------------------

    def tail(self, eid: int) -> HalfEdge:
        return self._tail[eid]

    def head(self, eid: int) -> HalfEdge:
        return self.graph.edge(eid).other_side(self._tail[eid])

    def out_degree(self, v: int) -> int:
        return self._out_degree[v]

    def points_out_of(self, eid: int, v: int) -> bool:
        """Whether edge ``eid`` contributes an out-edge to node ``v``."""
        return self._tail[eid].node == v

    def in_edge_ids(self, v: int) -> list[int]:
        """Edges whose head is ``v`` (for self-loops both sides count)."""
        result = []
        for port in range(self.graph.degree(v)):
            eid = self.graph.edge_id_at(v, port)
            if self.head(eid) == HalfEdge(v, port):
                result.append(eid)
        return result

    def out_edge_ids(self, v: int) -> list[int]:
        result = []
        for port in range(self.graph.degree(v)):
            eid = self.graph.edge_id_at(v, port)
            if self.tail(eid) == HalfEdge(v, port):
                result.append(eid)
        return result

    # -- mutation ---------------------------------------------------------------

    def reverse(self, eid: int) -> None:
        old_tail = self._tail[eid]
        new_tail = self.graph.edge(eid).other_side(old_tail)
        self._tail[eid] = new_tail
        self._out_degree[old_tail.node] -= 1
        self._out_degree[new_tail.node] += 1

    def reverse_path(self, eids: list[int]) -> None:
        for eid in eids:
            self.reverse(eid)

    # -- export -----------------------------------------------------------------

    def to_labeling(self) -> Labeling:
        """Half-edge labels ``out``/``in``; nodes and edges stay EMPTY."""
        labeling = Labeling(self.graph)
        for eid in range(self.graph.num_edges):
            edge = self.graph.edge(eid)
            tail = self._tail[eid]
            labeling.set_half(tail, OUT)
            labeling.set_half(edge.other_side(tail), IN)
        return labeling

    @classmethod
    def from_labeling(cls, graph: PortGraph, labeling: Labeling) -> "Orientation":
        tails = {}
        for edge in graph.edges():
            a_label = labeling.half(edge.a)
            b_label = labeling.half(edge.b)
            if {a_label, b_label} != {OUT, IN}:
                raise ValueError(
                    f"edge {edge.eid} is not consistently oriented: "
                    f"{a_label!r}/{b_label!r}"
                )
            tails[edge.eid] = edge.a if a_label == OUT else edge.b
        return cls(graph, tails)


class FixReport:
    """Accounting of one :func:`fix_deficient` run."""

    def __init__(self) -> None:
        self.batches = 0
        self.paths_reversed = 0
        self.max_path_length = 0
        self.touched: dict[int, int] = {}  # node -> radius charged

    def charge(self, node: int, radius: int) -> None:
        if radius > self.touched.get(node, 0):
            self.touched[node] = radius


def _backward_path_to_donor(
    graph: PortGraph,
    orientation: Orientation,
    start: int,
    is_donor: Callable[[int], bool],
    neighbor_order: Callable[[list[int]], list[int]],
    max_depth: int,
) -> list[int] | None:
    """Shortest directed path (edge ids, donor-first) into ``start``.

    Walks backward over in-edges of the current orientation; the
    returned list of edge ids is ordered from the donor toward
    ``start`` so that reversing them in order flips the whole path.
    """
    parent_edge: dict[int, int] = {start: -1}
    frontier = deque([(start, 0)])
    while frontier:
        x, depth = frontier.popleft()
        if depth >= max_depth:
            continue
        in_edges = neighbor_order(orientation.in_edge_ids(x))
        for eid in in_edges:
            pred = orientation.tail(eid).node
            if pred in parent_edge:
                continue
            parent_edge[pred] = eid
            if is_donor(pred):
                # reconstruct: walk from pred back to start
                path = []
                node = pred
                while node != start:
                    eid_step = parent_edge[node]
                    path.append(eid_step)
                    node = orientation.head(eid_step).node
                return path
            frontier.append((pred, depth + 1))
    return None


def fix_deficient(
    graph: PortGraph,
    orientation: Orientation,
    exempt_below: int,
    priority: Callable[[int], object],
    rng: random.Random | None = None,
) -> FixReport:
    """Give every node of degree >= ``exempt_below`` an out-edge.

    Deficient nodes are processed in synchronous batches (mirroring a
    parallel execution): in each batch every still-deficient node finds
    its shortest backward path to a donor; paths are applied in
    ``priority`` order, skipping nodes that became satisfied.  The
    report charges every touched node a radius of path length + 1.

    ``rng`` randomizes the in-edge exploration order (the randomized
    solver); ``None`` keeps the deterministic edge order.
    """
    report = FixReport()

    def is_exempt(v: int) -> bool:
        return graph.degree(v) < exempt_below

    def is_donor(v: int) -> bool:
        if orientation.out_degree(v) >= 2:
            return True
        return is_exempt(v) and orientation.out_degree(v) >= 1

    def neighbor_order(eids: list[int]) -> list[int]:
        if rng is None:
            return sorted(eids)
        shuffled = list(eids)
        rng.shuffle(shuffled)
        return shuffled

    deficient = [
        v
        for v in graph.nodes()
        if not is_exempt(v) and orientation.out_degree(v) == 0
    ]
    max_depth = graph.num_nodes + 1
    guard = 0
    while deficient:
        guard += 1
        if guard > graph.num_nodes + 10:
            raise RuntimeError("deficiency fixing did not converge")
        report.batches += 1
        batch = sorted(deficient, key=priority)
        next_round: list[int] = []
        for v in batch:
            if orientation.out_degree(v) > 0:
                continue
            path = _backward_path_to_donor(
                graph, orientation, v, is_donor, neighbor_order, max_depth
            )
            if path is None:
                raise RuntimeError(
                    f"no donor reachable from deficient node {v}; "
                    "this contradicts the counting argument - file a bug"
                )
            orientation.reverse_path(path)
            report.paths_reversed += 1
            report.max_path_length = max(report.max_path_length, len(path))
            radius = len(path) + 1
            report.charge(v, radius)
            for eid in path:
                edge = graph.edge(eid)
                report.charge(edge.a.node, radius)
                report.charge(edge.b.node, radius)
        for v in batch:
            if orientation.out_degree(v) == 0:
                next_round.append(v)
        deficient = next_round
    return report
