"""3-coloring of cycles: the classic Theta(log* n) LCL (Figure 1).

On graphs of maximum degree 2 (disjoint paths and cycles), computing a
proper 3-coloring takes Theta(log* n) rounds deterministically
(Cole-Vishkin / Linial) and randomness does not help (Naor's Omega(log* n)
randomized lower bound).  The solver here is the Linial reduction
specialized to Delta = 2; the "randomized complexity" of this problem
in the landscape is measured by running the same algorithm, which *is*
the optimal randomized algorithm.

Odd cycles of length 1 or 2 (a self-loop, a parallel pair) degenerate;
the loop-exemption of :class:`VertexColoring` keeps the problem total.
"""

from __future__ import annotations

from repro.lcl.problem import NeLCL
from repro.local.algorithm import Instance, RunResult
from repro.problems.coloring import LinialColoringSolver, VertexColoring
from repro.runtime.registry import register_problem, register_solver

__all__ = ["ThreeColoringCycles", "cole_vishkin_solver", "CycleColoringSolver"]


@register_problem(
    "3-coloring-cycles",
    description="proper 3-coloring of paths and cycles",
    max_degree=2,
    paper_det="Theta(log* n)",
    paper_rand="Theta(log* n)",
)
class ThreeColoringCycles:
    """Factory for the 3-coloring LCL restricted to degree <= 2 graphs.

    The degree restriction is expressed inside the node constraint:
    configurations of degree >= 3 reject, which encodes the promise-free
    version "color with 3 colors or the graph is not a cycle/path
    collection" used by the landscape experiments.
    """

    def problem(self) -> NeLCL:
        base = VertexColoring(3).problem()

        def node_ok(cfg):
            if cfg.degree > 2:
                return False
            return base.node_constraint(cfg)

        return NeLCL(
            name="3-coloring-cycles",
            node_constraint=node_ok,
            edge_constraint=base.edge_constraint,
            node_outputs=base.node_outputs,
            edge_symmetric=True,
            description="proper 3-coloring of paths and cycles",
            metadata={"max_degree": 2},
        )


@register_solver(
    "cycle-3-coloring",
    problem="3-coloring-cycles",
    families=("cycle", "path"),
    description="Cole-Vishkin / Linial reduction at Delta = 2",
)
class CycleColoringSolver:
    """Linial reduction at Delta = 2, target palette 3."""

    name = "cycle-3-coloring"
    randomized = False

    def solve(self, instance: Instance) -> RunResult:
        if instance.graph.max_degree > 2:
            raise ValueError("cycle coloring requires maximum degree 2")
        return LinialColoringSolver(num_colors=3).solve(instance)


def cole_vishkin_solver() -> CycleColoringSolver:
    """The deterministic Theta(log* n) cycle-coloring solver."""
    return CycleColoringSolver()
