"""Classic LCL problems and their solvers (the blue dots of Figure 1)."""

from repro.problems.coloring import LinialColoringSolver, VertexColoring
from repro.problems.cycle_coloring import (
    CycleColoringSolver,
    ThreeColoringCycles,
    cole_vishkin_solver,
)
from repro.problems.matching import (
    ColorClassMatchingSolver,
    LubyMatchingSolver,
    MaximalMatching,
    line_graph,
)
from repro.problems.mis import (
    ColorClassMisSolver,
    LubyMisSolver,
    MaximalIndependentSet,
)
from repro.problems.orientation import IN, OUT, Orientation, fix_deficient
from repro.problems.sinkless import SinklessOrientation, sinkless_orientation
from repro.problems.sinkless_solvers import (
    DeterministicSinklessSolver,
    RandomizedSinklessSolver,
    anchor_scan,
)
from repro.problems.trivial import (
    ConstantLabelProblem,
    ConstantSolver,
    ParityOfDegreeProblem,
    ParitySyncSolver,
    ParityViewSolver,
)

__all__ = [
    "LinialColoringSolver",
    "VertexColoring",
    "CycleColoringSolver",
    "ThreeColoringCycles",
    "cole_vishkin_solver",
    "ColorClassMatchingSolver",
    "LubyMatchingSolver",
    "MaximalMatching",
    "line_graph",
    "ColorClassMisSolver",
    "LubyMisSolver",
    "MaximalIndependentSet",
    "IN",
    "OUT",
    "Orientation",
    "fix_deficient",
    "SinklessOrientation",
    "sinkless_orientation",
    "DeterministicSinklessSolver",
    "RandomizedSinklessSolver",
    "anchor_scan",
    "ConstantLabelProblem",
    "ConstantSolver",
    "ParityOfDegreeProblem",
    "ParitySyncSolver",
    "ParityViewSolver",
]
