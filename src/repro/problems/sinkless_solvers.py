"""Solvers for sinkless orientation.

Two algorithms reproduce the base-problem separation of the paper
(deterministic Theta(log n) vs randomized Theta(log log n), see
Figure 1 and Section 5):

* :class:`DeterministicSinklessSolver` — every constrained node scans
  its neighborhood until it can certify an *anchor* (the first full
  cycle contained in its ball, or a nearer exempt low-degree node) and
  claims its first edge toward the anchor.  On locally tree-like
  instances the anchor radius is Theta(log n): balls of radius r are
  trees while 2^r << n, so no cycle closes earlier.
* :class:`RandomizedSinklessSolver` — one round of independent coin
  flips per edge, then the shattering repair: each residual sink finds
  the nearest donor through a backward search.  The backward tree of a
  sink grows exponentially while donors appear with constant density,
  so the maximal repair distance over all sinks concentrates at
  Theta(log log n).

Both algorithms delegate correctness to the shared augmenting-path
fixer, so they are total on every multigraph: self-loops, parallel
edges, disconnected inputs, and arbitrary degree patterns are all
handled (degree < exempt_below nodes are exempt but still orient their
edges consistently).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro import kernels
from repro.local.algorithm import Instance, RunResult
from repro.local.graphs import HalfEdge, PortGraph
from repro.problems.orientation import Orientation, fix_deficient
from repro.runtime.registry import register_solver

_SINKLESS_FAMILIES = ("cubic", "high-girth-cubic", "torus")

__all__ = [
    "DeterministicSinklessSolver",
    "RandomizedSinklessSolver",
    "AnchorScan",
    "anchor_scan",
]


@dataclass
class AnchorScan:
    """Result of one node's anchor search.

    ``radius`` is the view radius the node needed; ``claim_eid`` the
    edge the node wants to orient outward (None when no claim is made,
    e.g. the anchor is a self-loop at the node itself).
    """

    radius: int
    kind: str  # "exempt" | "cycle" | "loop"
    claim_eid: int | None
    claim_tail: HalfEdge | None


def anchor_scan(
    graph: PortGraph, ids, v: int, exempt_below: int, tables=None
) -> AnchorScan:
    """Scan outward from ``v`` until an anchor certifies an out-edge.

    The scan explores neighbors in increasing-identifier order so the
    outcome is a deterministic function of the view, independent of
    internal storage order.  Anchors, in order of discovery:

    * an *exempt* node (degree < exempt_below) — claim the first edge of
      the backtracked shortest path toward it;
    * a *self-loop* — by convention a cycle of length 1;
    * a *cycle*, certified by the first non-tree edge whose endpoints
      are both explored — claim the first edge toward the endpoint that
      was discovered first (or the non-tree edge itself if that endpoint
      is ``v``).

    ``tables``, if given, is :func:`repro.kernels.vector.scan_order`'s
    pre-sorted ``(offsets, neighbors, eids)`` triple: each node's ports
    already in increasing ``(identifier of neighbor, port)`` order.
    Passing it removes the per-visited-node ``sorted`` and accessor
    calls — the solver's dominant cost — without changing a single
    visit: the pairs iterated are exactly the sorted loop's.
    """
    # parent[x] = (predecessor node, eid used); center marked specially
    parent: dict[int, tuple[int, int]] = {v: (-2, -1)}
    depth = {v: 0}
    queue = deque([v])

    def claim_toward(target: int) -> tuple[int | None, HalfEdge | None]:
        if target == v:
            return None, None
        node = target
        while True:
            pred, eid = parent[node]
            if pred == v:
                edge = graph.edge(eid)
                side = edge.a if edge.a.node == v else edge.b
                # for a loop both sides are v; take the tail actually used
                return eid, side
            node = pred

    while queue:
        x = queue.popleft()
        d = depth[x]
        if graph.degree(x) < exempt_below and x != v:
            eid, tail = claim_toward(x)
            return AnchorScan(radius=d, kind="exempt", claim_eid=eid, claim_tail=tail)
        # scan x's ports in increasing neighbor-id order (then port)
        if tables is not None:
            t_off, t_nbr, t_eid = tables
            base, end = t_off[x], t_off[x + 1]
            pairs = zip(t_nbr[base:end], t_eid[base:end])
        else:
            ports = sorted(
                range(graph.degree(x)),
                key=lambda p: (ids.of(graph.neighbor(x, p)), p),
            )
            pairs = (
                (graph.neighbor(x, port), graph.edge_id_at(x, port))
                for port in ports
            )
        for u, eid in pairs:
            if u == x:
                # self-loop: a cycle at distance d
                if x == v:
                    side = graph.edge(eid).a
                    return AnchorScan(d, "loop", eid, side)
                claim, tail = claim_toward(x)
                return AnchorScan(d, "loop", claim, tail)
            if u not in depth:
                depth[u] = d + 1
                parent[u] = (x, eid)
                queue.append(u)
            elif parent[x][1] != eid and parent[u][1] != eid:
                # non-tree edge: a cycle is contained in the ball of
                # radius max(depth[x], depth[u])
                radius = max(d, depth[u])
                closer = x if depth[x] <= depth[u] else u
                if closer == v:
                    edge = graph.edge(eid)
                    side = edge.a if edge.a.node == v else edge.b
                    return AnchorScan(radius, "cycle", eid, side)
                claim, tail = claim_toward(closer)
                return AnchorScan(radius, "cycle", claim, tail)
    # no anchor: the component is a tree whose nodes all have degree
    # >= exempt_below at v's side -- impossible for finite graphs, but
    # a component that is a single high-degree star of constrained
    # nodes cannot happen either; reaching here means the component has
    # no cycle and no exempt node, i.e. it is a tree of min degree >= 3,
    # which cannot exist.  Guard loudly.
    raise RuntimeError(
        f"node {v}: component has neither a cycle nor an exempt node; "
        "such a finite graph cannot exist"
    )


@register_solver(
    "sinkless-det",
    problem="sinkless-orientation",
    families=_SINKLESS_FAMILIES,
    description="anchor scan + augmenting-path fixer, Theta(log n)",
)
class DeterministicSinklessSolver:
    """Anchor-claim deterministic algorithm (measured Theta(log n))."""

    name = "sinkless-det-anchor"
    randomized = False

    def __init__(self, exempt_below: int = 3):
        self.exempt_below = exempt_below

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        ids = instance.ids
        node_radius = [0] * graph.num_nodes
        claims: dict[int, HalfEdge] = {}  # eid -> desired tail
        conflicts = 0
        tables = None
        if kernels.vector_enabled():
            from repro.kernels import vector

            tables = vector.scan_order(graph, ids)
        for v in graph.nodes():
            if graph.degree(v) == 0:
                continue
            node_radius[v] = 1  # everyone at least exchanges orientations
            if graph.degree(v) < self.exempt_below:
                continue
            scan = anchor_scan(graph, ids, v, self.exempt_below, tables)
            node_radius[v] = max(node_radius[v], scan.radius + 1)
            if scan.claim_eid is None:
                continue
            tail = scan.claim_tail
            previous = claims.get(scan.claim_eid)
            if previous is None:
                claims[scan.claim_eid] = tail
            elif previous != tail:
                conflicts += 1
                # the smaller-identifier claimant wins
                if ids.of(tail.node) < ids.of(previous.node):
                    claims[scan.claim_eid] = tail
        tails = {}
        for edge in graph.edges():
            claimed = claims.get(edge.eid)
            if claimed is not None:
                tails[edge.eid] = claimed
            elif edge.is_loop or ids.of(edge.a.node) < ids.of(edge.b.node):
                tails[edge.eid] = edge.a
            else:
                tails[edge.eid] = edge.b
        orientation = Orientation(graph, tails)
        report = fix_deficient(
            graph,
            orientation,
            exempt_below=self.exempt_below,
            priority=lambda v: ids.of(v),
            rng=None,
        )
        for node, radius in report.touched.items():
            node_radius[node] = max(node_radius[node], radius)
        return RunResult(
            outputs=orientation.to_labeling(),
            node_radius=node_radius,
            extras={
                "claim_conflicts": conflicts,
                "fixer_batches": report.batches,
                "fixer_paths": report.paths_reversed,
                "fixer_max_path": report.max_path_length,
            },
        )


@register_solver(
    "sinkless-rand",
    problem="sinkless-orientation",
    families=_SINKLESS_FAMILIES,
    description="per-edge coin flips + shattering repair, Theta(loglog n)",
)
class RandomizedSinklessSolver:
    """Coin flips + shattering repair (measured Theta(log log n))."""

    name = "sinkless-rand-shatter"
    randomized = True

    def __init__(self, exempt_below: int = 3):
        self.exempt_below = exempt_below

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        ids = instance.ids
        rng = instance.require_rng()
        # Per-edge fair coins: each edge uses its own forked stream so the
        # outcome does not depend on iteration order.
        tails = {}
        for edge in graph.edges():
            stream = rng.for_node(graph.num_nodes + edge.eid)
            tails[edge.eid] = edge.a if stream.random() < 0.5 else edge.b
        orientation = Orientation(graph, tails)
        node_radius = [1 if graph.degree(v) > 0 else 0 for v in graph.nodes()]
        report = fix_deficient(
            graph,
            orientation,
            exempt_below=self.exempt_below,
            priority=lambda v: ids.of(v),
            rng=rng.global_stream(),
        )
        for node, radius in report.touched.items():
            node_radius[node] = max(node_radius[node], radius)
        return RunResult(
            outputs=orientation.to_labeling(),
            node_radius=node_radius,
            extras={
                "fixer_batches": report.batches,
                "fixer_paths": report.paths_reversed,
                "fixer_max_path": report.max_path_length,
            },
        )
