"""Trivial LCLs: the O(1) anchors of the complexity landscape."""

from __future__ import annotations

from repro.lcl.assignment import Labeling
from repro.lcl.labels import LabelSet
from repro.lcl.problem import NeLCL
from repro.local.algorithm import Instance, RunResult

__all__ = ["ConstantLabelProblem", "ConstantSolver", "ParityOfDegreeProblem"]


class ConstantLabelProblem:
    """Every node outputs the fixed label; always satisfiable in 0 rounds."""

    def __init__(self, label: str = "ok"):
        self.label = label

    def problem(self) -> NeLCL:
        label = self.label
        return NeLCL(
            name=f"constant({label})",
            node_constraint=lambda cfg: cfg.node_output == label,
            edge_constraint=lambda cfg: True,
            edge_symmetric=True,
            node_outputs=LabelSet("constant", {label}),
            description="the trivial LCL: output a fixed label",
        )


class ParityOfDegreeProblem:
    """Output your degree's parity; a 0-round but non-constant LCL."""

    def problem(self) -> NeLCL:
        return NeLCL(
            name="degree-parity",
            node_constraint=lambda cfg: cfg.node_output == cfg.degree % 2,
            edge_constraint=lambda cfg: True,
            edge_symmetric=True,
            node_outputs=LabelSet("parity", {0, 1}),
            description="label each node with deg(v) mod 2",
        )


class ConstantSolver:
    """Solves both trivial problems in zero rounds."""

    name = "constant"
    randomized = False

    def __init__(self, label: str | None = "ok", parity: bool = False):
        self.label = label
        self.parity = parity

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        outputs = Labeling(graph)
        for v in graph.nodes():
            outputs.set_node(v, graph.degree(v) % 2 if self.parity else self.label)
        return RunResult(outputs=outputs, node_radius=[0] * graph.num_nodes)
