"""Trivial LCLs: the O(1) anchors of the complexity landscape.

Besides the direct :class:`ConstantSolver`, this module registers one
solver per runtime execution path for the degree-parity problem — a
round-based node program (SyncEngine) and a view-based program
(ViewOracle) — so the driver's adapter is exercised by real catalog
entries, not just by the ``solve``-style solvers.
"""

from __future__ import annotations

from repro.lcl.assignment import Labeling
from repro.lcl.labels import LabelSet
from repro.lcl.problem import NeLCL
from repro.local.algorithm import Instance, RunResult
from repro.runtime.registry import register_problem, register_solver

__all__ = [
    "ConstantLabelProblem",
    "ConstantSolver",
    "ParityOfDegreeProblem",
    "ParitySyncSolver",
    "ParityViewSolver",
]

_ALL_FAMILIES = ("cycle", "path", "cubic", "torus", "tree", "high-girth-cubic")


@register_problem(
    "constant",
    description="every node outputs the fixed label 'ok'",
    paper_det="O(1)",
    paper_rand="O(1)",
)
class ConstantLabelProblem:
    """Every node outputs the fixed label; always satisfiable in 0 rounds."""

    def __init__(self, label: str = "ok"):
        self.label = label

    def problem(self) -> NeLCL:
        label = self.label
        return NeLCL(
            name=f"constant({label})",
            node_constraint=lambda cfg: cfg.node_output == label,
            edge_constraint=lambda cfg: True,
            edge_symmetric=True,
            node_outputs=LabelSet("constant", {label}),
            description="the trivial LCL: output a fixed label",
        )


@register_problem(
    "degree-parity",
    description="label each node with deg(v) mod 2",
    paper_det="O(1)",
    paper_rand="O(1)",
)
class ParityOfDegreeProblem:
    """Output your degree's parity; a 0-round but non-constant LCL."""

    def problem(self) -> NeLCL:
        return NeLCL(
            name="degree-parity",
            node_constraint=lambda cfg: cfg.node_output == cfg.degree % 2,
            edge_constraint=lambda cfg: True,
            edge_symmetric=True,
            node_outputs=LabelSet("parity", {0, 1}),
            description="label each node with deg(v) mod 2",
        )


@register_solver(
    "constant",
    problem="constant",
    families=_ALL_FAMILIES,
    description="output the fixed label everywhere, zero rounds",
)
class ConstantSolver:
    """Solves both trivial problems in zero rounds."""

    name = "constant"
    randomized = False

    def __init__(self, label: str | None = "ok", parity: bool = False):
        self.label = label
        self.parity = parity

    def solve(self, instance: Instance) -> RunResult:
        graph = instance.graph
        outputs = Labeling(graph)
        for v in graph.nodes():
            outputs.set_node(v, graph.degree(v) % 2 if self.parity else self.label)
        return RunResult(outputs=outputs, node_radius=[0] * graph.num_nodes)


register_solver(
    "parity",
    problem="degree-parity",
    families=_ALL_FAMILIES,
    randomized=False,
    description="direct zero-round parity labeling",
)(lambda: ConstantSolver(parity=True))


class _ParityNode:
    """A node program that halts immediately with its parity."""

    def __init__(self, v: int, instance: Instance):
        self.parity = instance.graph.degree(v) % 2

    def outgoing(self, round_index):
        return None  # zero-round algorithm: halt before sending anything

    def receive(self, round_index, inbox):  # pragma: no cover - never called
        raise AssertionError("a halted node receives nothing")

    def result(self):
        return self.parity


def _parity_array_program():
    from repro.kernels.programs import ParityProgram

    return ParityProgram()


@register_solver(
    "parity-sync",
    problem="degree-parity",
    families=_ALL_FAMILIES,
    randomized=False,
    description="parity as a round-based node program (SyncEngine path)",
    array_program=_parity_array_program,
)
class ParitySyncSolver:
    """Degree parity through the driver's SyncEngine adapter."""

    name = "parity-sync"
    randomized = False

    @staticmethod
    def node_factory(v: int, instance: Instance) -> _ParityNode:
        return _ParityNode(v, instance)

    @staticmethod
    def finish(instance: Instance, engine_result) -> Labeling:
        outputs = Labeling(instance.graph)
        for v, parity in enumerate(engine_result.results):
            outputs.set_node(v, parity)
        return outputs


@register_solver(
    "parity-views",
    problem="degree-parity",
    families=_ALL_FAMILIES,
    randomized=False,
    description="parity as a view-based program (ViewOracle path)",
)
class ParityViewSolver:
    """Degree parity through the driver's ViewOracle adapter."""

    name = "parity-views"
    randomized = False

    @staticmethod
    def run_views(oracle, instance: Instance) -> Labeling:
        outputs = Labeling(instance.graph)
        for v in instance.graph.nodes():
            view = oracle.view(v, 0)  # the radius-0 view suffices
            outputs.set_node(v, instance.graph.degree(view.center) % 2)
        return outputs
