"""Local checkability of gadgets: the constraints of Sections 4.2 and 4.3.

``check_node`` evaluates every constant-radius constraint at one node
and returns the violated constraint codes; a gadget component is valid
iff no node reports a violation (Lemmas 7 and 8).  The constraint
codes follow the paper's numbering:

* ``1a``–``1d``: basic consistency.  Constraint 1a (no self-loops or
  parallel edges) is realized through the distance-2 coloring input of
  Section 4.6: the checker verifies that the color is proper at
  distance 2 and replicated correctly on half-edges, which a loop or a
  parallel pair cannot satisfy.
* ``2a``–``2d``: internal tree structure (including the two
  constant-length commuting paths).
* ``3a``–``3h``: boundaries (level ends, root, bottom row, port).
* ``c1``, ``c2a``–``c2d``: the center and its Down/Up edges
  (Section 4.3).

Three conservative checks implied by validity are made explicit so
they get their own codes: ``alpha`` (label alphabets / well-formed
inputs), ``up-root`` (the Up edge exists exactly at parentless nodes),
and ``root-no-sides`` (roots have no horizontal edges).  Valid gadgets
satisfy all three, so Lemma 9 (no cheating on valid gadgets) is
unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.gadgets.labels import (
    CENTER,
    Down,
    Index,
    LCHILD,
    LEFT,
    NOPORT,
    PARENT,
    Port,
    RCHILD,
    RIGHT,
    TREE_LABELS,
    UP,
)
from repro.gadgets.scope import GadgetScope

__all__ = ["StructuralViolation", "check_node", "check_component", "component_is_valid"]


@dataclass(frozen=True)
class StructuralViolation:
    node: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code} @ node {self.node}] {self.message}"


def _check_colors(scope: GadgetScope, v: int, out: list[StructuralViolation]) -> None:
    """Constraint 1a via the distance-2 coloring (Section 4.6)."""
    color = scope.color(v)
    if not isinstance(color, int) or color < 0:
        out.append(StructuralViolation(v, "1a", "missing distance-2 color"))
        return
    seen_neighbor_colors: set[int] = set()
    for port, _eid, other, _label in scope.incidences(v):
        half = scope.half_input(v, port)
        if half is None or half.color != color:
            out.append(
                StructuralViolation(
                    v, "1a", f"half-edge at port {port} does not replicate the color"
                )
            )
            continue
        other_color = scope.color(other)
        if other == v or other_color == color:
            out.append(
                StructuralViolation(
                    v, "1a", "a neighbor shares the node's color (loop?)"
                )
            )
        if other_color is not None:
            if other_color in seen_neighbor_colors:
                out.append(
                    StructuralViolation(
                        v,
                        "1a",
                        "two neighbors share a color (parallel edge or bad coloring)",
                    )
                )
            seen_neighbor_colors.add(other_color)


def _check_subgadget_node(
    scope: GadgetScope, v: int, delta: int, out: list[StructuralViolation]
) -> None:
    role = scope.role(v)
    assert isinstance(role, Index)
    if not 1 <= role.i <= delta:
        out.append(StructuralViolation(v, "alpha", f"index {role.i} out of range"))
    port_tag = scope.port_tag(v)
    if isinstance(port_tag, Port):
        if not 1 <= port_tag.i <= delta:
            out.append(StructuralViolation(v, "alpha", "port index out of range"))
        if port_tag.i != role.i:  # 1d
            out.append(
                StructuralViolation(
                    v, "1d", f"labeled Port_{port_tag.i} but Index_{role.i}"
                )
            )
    elif port_tag != NOPORT:
        out.append(StructuralViolation(v, "alpha", "malformed port tag"))

    incidences = list(scope.incidences(v))
    labels = [label for _p, _e, _o, label in incidences]

    allowed = TREE_LABELS | {UP}
    for _p, _e, _o, label in incidences:
        if label not in allowed:
            out.append(
                StructuralViolation(v, "alpha", f"endpoint label {label!r} not allowed")
            )
            return  # further navigation meaningless

    if len(set(labels)) != len(labels):  # 1b
        out.append(StructuralViolation(v, "1b", "duplicate endpoint labels"))

    for _p, _e, other, label in incidences:  # 1c
        if label in TREE_LABELS and scope.role(other) != role:
            out.append(
                StructuralViolation(
                    v, "1c", "tree edge leads to a different sub-gadget index"
                )
            )
        if label == UP and scope.role(other) != CENTER:
            out.append(StructuralViolation(v, "1c", "Up edge does not reach a center"))

    # 2a / 2b: endpoint labels pair up
    for port, _eid, _other, label in incidences:
        other_label = scope.other_label(v, port)
        if label == LEFT and other_label != RIGHT:
            out.append(StructuralViolation(v, "2a", "Left not mirrored by Right"))
        if label == RIGHT and other_label != LEFT:
            out.append(StructuralViolation(v, "2a", "Right not mirrored by Left"))
        if label == PARENT and other_label not in (LCHILD, RCHILD):
            out.append(StructuralViolation(v, "2b", "Parent not mirrored by a child"))
        if label in (LCHILD, RCHILD) and other_label != PARENT:
            out.append(StructuralViolation(v, "2b", "child edge not mirrored by Parent"))

    # 2c: u(LChild, Right, Parent) = u
    a = scope.follow(v, LCHILD)
    if a is not None:
        b = scope.follow(a, RIGHT)
        if b is not None:
            c = scope.follow(b, PARENT)
            if c is not None and c != v:
                out.append(StructuralViolation(v, "2c", "LChild-Right-Parent escapes"))
    # 2d: u(Right, LChild, Left, Parent) = u
    a = scope.follow(v, RIGHT)
    if a is not None:
        b = scope.follow(a, LCHILD)
        if b is not None:
            c = scope.follow(b, LEFT)
            if c is not None:
                d = scope.follow(c, PARENT)
                if d is not None and d != v:
                    out.append(
                        StructuralViolation(v, "2d", "Right-LChild-Left-Parent escapes")
                    )

    has = {label: True for label in labels}
    parent = scope.follow(v, PARENT)
    # 3a / 3b: boundary-ness propagates upward -- a node on the right
    # (left) boundary has a parent on the right (left) boundary.  (The
    # converse is false in valid sub-gadgets: the left child of a
    # rightmost node is interior, so the paper's "iff" is read as this
    # one direction.)
    if parent is not None:
        for side, code in ((RIGHT, "3a"), (LEFT, "3b")):
            if side not in has and scope.has_label(parent, side):
                out.append(
                    StructuralViolation(
                        v, code, f"{side}-boundary node has a non-boundary parent"
                    )
                )
    # 3c / 3d: boundary nodes are the right/left child of their parent
    if parent is not None:
        for port, _eid, other, label in incidences:
            if label != PARENT:
                continue
            other_label = scope.other_label(v, port)
            if RIGHT not in has and other_label != RCHILD:
                out.append(
                    StructuralViolation(v, "3c", "right-boundary node is not an RChild")
                )
            if LEFT not in has and other_label != LCHILD:
                out.append(
                    StructuralViolation(v, "3d", "left-boundary node is not an LChild")
                )
    # 3e: the root has exactly the two child edges
    if RIGHT not in has and LEFT not in has:
        tree_labels = sorted(
            str(l) for l in labels if l in TREE_LABELS
        )
        if tree_labels != [str(LCHILD), str(RCHILD)]:
            out.append(
                StructuralViolation(
                    v, "3e", f"root-like node has tree edges {tree_labels}"
                )
            )
    # 3f: children come in pairs
    if (LCHILD in has) != (RCHILD in has):
        out.append(StructuralViolation(v, "3f", "only one child edge present"))
    # 3g: the bottom boundary is horizontal
    if LCHILD not in has and RCHILD not in has:
        for side in (LEFT, RIGHT):
            w = scope.follow(v, side)
            if w is not None and (
                scope.has_label(w, LCHILD) or scope.has_label(w, RCHILD)
            ):
                out.append(
                    StructuralViolation(v, "3g", "bottom row neighbor has children")
                )
    # 3h: ports are exactly the bottom-right corners
    is_corner = RIGHT not in has and LCHILD not in has and RCHILD not in has
    if isinstance(port_tag, Port) != is_corner:
        out.append(
            StructuralViolation(
                v, "3h", "Port tag does not match the bottom-right corner"
            )
        )
    # c1: parentless nodes hang off a center; up-root: Up exactly there
    if PARENT not in has:
        centers = [
            other
            for _p, _e, other, label in incidences
            if label == UP and scope.role(other) == CENTER
        ]
        if len(centers) != 1:
            out.append(
                StructuralViolation(
                    v, "c1", "parentless node needs exactly one center neighbor"
                )
            )
    if (UP in has) == (PARENT in has):
        out.append(
            StructuralViolation(
                v, "up-root", "Up edge must exist exactly at parentless nodes"
            )
        )
    # root-no-sides: a root has no horizontal edges (level 0 is a single
    # node).  Valid gadgets satisfy this; making it explicit keeps the
    # prover's Down-pointer chains consistent (see prover.py).
    if UP in has and (LEFT in has or RIGHT in has):
        out.append(
            StructuralViolation(v, "root-no-sides", "root with a horizontal edge")
        )


def _check_center(
    scope: GadgetScope, v: int, delta: int, out: list[StructuralViolation]
) -> None:
    if scope.port_tag(v) != NOPORT:
        out.append(StructuralViolation(v, "alpha", "a center cannot be a port"))
    incidences = list(scope.incidences(v))
    if len(incidences) != delta:  # c2a
        out.append(
            StructuralViolation(
                v, "c2a", f"center degree {len(incidences)} != delta {delta}"
            )
        )
    seen_indices: set[int] = set()
    for port, _eid, other, label in incidences:
        if not isinstance(label, Down) or not 1 <= label.i <= delta:
            out.append(
                StructuralViolation(v, "alpha", f"center edge labeled {label!r}")
            )
            continue
        role = scope.role(other)
        if role != Index(label.i):  # c2b
            out.append(
                StructuralViolation(
                    v, "c2b", f"Down_{label.i} edge reaches role {role!r}"
                )
            )
        if scope.other_label(v, port) != UP:  # c2c
            out.append(StructuralViolation(v, "c2c", "center edge not labeled Up"))
        if label.i in seen_indices:  # c2d
            out.append(
                StructuralViolation(v, "c2d", f"two Down_{label.i} edges")
            )
        seen_indices.add(label.i)


def check_node(scope: GadgetScope, v: int, delta: int) -> list[StructuralViolation]:
    """All constant-radius structural constraints at node ``v``."""
    out: list[StructuralViolation] = []
    node = scope.node_input(v)
    if node is None:
        return [StructuralViolation(v, "alpha", "node input is not a gadget label")]
    for port in range(scope.graph.degree(v)):
        eid = scope.graph.edge_id_at(v, port)
        if scope.in_scope(eid) and scope.half_input(v, port) is None:
            out.append(
                StructuralViolation(
                    v, "alpha", f"half-edge input at port {port} is malformed"
                )
            )
            return out
    _check_colors(scope, v, out)
    role = scope.role(v)
    if role == CENTER:
        _check_center(scope, v, delta, out)
    elif isinstance(role, Index):
        _check_subgadget_node(scope, v, delta, out)
    else:
        out.append(StructuralViolation(v, "alpha", f"unknown role {role!r}"))
    return out


def check_component(
    scope: GadgetScope, component: list[int], delta: int
) -> list[StructuralViolation]:
    """Structural violations over one gadget component."""
    out: list[StructuralViolation] = []
    for v in component:
        out.extend(check_node(scope, v, delta))
    return out


def component_is_valid(scope: GadgetScope, component: list[int], delta: int) -> bool:
    return not check_component(scope, component, delta)
