"""Node-edge-checkable proofs (paper Section 4.6, Figures 7 and 8).

Psi as defined in Section 4.4 is checkable within radius 4; to make it
a genuine ne-LCL the paper adds three devices, all implemented here:

* **summaries** — every node replicates a constant-size digest of its
  local input (role, port tag, color, incident endpoint labels) and its
  Psi output onto its half-edges, so edge constraints can compare the
  two sides (this is how the error-pointer chain rules and the radius-2
  structural checks become edge-checkable);
* **duplicate-color witnesses** (Figure 7) — a node proving a
  distance-2 coloring violation (the stand-in for self-loops and
  parallel edges) marks exactly two half-edges with the shared color
  ``c``; the edge constraint confirms the far side's *input* color is
  ``c``.  On a properly colored gadget no two incidences can both
  succeed, so the witness cannot be fabricated;
* **chain witnesses** (Figure 8) — a node proving that one of the
  commuting-path constraints 2c/2d fails lays letters A, B, C, ...
  along the path; edge constraints force each successor letter across
  the path's next labeled edge, and the node constraint forbids one
  node holding both the first and the last letter of the same chain —
  which is exactly what a *valid* (closing) path would force.
  Overlapping chains are told apart by chain colors.

``compile_ne_proof`` lowers a prover result into these labels and
``verify_ne_proof`` checks them using node and edge constraints only.
The remaining structural constraints lower the same way (the paper:
"all the others can be handled similarly"); the radius-4 verifier in
``psi.py`` stays the reference semantics used by Pi'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, NamedTuple

from repro.gadgets.checker import check_node
from repro.gadgets.labels import (
    ERROR,
    GADOK,
    LCHILD,
    LEFT,
    PARENT,
    Pointer,
    RIGHT,
    UP,
)
from repro.gadgets.scope import GadgetScope

__all__ = [
    "ChainToken",
    "NeNodeOutput",
    "NeHalfOutput",
    "NeViolation",
    "CHAIN_SPECS",
    "compile_ne_proof",
    "verify_ne_proof",
]


class ChainToken(NamedTuple):
    chain: str  # "2c" | "2d"
    color: int  # chain color distinguishing overlapping chains
    letter: int  # 0 = A, 1 = B, ...


class NeNodeOutput(NamedTuple):
    psi: Hashable
    summary: tuple  # (role, port, color, frozenset of incident labels)
    tokens: frozenset  # of ChainToken
    dup_color: int | None  # Figure 7 witness color, if any


class NeHalfOutput(NamedTuple):
    psi: Hashable
    summary: tuple
    tokens: frozenset
    dup_mark: int | None  # this half is one of the two Figure 7 marks


@dataclass(frozen=True)
class NeViolation:
    kind: str  # "node" | "edge"
    where: object
    message: str

    def __str__(self) -> str:
        return f"[ne-{self.kind} @ {self.where}] {self.message}"


#: the label sequence each chain walks; letters index into it
CHAIN_SPECS: dict[str, tuple] = {
    "2c": (LCHILD, RIGHT, PARENT),  # closes back at A in a valid gadget
    "2d": (RIGHT, LCHILD, LEFT, PARENT),
}


def _summary(scope: GadgetScope, v: int) -> tuple:
    node = scope.node_input(v)
    labels = frozenset(
        label for _p, _e, _o, label in scope.incidences(v) if label is not None
    )
    if node is None:
        return (None, None, None, labels)
    return (node.role, node.port, node.color, labels)


def _duplicate_color_witness(scope: GadgetScope, v: int) -> tuple[int, list[int]] | None:
    """Two ports of ``v`` whose far-side input colors coincide."""
    seen: dict[int, int] = {}
    for port, _eid, other, _label in scope.incidences(v):
        color = scope.color(other)
        if color is None:
            continue
        if color in seen:
            return color, [seen[color], port]
        seen[color] = port
    return None


def _chain_witness(scope: GadgetScope, v: int, chain: str) -> list[int] | None:
    """The node path of a broken 2c/2d constraint starting at ``v``.

    Returns the full node sequence when the path exists and does *not*
    return to ``v`` (the violation); None when the path is incomplete
    or correctly closes.
    """
    path = [v]
    node = v
    for label in CHAIN_SPECS[chain]:
        node = scope.follow(node, label)
        if node is None:
            return None
        path.append(node)
    if path[-1] == v:
        return None
    return path


def compile_ne_proof(
    scope: GadgetScope, component: list[int], psi_outputs: dict[int, Hashable]
) -> tuple[dict[int, NeNodeOutput], dict[tuple[int, int], NeHalfOutput]]:
    """Lower Psi outputs plus witnesses into node/half ne-labels."""
    tokens: dict[int, set[ChainToken]] = {v: set() for v in component}
    dup_color: dict[int, int | None] = {v: None for v in component}
    dup_ports: dict[int, list[int]] = {}
    next_chain_color = 0
    for v in component:
        if psi_outputs.get(v) != ERROR:
            continue
        witness = _duplicate_color_witness(scope, v)
        if witness is not None:
            color, ports = witness
            dup_color[v] = color
            dup_ports[v] = ports
        for chain in CHAIN_SPECS:
            path = _chain_witness(scope, v, chain)
            if path is None:
                continue
            chain_color = next_chain_color
            next_chain_color += 1
            for letter, node in enumerate(path):
                if node in tokens:
                    tokens[node].add(ChainToken(chain, chain_color, letter))

    node_out: dict[int, NeNodeOutput] = {}
    half_out: dict[tuple[int, int], NeHalfOutput] = {}
    for v in component:
        summary = _summary(scope, v)
        frozen = frozenset(tokens[v])
        node_out[v] = NeNodeOutput(psi_outputs.get(v), summary, frozen, dup_color[v])
        for port, _eid, _other, _label in scope.incidences(v):
            mark = (
                dup_color[v]
                if dup_color[v] is not None and port in dup_ports.get(v, [])
                else None
            )
            half_out[(v, port)] = NeHalfOutput(
                psi_outputs.get(v), summary, frozen, mark
            )
    return node_out, half_out


#: pointer-chain successor table, keyed by pointer kind (cf. psi.py)
_POINTER_SUCCESSORS = {
    RIGHT: (Pointer(RIGHT),),
    LEFT: (Pointer(LEFT),),
    PARENT: (Pointer(PARENT), Pointer(LEFT), Pointer(RIGHT), Pointer(UP)),
}


def verify_ne_proof(
    scope: GadgetScope,
    component: list[int],
    node_out: dict[int, NeNodeOutput],
    half_out: dict[tuple[int, int], NeHalfOutput],
) -> list[NeViolation]:
    """Check the witness systems with node and edge constraints only."""
    violations: list[NeViolation] = []

    # --- node constraints -------------------------------------------------
    for v in component:
        out = node_out.get(v)
        if out is None:
            violations.append(NeViolation("node", v, "missing ne output"))
            continue
        marks = []
        for port, _eid, _other, _label in scope.incidences(v):
            half = half_out.get((v, port))
            if half is None:
                violations.append(NeViolation("node", v, f"missing half at {port}"))
                continue
            if (half.psi, half.summary, half.tokens) != (
                out.psi,
                out.summary,
                out.tokens,
            ):
                violations.append(
                    NeViolation("node", v, f"half {port} does not replicate the node")
                )
            if half.dup_mark is not None:
                marks.append(half.dup_mark)
        # Figure 7: exactly two marks, one color, matching the node claim
        if out.dup_color is not None:
            if len(marks) != 2 or set(marks) != {out.dup_color}:
                violations.append(
                    NeViolation(
                        "node", v, "duplicate-color witness needs exactly two marks"
                    )
                )
        elif marks:
            violations.append(
                NeViolation("node", v, "dup marks without a node claim")
            )
        # chains: letters unique per (chain, color); first+last forbidden
        per_chain: dict[tuple[str, int], set[int]] = {}
        for token in out.tokens:
            per_chain.setdefault((token.chain, token.color), set()).add(token.letter)
        for (chain, color), letters in per_chain.items():
            last = len(CHAIN_SPECS[chain])
            if 0 in letters and last in letters:
                violations.append(
                    NeViolation(
                        "node",
                        v,
                        f"chain {chain}/{color} closes on itself (valid path!)",
                    )
                )

    # --- edge constraints ---------------------------------------------------
    seen_edges: set[int] = set()
    for v in component:
        for port, eid, other, my_label in scope.incidences(v):
            if eid in seen_edges:
                continue
            seen_edges.add(eid)
            far = scope.graph.endpoint(v, port)
            mine = half_out.get((v, port))
            theirs = half_out.get((far.node, far.port))
            if mine is None or theirs is None:
                continue  # flagged on the node side
            far_label = scope.other_label(v, port)
            for side, side_label, here, across in (
                (v, my_label, mine, theirs),
                (far.node, far_label, theirs, mine),
            ):
                # Figure 7: a mark's far side must carry the claimed color
                if here.dup_mark is not None:
                    far_color = (across.summary or (None,) * 4)[2]
                    if far_color != here.dup_mark:
                        violations.append(
                            NeViolation(
                                "edge",
                                eid,
                                f"dup-color mark {here.dup_mark} vs far color "
                                f"{far_color}",
                            )
                        )
                # Figure 8: successor letters across the chain's edges
                for token in here.tokens:
                    spec = CHAIN_SPECS[token.chain]
                    if token.letter >= len(spec):
                        continue
                    if side_label != spec[token.letter]:
                        continue
                    successor = ChainToken(token.chain, token.color, token.letter + 1)
                    if successor not in across.tokens:
                        violations.append(
                            NeViolation(
                                "edge",
                                eid,
                                f"chain {token.chain}/{token.color}: letter "
                                f"{token.letter} not continued across {side_label}",
                            )
                        )
                # pointer chains (the easy Section 4.6 cases)
                if isinstance(here.psi, Pointer):
                    kind = here.psi.kind
                    if kind in _POINTER_SUCCESSORS and side_label == kind:
                        allowed = (ERROR, *_POINTER_SUCCESSORS[kind])
                        if across.psi not in allowed:
                            violations.append(
                                NeViolation(
                                    "edge",
                                    eid,
                                    f"{kind} pointer not continued: {across.psi!r}",
                                )
                            )
    return violations
