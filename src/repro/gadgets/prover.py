"""The distributed prover V (paper Section 4.5, Lemma 10).

Given an upper bound ``n`` on the graph size, V certifies each gadget
component in O(log n) rounds:

* on a valid gadget every node outputs ``GADOK``;
* on an invalid gadget every node outputs an error label — ``ERROR``
  at nodes whose constant-radius structural check fails, an error
  pointer elsewhere — and the resulting labeling satisfies the Psi
  constraints of Section 4.4 (a *locally checkable proof of error*).

Pointer selection follows the paper's case analysis: a node first
tries to reach an error along Right chains, then Left chains, then
Parent-then-sideways, then RChild-then-sideways; failing all four it
sits in a locally valid sub-gadget and points at its parent (or Up at
the root), and the center routes Down_i toward the lowest-index broken
sub-gadget.

The walks follow label chains, so they stay inside the O(log n) ball
of the walking node whenever the structure around the chain is valid;
the radius charged to each node is the eccentricity bound derived in
``_radius_accounting`` below, never more than ``error_radius(n)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable

from repro.gadgets.checker import check_component, check_node
from repro.gadgets.labels import (
    CENTER,
    Down,
    ERROR,
    GADOK,
    Index,
    LCHILD,
    LEFT,
    PARENT,
    Pointer,
    RCHILD,
    RIGHT,
    UP,
)
from repro.gadgets.scope import GadgetScope
from repro.util.logmath import ceil_log2

__all__ = ["ProverResult", "error_radius", "run_prover"]


def error_radius(n_hint: int) -> int:
    """The O(log n) exploration radius of V.

    Within this radius a node of an n-node graph either sees a
    structural error or the entire (then necessarily valid) gadget: a
    valid-looking sub-gadget of depth d has 2^d - 1 nodes, so depth
    beyond log2(n) is impossible without a visible defect.
    """
    return 2 * ceil_log2(max(n_hint, 2) + 1) + 8


@dataclass
class ProverResult:
    """Per-node Psi outputs of one component plus radius accounting."""

    outputs: dict[int, Hashable]
    node_radius: dict[int, int]
    is_valid: bool
    violations: list = field(default_factory=list)

    def all_ok(self) -> bool:
        return all(label == GADOK for label in self.outputs.values())

    def error_only(self) -> bool:
        return all(label != GADOK for label in self.outputs.values())


def _walk_chain(
    scope: GadgetScope,
    start: int,
    label: Hashable,
    errors: set[int],
    limit: int,
) -> bool:
    """Is an error node reachable via 1..limit steps of ``label`` edges?"""
    seen = {start}
    node = start
    for _ in range(limit):
        node = scope.follow(node, label)
        if node is None or node in seen:
            return False
        if node in errors:
            return True
        seen.add(node)
    return False


def _walk_then_sideways(
    scope: GadgetScope,
    start: int,
    spine: Hashable,
    errors: set[int],
    limit: int,
) -> bool:
    """Error reachable via spine^i (i>=1) then Right^j or Left^j (j>=0)?"""
    seen = {start}
    node = start
    for _ in range(limit):
        node = scope.follow(node, spine)
        if node is None or node in seen:
            return False
        seen.add(node)
        if node in errors:
            return True
        if _walk_chain(scope, node, RIGHT, errors, limit):
            return True
        if _walk_chain(scope, node, LEFT, errors, limit):
            return True
    return False


def _choose_pointer(
    scope: GadgetScope,
    v: int,
    errors: set[int],
    delta: int,
    limit: int,
) -> Hashable:
    """The Section 4.5 case analysis for a structurally sound node."""
    if scope.role(v) == CENTER:
        for i in range(1, delta + 1):
            root = scope.follow(v, Down(i))
            if root is None:
                continue
            if root in errors:
                return Pointer(Down(i))
            if (
                _walk_chain(scope, root, RIGHT, errors, limit)
                or _walk_chain(scope, root, LEFT, errors, limit)
                or _walk_then_sideways(scope, root, RCHILD, errors, limit)
            ):
                return Pointer(Down(i))
        # No down-walk reaches an error: by Lemma 10 this cannot happen
        # for a sound center of an invalid gadget; guard loudly so a
        # regression is caught by the corruption tests.
        raise AssertionError(
            f"center {v}: invalid gadget but no Down pointer reaches an error"
        )
    # (a) Right chains
    if _walk_chain(scope, v, RIGHT, errors, limit):
        return Pointer(RIGHT)
    # (b) Left chains
    if _walk_chain(scope, v, LEFT, errors, limit):
        return Pointer(LEFT)
    # (c) Parent spine, then sideways
    if _walk_then_sideways(scope, v, PARENT, errors, limit):
        return Pointer(PARENT)
    # (d) RChild spine, then sideways
    if _walk_then_sideways(scope, v, RCHILD, errors, limit):
        return Pointer(RCHILD)
    # (e) the error is outside this (locally valid) sub-gadget
    if scope.follow(v, PARENT) is not None:
        return Pointer(PARENT)
    return Pointer(UP)


def _radius_accounting(
    scope: GadgetScope, component: list[int], valid: bool, limit: int
) -> dict[int, int]:
    """The view radius each node consulted.

    Valid gadget: a node is sure once it has seen the whole gadget plus
    one hop; the distance to the center plus the center's eccentricity
    upper-bounds that.  Invalid gadget: the paper's O(log n) bound
    (``limit``) is charged, capped by the component's extent.
    """
    dist_center: dict[int, int] = {}
    center = next((v for v in component if scope.role(v) == CENTER), None)
    if center is not None:
        dist_center[center] = 0
        frontier = deque([center])
        while frontier:
            x = frontier.popleft()
            for _p, _e, other, _l in scope.incidences(x):
                if other not in dist_center:
                    dist_center[other] = dist_center[x] + 1
                    frontier.append(other)
    if valid and center is not None and set(dist_center) == set(component):
        ecc_center = max(dist_center.values())
        return {
            v: min(dist_center[v] + ecc_center + 1, limit) for v in component
        }
    return {v: limit for v in component}


def run_prover(
    scope: GadgetScope,
    component: list[int],
    delta: int,
    n_hint: int,
) -> ProverResult:
    """Run V on one gadget component."""
    limit = error_radius(n_hint)
    violations = check_component(scope, component, delta)
    if not violations:
        radius = _radius_accounting(scope, component, True, limit)
        return ProverResult(
            outputs={v: GADOK for v in component},
            node_radius=radius,
            is_valid=True,
        )
    errors = {violation.node for violation in violations}
    outputs: dict[int, Hashable] = {}
    for v in component:
        if v in errors:
            outputs[v] = ERROR
        else:
            outputs[v] = _choose_pointer(scope, v, errors, delta, limit=len(component))
    radius = _radius_accounting(scope, component, False, limit)
    return ProverResult(
        outputs=outputs,
        node_radius=radius,
        is_valid=False,
        violations=violations,
    )
