"""Builders for sub-gadgets and gadgets (paper Sections 4.1 and 4.3).

A sub-gadget of height ``h`` is a complete binary tree on levels
``0..h-1`` with horizontal edges joining consecutive nodes of each
level (Figure 5); its bottom-right node is the port.  A gadget joins
``Delta`` sub-gadget roots to a fresh center node (Figure 6).

The builder also computes the distance-2 coloring required by the
Section 4.6 node-edge encoding and replicates each node's color onto
its half-edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gadgets.labels import (
    CENTER,
    Down,
    GadgetHalfInput,
    GadgetNodeInput,
    Index,
    LCHILD,
    LEFT,
    NOPORT,
    PARENT,
    Port,
    RCHILD,
    RIGHT,
    UP,
)
from repro.lcl.assignment import Labeling
from repro.local.builder import GraphBuilder
from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["BuiltGadget", "build_gadget", "subgadget_size", "gadget_size"]


def subgadget_size(height: int) -> int:
    """Number of nodes of a height-``height`` sub-gadget."""
    return 2**height - 1


def gadget_size(delta: int, heights: tuple[int, ...] | int) -> int:
    """Number of nodes of a gadget (Delta sub-gadgets plus the center)."""
    if isinstance(heights, int):
        heights = (heights,) * delta
    return sum(subgadget_size(h) for h in heights) + 1


@dataclass
class BuiltGadget:
    """A gadget graph with its input labeling and coordinate book-keeping.

    ``coords[v]`` is ``("center",)`` for the center and
    ``("sub", i, level, x)`` for node ``(level, x)`` of sub-gadget ``i``
    (1-based ``i``).  ``ports[i - 1]`` is the node labeled ``Port_i``.
    """

    delta: int
    heights: tuple[int, ...]
    graph: PortGraph
    inputs: Labeling
    center: int
    ports: list[int]
    coords: dict[int, tuple] = field(repr=False)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def role_of(self, v: int):
        return self.inputs.node(v).role

    def half_label(self, v: int, port: int):
        return self.inputs.half_at(v, port).label


def _distance2_coloring(graph: PortGraph) -> list[int]:
    """Greedy proper distance-2 coloring (at most Delta^2 + 1 colors)."""
    colors = [-1] * graph.num_nodes
    for v in graph.nodes():
        blocked = set()
        for u in graph.neighbors(v):
            if colors[u] >= 0:
                blocked.add(colors[u])
            for w in graph.neighbors(u):
                if w != v and colors[w] >= 0:
                    blocked.add(colors[w])
        color = 0
        while color in blocked:
            color += 1
        colors[v] = color
    return colors


def build_gadget(delta: int, heights: tuple[int, ...] | int) -> BuiltGadget:
    """Build a labeled gadget with ``delta`` sub-gadgets.

    ``heights`` is a single height for all sub-gadgets or one height per
    sub-gadget; every height must be at least 2 (a height-1 sub-gadget
    cannot satisfy both the root constraint 3e and the port constraint
    3h of Section 4.2).
    """
    if delta < 1:
        raise ValueError("delta must be at least 1")
    if isinstance(heights, int):
        heights = (heights,) * delta
    heights = tuple(heights)
    if len(heights) != delta:
        raise ValueError(f"need {delta} heights, got {len(heights)}")
    if any(h < 2 for h in heights):
        raise ValueError("sub-gadget heights must be at least 2")

    builder = GraphBuilder()
    coords: dict[int, tuple] = {}
    node_of: dict[tuple, int] = {}
    half_labels: dict[tuple[int, int], object] = {}  # filled after build

    # Allocate nodes: all sub-gadgets first, center last.
    for i, h in enumerate(heights, start=1):
        for level in range(h):
            for x in range(2**level):
                v = builder.add_node()
                coords[v] = ("sub", i, level, x)
                node_of[(i, level, x)] = v
    center = builder.add_node()
    coords[center] = ("center",)

    # Edges with endpoint labels; record labels by (node, port) as we go.
    pending: list[tuple[int, int, object, object]] = []  # u, v, label_u, label_v
    for i, h in enumerate(heights, start=1):
        for level in range(1, h):
            for x in range(2**level):
                child = node_of[(i, level, x)]
                parent = node_of[(i, level - 1, x // 2)]
                parent_side = LCHILD if x % 2 == 0 else RCHILD
                pending.append((child, parent, PARENT, parent_side))
        for level in range(h):
            for x in range(2**level - 1):
                left = node_of[(i, level, x)]
                right = node_of[(i, level, x + 1)]
                pending.append((left, right, RIGHT, LEFT))
        root = node_of[(i, 0, 0)]
        pending.append((root, center, UP, Down(i)))

    ports_used: dict[int, int] = {}
    for u, v, label_u, label_v in pending:
        pu = ports_used.get(u, 0)
        pv = ports_used.get(v, 0)
        if u == v:
            raise AssertionError("gadget construction never builds loops")
        builder.add_edge(u, v)
        half_labels[(u, pu)] = label_u
        half_labels[(v, pv)] = label_v
        ports_used[u] = pu + 1
        ports_used[v] = pv + 1

    graph = builder.build()
    colors = _distance2_coloring(graph)

    inputs = Labeling(graph)
    ports: list[int] = [0] * delta
    for v in graph.nodes():
        coord = coords[v]
        if coord[0] == "center":
            role = CENTER
            port_tag = NOPORT
        else:
            _, i, level, x = coord
            role = Index(i)
            h = heights[i - 1]
            if level == h - 1 and x == 2**level - 1:
                port_tag = Port(i)
                ports[i - 1] = v
            else:
                port_tag = NOPORT
        inputs.set_node(v, GadgetNodeInput(role, port_tag, colors[v]))
    for (v, port), label in half_labels.items():
        inputs.set_half(HalfEdge(v, port), GadgetHalfInput(label, colors[v]))

    return BuiltGadget(
        delta=delta,
        heights=heights,
        graph=graph,
        inputs=inputs,
        center=center,
        ports=ports,
        coords=coords,
    )
