"""The gadget-membership proof as a runtime catalog entry.

Lemma 10's measurement — the distributed prover V certifying valid
gadgets within O(log n) radius — becomes a registered (problem,
solver, family) triple here, so the registry cross-product covers the
gadget layer alongside the classic LCLs.  The "problem" is acceptance
of the proof: on a valid member every node must output GadOk, checked
by a custom verifier reading the prover's ``all_ok`` flag.
"""

from __future__ import annotations

from repro.gadgets.corruptions import CORRUPTIONS as _CORRUPTION_NAMES
from repro.runtime.registry import register_family, register_problem, register_solver

__all__ = ["GadgetProverSolver", "gadget_instance", "verify_prover_ok"]


def verify_prover_ok(instance, result) -> None:
    """The registered check: V accepted the (valid) member."""
    assert result.extras["all_ok"], "prover flagged a valid gadget"


register_problem(
    "gadget-proof",
    description="certify membership in the (log, 3)-gadget family",
    paper_det="O(log n)",
    paper_rand="O(log n)",
    verifier=verify_prover_ok,
)(lambda: None)  # proof acceptance has no ne-LCL object; the verifier is custom


@register_solver(
    "gadget-prover",
    problem="gadget-proof",
    families=("gadget",),
    randomized=False,
    description="the distributed prover V of Definition 2",
    # Negative probes: on every registered corruption family the
    # verifier must reject (V proves the error instead of accepting).
    # Names only — repro.gadgets.probes registers the families.
    unsound_families=tuple(f"corrupt-{name}" for name in _CORRUPTION_NAMES),
)
class GadgetProverSolver:
    """Adapter: the distributed prover V as a ``LocalAlgorithm``."""

    name = "gadget-prover-V"
    randomized = False

    def solve(self, instance):
        from repro.gadgets.prover import run_prover
        from repro.gadgets.scope import GadgetScope
        from repro.local.algorithm import RunResult

        scope = GadgetScope(instance.graph, instance.inputs)
        component = sorted(instance.graph.nodes())
        result = run_prover(scope, component, 3, instance.n_hint)
        return RunResult(
            outputs=result.outputs,
            node_radius=[result.node_radius[v] for v in component],
            extras={"all_ok": result.all_ok(), "is_valid": result.is_valid},
        )


def _gadget_topology(height: int):
    """The frozen core: one built gadget (graph + membership inputs)."""
    from repro.gadgets.family import LogGadgetFamily

    return LogGadgetFamily(3).member_with_height(height)


def _gadget_dress(built, height: int, seed: int):
    del height, seed  # the gadget family is deterministic per height
    from repro.local.algorithm import Instance
    from repro.local.identifiers import sequential_ids

    return Instance(
        built.graph, sequential_ids(built.graph.num_nodes), built.inputs
    )


@register_family(
    "gadget",
    description="one valid (log, 3)-gadget of height h (size ~3 * 2^h)",
    max_degree=5,
    min_degree=1,
    size_kind="height",
    test_sizes=(3,),
    grid=lambda max_n: tuple(h for h in range(3, 11) if 2 ** (h + 1) <= max_n),
    topology_seeded=False,
    topology=_gadget_topology,
    dress=_gadget_dress,
)
def gadget_instance(height: int, seed: int):
    """One valid gadget of the family, as a prover instance."""
    return _gadget_dress(_gadget_topology(height), height, seed)
