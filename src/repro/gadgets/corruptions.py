"""Invalid-gadget generators: one targeted corruption per constraint class.

Each corruption takes a valid :class:`BuiltGadget` and returns a new
``(graph, inputs, description)`` triple that violates at least one
Section 4.2/4.3 constraint.  The tests assert that the checker flags
every corruption and that the prover V still produces a Psi-consistent
proof of error on it (Lemma 10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.gadgets.build import BuiltGadget
from repro.gadgets.labels import (
    Down,
    GadgetHalfInput,
    GadgetNodeInput,
    Index,
    LCHILD,
    LEFT,
    NOPORT,
    PARENT,
    Port,
    RCHILD,
    RIGHT,
    UP,
)
from repro.lcl.assignment import Labeling
from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["Corruption", "CORRUPTIONS", "corrupt", "all_corruptions"]


@dataclass
class Corruption:
    name: str
    description: str
    graph: PortGraph
    inputs: Labeling


def _clone_inputs(graph: PortGraph, built: BuiltGadget) -> Labeling:
    clone = Labeling(graph)
    for v in graph.nodes():
        if v < built.graph.num_nodes:
            clone.set_node(v, built.inputs.node(v))
    for v in graph.nodes():
        if v >= built.graph.num_nodes:
            continue
        for port in range(min(graph.degree(v), built.graph.degree(v))):
            clone.set_half(HalfEdge(v, port), built.inputs.half_at(v, port))
    return clone


def _interior_node(built: BuiltGadget) -> int:
    """A node with both children and both horizontal neighbors."""
    for v, coord in built.coords.items():
        if coord[0] != "sub":
            continue
        _, _i, level, x = coord
        h = built.heights[_i - 1]
        if 0 < level < h - 1 and 0 < x < 2**level - 1:
            return v
    # fall back to any non-root internal node (small gadgets)
    for v, coord in built.coords.items():
        if coord[0] == "sub" and 0 < coord[2] < built.heights[coord[1] - 1] - 1:
            return v
    raise ValueError("gadget too small to have an interior node")


def _with_node_input(built: BuiltGadget, v: int, new_input: GadgetNodeInput, name: str, why: str) -> Corruption:
    inputs = built.inputs.copy()
    inputs.set_node(v, new_input)
    return Corruption(name, why, built.graph, inputs)


def corrupt_index(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Give one node the wrong sub-gadget index (violates 1c)."""
    v = _interior_node(built)
    old = built.inputs.node(v)
    wrong = old.role.i % built.delta + 1 if built.delta > 1 else old.role.i + 1
    return _with_node_input(
        built, v, GadgetNodeInput(Index(wrong), old.port, old.color),
        "wrong-index", f"node {v} claims Index_{wrong}",
    )


def corrupt_fake_port(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Tag a non-corner node as a port (violates 3h)."""
    v = _interior_node(built)
    old = built.inputs.node(v)
    return _with_node_input(
        built, v, GadgetNodeInput(old.role, Port(old.role.i), old.color),
        "fake-port", f"interior node {v} claims to be a port",
    )


def corrupt_missing_port(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Remove a port tag from the corner (violates 3h)."""
    v = built.ports[0]
    old = built.inputs.node(v)
    return _with_node_input(
        built, v, GadgetNodeInput(old.role, NOPORT, old.color),
        "missing-port", f"corner node {v} lost its port tag",
    )


def corrupt_color(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Copy a neighbor's color (violates the 1a distance-2 coloring)."""
    v = _interior_node(built)
    neighbor = next(iter(built.graph.neighbors(v)))
    old = built.inputs.node(v)
    stolen = built.inputs.node(neighbor).color
    inputs = built.inputs.copy()
    inputs.set_node(v, GadgetNodeInput(old.role, old.port, stolen))
    for port in range(built.graph.degree(v)):
        half = built.inputs.half_at(v, port)
        inputs.set_half(HalfEdge(v, port), GadgetHalfInput(half.label, stolen))
    return Corruption("color-clash", f"node {v} copies a neighbor color", built.graph, inputs)


def corrupt_color_replication(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Break the half-edge color replication (Section 4.6 device)."""
    v = _interior_node(built)
    inputs = built.inputs.copy()
    half = built.inputs.half_at(v, 0)
    inputs.set_half(HalfEdge(v, 0), GadgetHalfInput(half.label, half.color + 1))
    return Corruption(
        "color-replication", f"node {v} half-edge color off by one", built.graph, inputs
    )


def corrupt_endpoint_label(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Relabel a Parent endpoint as LChild (violates 2b)."""
    v = _interior_node(built)
    inputs = built.inputs.copy()
    for port in range(built.graph.degree(v)):
        half = built.inputs.half_at(v, port)
        if half.label == PARENT:
            inputs.set_half(HalfEdge(v, port), GadgetHalfInput(LCHILD, half.color))
            break
    return Corruption(
        "parent-as-child", f"node {v} relabels its Parent edge", built.graph, inputs
    )


def corrupt_swap_children(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Swap the LChild/RChild labels at one node (violates 2c/3c/3d)."""
    v = _interior_node(built)
    inputs = built.inputs.copy()
    for port in range(built.graph.degree(v)):
        half = built.inputs.half_at(v, port)
        if half.label == LCHILD:
            inputs.set_half(HalfEdge(v, port), GadgetHalfInput(RCHILD, half.color))
        elif half.label == RCHILD:
            inputs.set_half(HalfEdge(v, port), GadgetHalfInput(LCHILD, half.color))
    return Corruption(
        "swapped-children", f"node {v} swaps its child labels", built.graph, inputs
    )


def _rebuild_without_edge(built: BuiltGadget, drop_eid: int) -> tuple[PortGraph, Labeling]:
    """Remove one edge, keeping surviving ports contiguous per node."""
    old = built.graph
    new_port: dict[HalfEdge, int] = {}
    counters = [0] * old.num_nodes
    for v in old.nodes():
        for port in range(old.degree(v)):
            if old.edge_id_at(v, port) == drop_eid:
                continue
            new_port[HalfEdge(v, port)] = counters[v]
            counters[v] += 1
    edges = []
    for edge in old.edges():
        if edge.eid == drop_eid:
            continue
        edges.append(
            (
                HalfEdge(edge.a.node, new_port[edge.a]),
                HalfEdge(edge.b.node, new_port[edge.b]),
            )
        )
    graph = PortGraph(old.num_nodes, edges)
    inputs = Labeling(graph)
    for v in graph.nodes():
        inputs.set_node(v, built.inputs.node(v))
    for side, port in new_port.items():
        inputs.set_half(HalfEdge(side.node, port), built.inputs.half_at(side.node, side.port))
    return graph, inputs


def corrupt_drop_horizontal(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Delete a horizontal edge (violates 3a/3b at the break)."""
    v = _interior_node(built)
    for port in range(built.graph.degree(v)):
        if built.inputs.half_at(v, port).label == RIGHT:
            eid = built.graph.edge_id_at(v, port)
            graph, inputs = _rebuild_without_edge(built, eid)
            return Corruption(
                "dropped-horizontal", f"level edge at node {v} removed", graph, inputs
            )
    raise AssertionError("interior node must have a Right edge")


def corrupt_detach_center(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Delete one Down edge (violates c2a at the center, c1 at the root)."""
    center = built.center
    eid = built.graph.edge_id_at(center, 0)
    graph, inputs = _rebuild_without_edge(built, eid)
    return Corruption(
        "detached-subgadget", "one Down edge removed from the center", graph, inputs
    )


def corrupt_extra_center_edge(built: BuiltGadget, rng: random.Random) -> Corruption:
    """Duplicate a Down edge index onto a second root (violates c2d/1b)."""
    if built.delta < 2:
        raise ValueError("needs delta >= 2")
    center = built.center
    inputs = built.inputs.copy()
    half = built.inputs.half_at(center, 1)
    inputs.set_half(HalfEdge(center, 1), GadgetHalfInput(Down(1), half.color))
    return Corruption(
        "duplicate-down", "center labels two edges Down_1", built.graph, inputs
    )


CORRUPTIONS: dict[str, Callable[[BuiltGadget, random.Random], Corruption]] = {
    "wrong-index": corrupt_index,
    "fake-port": corrupt_fake_port,
    "missing-port": corrupt_missing_port,
    "color-clash": corrupt_color,
    "color-replication": corrupt_color_replication,
    "parent-as-child": corrupt_endpoint_label,
    "swapped-children": corrupt_swap_children,
    "dropped-horizontal": corrupt_drop_horizontal,
    "detached-subgadget": corrupt_detach_center,
    "duplicate-down": corrupt_extra_center_edge,
}


def corrupt(built: BuiltGadget, name: str, rng: random.Random | None = None) -> Corruption:
    return CORRUPTIONS[name](built, rng or random.Random(0))


def all_corruptions(built: BuiltGadget, rng: random.Random | None = None) -> list[Corruption]:
    rng = rng or random.Random(0)
    out = []
    for name, factory in CORRUPTIONS.items():
        if name == "duplicate-down" and built.delta < 2:
            continue
        out.append(factory(built, rng))
    return out
