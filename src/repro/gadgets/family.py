"""The (log, Delta)-gadget family (Definition 2, Theorem 6).

A gadget family packages everything the padding construction of
Section 3 consumes:

* members: for every target size ``n`` a gadget with Theta(n) nodes
  whose pairwise port distances are Theta(d(n)) — here ``d = log``;
* the ne-LCL ``Psi_G`` certifying membership (via the structural
  checker and the error-pointer LCL Psi);
* the distributed prover ``V`` producing either the all-GadOk
  certificate or a locally checkable proof of error in O(d(n)) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gadgets.build import BuiltGadget, build_gadget, gadget_size
from repro.gadgets.checker import check_component
from repro.gadgets.prover import ProverResult, error_radius, run_prover
from repro.gadgets.scope import GadgetScope
from repro.util.logmath import ceil_log2, floor_log2

__all__ = ["GadgetFamily", "LogGadgetFamily"]


@dataclass
class GadgetFamily:
    """Base interface: the (d, Delta)-gadget family of Definition 2."""

    delta: int
    name: str = "abstract"

    def member(self, n: int) -> BuiltGadget:  # pragma: no cover - interface
        raise NotImplementedError

    def depth_bound(self, n: int) -> int:  # pragma: no cover - interface
        """An upper bound on d(n): the diameter of members of size <= n."""
        raise NotImplementedError

    def check(self, scope: GadgetScope, component: list[int]):
        """Structural violations of one component (empty iff member)."""
        return check_component(scope, component, self.delta)

    def prove(self, scope: GadgetScope, component: list[int], n_hint: int) -> ProverResult:
        """Run the prover V (Definition 2's algorithm)."""
        return run_prover(scope, component, self.delta, n_hint)

    def prover_radius(self, n_hint: int) -> int:
        """The O(d(n)) round bound of V."""
        return error_radius(n_hint)


class LogGadgetFamily(GadgetFamily):
    """The concrete family of Section 4: d(n) = Theta(log n).

    ``member(n)`` returns the gadget with Delta equal-height sub-gadgets
    whose size is as close to ``n`` as the doubling structure allows
    (between n/2 and 2n for n above the minimum size); its port-to-port
    distances are ``2h`` with ``h = Theta(log n)``.
    """

    def __init__(self, delta: int):
        if delta < 1:
            raise ValueError("delta must be positive")
        super().__init__(delta=delta, name=f"log-gadgets(delta={delta})")

    def min_size(self) -> int:
        return gadget_size(self.delta, 2)

    def height_for(self, n: int) -> int:
        """The equal height giving a member of ~n nodes (at least 2)."""
        if n < 1:
            raise ValueError("n must be positive")
        # gadget size = delta * (2^h - 1) + 1  =>  2^h ~ n / delta
        target = max(n // self.delta + 1, 2)
        return max(floor_log2(target), 2)

    def member(self, n: int) -> BuiltGadget:
        return build_gadget(self.delta, self.height_for(n))

    def member_with_height(self, height: int) -> BuiltGadget:
        return build_gadget(self.delta, height)

    def depth_bound(self, n: int) -> int:
        """Diameter bound of any member with at most ``n`` nodes.

        A member of size <= n has sub-gadget heights <= log2(n); any two
        nodes connect through the center in at most 2(h - 1) + 2 hops.
        """
        return 2 * ceil_log2(max(n, 2)) + 2

    def port_distance(self, height: int) -> int:
        """Exact pairwise distance between (distinct) ports: 2h."""
        return 2 * height
