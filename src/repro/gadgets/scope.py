"""Scoped access to a gadget living inside a larger graph.

Gadget structure checks must ignore edges that do not belong to the
gadget (in padded graphs, the ``PortEdge`` connections).  A
:class:`GadgetScope` wraps a graph, its input labeling, and an edge
predicate, and offers the label-following navigation that both the
structural checker (Section 4.2/4.3) and the prover V (Section 4.5)
are written in terms of.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterator

from repro.gadgets.labels import GadgetHalfInput, GadgetNodeInput
from repro.lcl.assignment import Labeling
from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["GadgetScope"]


class GadgetScope:
    """Navigation over the gadget-edge subgraph of a labeled graph."""

    def __init__(
        self,
        graph: PortGraph,
        inputs: Labeling,
        edge_in_scope: Callable[[int], bool] | None = None,
    ):
        self.graph = graph
        self.inputs = inputs
        self._edge_in_scope = edge_in_scope or (lambda eid: True)

    def in_scope(self, eid: int) -> bool:
        return self._edge_in_scope(eid)

    # -- labels ---------------------------------------------------------------

    def node_input(self, v: int) -> GadgetNodeInput | None:
        """The node's gadget input, or None if malformed."""
        label = self.inputs.node(v)
        if isinstance(label, GadgetNodeInput):
            return label
        return None

    def half_input(self, v: int, port: int) -> GadgetHalfInput | None:
        label = self.inputs.half_at(v, port)
        if isinstance(label, GadgetHalfInput):
            return label
        return None

    def role(self, v: int) -> Hashable | None:
        node = self.node_input(v)
        return node.role if node else None

    def port_tag(self, v: int) -> Hashable | None:
        node = self.node_input(v)
        return node.port if node else None

    def color(self, v: int) -> int | None:
        node = self.node_input(v)
        return node.color if node else None

    # -- incidences --------------------------------------------------------------

    def incidences(self, v: int) -> Iterator[tuple[int, int, int, Hashable]]:
        """Yield ``(port, eid, other_node, my_label)`` for in-scope edges."""
        for port in range(self.graph.degree(v)):
            eid = self.graph.edge_id_at(v, port)
            if not self.in_scope(eid):
                continue
            half = self.half_input(v, port)
            label = half.label if half else None
            yield port, eid, self.graph.neighbor(v, port), label

    def labels_at(self, v: int) -> list[Hashable]:
        """The in-scope endpoint labels at ``v`` (may contain None)."""
        return [label for _p, _e, _o, label in self.incidences(v)]

    def other_label(self, v: int, port: int) -> Hashable | None:
        """The endpoint label on the far side of the edge at ``(v, port)``."""
        other = self.graph.endpoint(v, port)
        half = self.half_input(other.node, other.port)
        return half.label if half else None

    def has_label(self, v: int, label: Hashable) -> bool:
        return any(mine == label for _p, _e, _o, mine in self.incidences(v))

    def follow(self, v: int, label: Hashable) -> int | None:
        """The unique neighbor across the edge labeled ``label`` at ``v``.

        Returns None when no in-scope incidence carries the label; when
        several do (a 1b violation caught elsewhere), the first in port
        order is used so navigation stays deterministic.
        """
        for _port, _eid, other, mine in self.incidences(v):
            if mine == label:
                return other
        return None

    # -- component discovery ----------------------------------------------------------

    def component_of(self, v: int) -> list[int]:
        """The in-scope connected component containing ``v`` (sorted)."""
        seen = {v}
        frontier = deque([v])
        while frontier:
            x = frontier.popleft()
            for _p, _e, other, _label in self.incidences(x):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return sorted(seen)

    def components(self) -> list[list[int]]:
        """All in-scope components (every node appears in exactly one)."""
        seen: set[int] = set()
        out = []
        for v in self.graph.nodes():
            if v in seen:
                continue
            comp = self.component_of(v)
            seen.update(comp)
            out.append(comp)
        return out

    def scope_degree(self, v: int) -> int:
        return sum(1 for _ in self.incidences(v))
