"""Corruption families as registered *unsound* probe targets.

Each targeted corruption of :mod:`repro.gadgets.corruptions` becomes a
catalog family ``corrupt-<name>``: one valid (log, 3)-gadget of the
requested height with exactly that constraint class violated.  The
gadget prover V is declared *unsound* on all of them — these are the
negative triples of the landscape: the driver runs them only through
``check_sound=False``, and the verifier (which demands V accept) must
REJECT every one, certifying that the Section 4.2/4.3 checker actually
fires on each violation class, not just on valid members.

Registration makes the probes first-class: ``python -m repro.engine
list``/``describe`` expose them, and the conformance suite
(``tests/test_runtime_registry.py``) exercises the full unsound path
via :func:`repro.runtime.registry.unsound_triples`.
"""

from __future__ import annotations

from repro.gadgets.corruptions import CORRUPTIONS
from repro.runtime.registry import register_family

__all__ = ["PROBE_FAMILIES"]

# Interior-node corruptions need height >= 4 (a height-3 subgadget has
# no node with both children and a guaranteed horizontal Right edge).
_MIN_HEIGHT = 4


def _register_probe(name: str) -> str:
    family_name = f"corrupt-{name}"

    def topology(height: int):
        """The frozen core: one corrupted gadget (graph + inputs).

        Deterministic per height — the underlying gadget is the
        canonical valid member and every corruption targets a
        canonical node — so, like the valid ``gadget`` family, the
        seed only names the trial.
        """
        from repro.gadgets.corruptions import corrupt
        from repro.gadgets.family import LogGadgetFamily

        return corrupt(LogGadgetFamily(3).member_with_height(height), name)

    def dress(bad, height: int, seed: int):
        del height, seed  # deterministic per height, see topology()
        from repro.local.algorithm import Instance
        from repro.local.identifiers import sequential_ids

        return Instance(
            bad.graph, sequential_ids(bad.graph.num_nodes), bad.inputs
        )

    def build(height: int, seed: int):
        # One recipe for both paths: the per-trial builder composes
        # the same closures the batched topology/dress split uses.
        return dress(topology(height), height, seed)

    register_family(
        family_name,
        description=(
            f"height-h gadget with the '{name}' corruption applied "
            "(verifier must reject)"
        ),
        size_kind="height",
        test_sizes=(_MIN_HEIGHT,),
        grid=lambda max_n: tuple(
            h for h in range(_MIN_HEIGHT, 11) if 2 ** (h + 1) <= max_n
        ),
        topology_seeded=False,
        topology=topology,
        dress=dress,
    )(build)
    return family_name


PROBE_FAMILIES: tuple[str, ...] = tuple(
    _register_probe(name) for name in CORRUPTIONS
)
