"""The error-pointer LCL Psi (paper Section 4.4).

On a gadget component every node outputs ``GADOK``, ``ERROR``, or an
error pointer.  The constraints (checkable within radius 4, the radius
of the structural checks):

1. the output is exactly one of Ok / Error / pointer;
2. a node outputs ``ERROR`` iff its structural constraints
   (Sections 4.2/4.3) fail — it can neither cry wolf nor stay silent;
3. pointer chains flow along existing edges and terminate at errors:

   =========  =====================================================
   pointer    the pointed-to node must output
   =========  =====================================================
   Right      Error or Right
   Left       Error or Left
   Parent     Error or one of {Parent, Left, Right, Up}
   RChild     Error or one of {RChild, Right, Left}
   Up         Error or Down_j with j != own index
   Down_i     Error or RChild
   =========  =====================================================

Lemma 9: on a *valid* gadget no assignment of error labels satisfies
these constraints — chains cannot terminate — so algorithms cannot
cheat by claiming an error.  The adversarial tests exercise exactly
this property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.gadgets.checker import check_node
from repro.gadgets.labels import (
    Down,
    ERROR,
    GADOK,
    Index,
    LEFT,
    PARENT,
    Pointer,
    RCHILD,
    RIGHT,
    UP,
)
from repro.gadgets.scope import GadgetScope

__all__ = ["PsiViolation", "verify_psi", "psi_labels_are_error_only"]


@dataclass(frozen=True)
class PsiViolation:
    node: int
    message: str

    def __str__(self) -> str:
        return f"[psi @ node {self.node}] {self.message}"


#: outputs allowed across each pointer kind (Error is always allowed)
_CHAIN_SUCCESSORS: dict[Hashable, tuple] = {
    RIGHT: (Pointer(RIGHT),),
    LEFT: (Pointer(LEFT),),
    PARENT: (Pointer(PARENT), Pointer(LEFT), Pointer(RIGHT), Pointer(UP)),
    RCHILD: (Pointer(RCHILD), Pointer(RIGHT), Pointer(LEFT)),
}


def _is_valid_output(label: object, delta: int) -> bool:
    if label in (GADOK, ERROR):
        return True
    if isinstance(label, Pointer):
        kind = label.kind
        if kind in (RIGHT, LEFT, PARENT, RCHILD, UP):
            return True
        return isinstance(kind, Down) and 1 <= kind.i <= delta
    return False


def verify_psi(
    scope: GadgetScope,
    component: list[int],
    outputs: Mapping[int, object],
    delta: int,
) -> list[PsiViolation]:
    """Check one component's Psi outputs; empty list means accepted."""
    violations: list[PsiViolation] = []
    for v in component:
        label = outputs.get(v)
        if not _is_valid_output(label, delta):
            violations.append(PsiViolation(v, f"output {label!r} is not a Psi label"))
            continue
        structurally_broken = bool(check_node(scope, v, delta))
        if structurally_broken != (label == ERROR):
            if structurally_broken:
                violations.append(
                    PsiViolation(v, "structural violation present but no Error output")
                )
            else:
                violations.append(
                    PsiViolation(v, "Error output at a structurally sound node")
                )
            continue
        if not isinstance(label, Pointer):
            continue
        kind = label.kind
        if isinstance(kind, Down):
            target = scope.follow(v, kind)
            if target is None:
                violations.append(PsiViolation(v, f"pointer {kind} has no edge"))
                continue
            allowed = (ERROR, Pointer(RCHILD))
            if outputs.get(target) not in allowed:
                violations.append(
                    PsiViolation(
                        v, f"Down pointer chain broken at {target}: "
                        f"{outputs.get(target)!r}"
                    )
                )
        elif kind == UP:
            target = scope.follow(v, UP)
            if target is None:
                violations.append(PsiViolation(v, "Up pointer has no Up edge"))
                continue
            role = scope.role(v)
            own_index = role.i if isinstance(role, Index) else None
            target_label = outputs.get(target)
            ok = target_label == ERROR or (
                isinstance(target_label, Pointer)
                and isinstance(target_label.kind, Down)
                and target_label.kind.i != own_index
            )
            if not ok:
                violations.append(
                    PsiViolation(
                        v, f"Up pointer chain broken at {target}: {target_label!r}"
                    )
                )
        else:
            target = scope.follow(v, kind)
            if target is None:
                violations.append(PsiViolation(v, f"pointer {kind} has no edge"))
                continue
            allowed = (ERROR, *_CHAIN_SUCCESSORS[kind])
            if outputs.get(target) not in allowed:
                violations.append(
                    PsiViolation(
                        v,
                        f"{kind} pointer chain broken at {target}: "
                        f"{outputs.get(target)!r}",
                    )
                )
    return violations


def psi_labels_are_error_only(outputs: Mapping[int, object], component: list[int]) -> bool:
    """True when every node of the component uses an error label."""
    return all(outputs.get(v) != GADOK for v in component)
