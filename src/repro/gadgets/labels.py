"""Label atoms for the (log, Delta)-gadget family (paper Section 4).

Gadget graphs carry constant-size input labels that make their
structure locally checkable:

* node labels: ``Index(i)`` (sub-gadget membership) or ``CENTER``, a
  port tag (``Port(i)`` or ``NOPORT``), and a distance-2 color (the
  Section 4.6 device that rules out self-loops and parallel edges);
* edge-endpoint labels (written on half-edges): ``PARENT``, ``LEFT``,
  ``RIGHT``, ``LCHILD``, ``RCHILD`` inside a sub-gadget, ``UP`` /
  ``Down(i)`` on the center edges.

The error-pointer LCL Psi (Section 4.4) outputs ``GADOK``, ``ERROR``,
or a pointer that mirrors an edge-endpoint label.
"""

from __future__ import annotations

from typing import Hashable, NamedTuple

__all__ = [
    "Index",
    "CENTER",
    "Port",
    "NOPORT",
    "PARENT",
    "LEFT",
    "RIGHT",
    "LCHILD",
    "RCHILD",
    "UP",
    "Down",
    "TREE_LABELS",
    "GadgetNodeInput",
    "GadgetHalfInput",
    "GADOK",
    "ERROR",
    "Pointer",
    "POINTER_KINDS",
    "is_pointer",
]


class Index(NamedTuple):
    """Node label Index_i: membership in sub-gadget i (1-based)."""

    i: int


class Port(NamedTuple):
    """Port tag Port_i (1-based)."""

    i: int


class Down(NamedTuple):
    """Center-side endpoint label Down_i toward sub-gadget i's root."""

    i: int


CENTER = "Center"
NOPORT = "NoPort"

PARENT = "Parent"
LEFT = "Left"
RIGHT = "Right"
LCHILD = "LChild"
RCHILD = "RChild"
UP = "Up"

#: endpoint labels that belong to the sub-gadget tree structure
TREE_LABELS = frozenset({PARENT, LEFT, RIGHT, LCHILD, RCHILD})


class GadgetNodeInput(NamedTuple):
    """The full node input: role label, port tag, distance-2 color."""

    role: Hashable  # Index(i) or CENTER
    port: Hashable  # Port(i) or NOPORT
    color: int


class GadgetHalfInput(NamedTuple):
    """The full half-edge input: endpoint label plus the owner's color.

    Replicating the owner's distance-2 color onto its half-edges is the
    Section 4.6 trick that makes color violations node-edge checkable.
    """

    label: Hashable  # PARENT/LEFT/RIGHT/LCHILD/RCHILD/UP/Down(i)
    color: int


GADOK = "GadOk"
ERROR = "Error"


class Pointer(NamedTuple):
    """An error pointer: follow the incident edge whose endpoint label
    matches ``kind`` (``Down(i)`` pointers carry the index)."""

    kind: Hashable  # RIGHT | LEFT | PARENT | RCHILD | UP | Down(i)


POINTER_KINDS = (RIGHT, LEFT, PARENT, RCHILD, UP)


def is_pointer(label: object) -> bool:
    return isinstance(label, Pointer)
