"""The (log, Delta)-gadget family of Section 4."""

from repro.gadgets.build import BuiltGadget, build_gadget, gadget_size, subgadget_size
from repro.gadgets.checker import (
    StructuralViolation,
    check_component,
    check_node,
    component_is_valid,
)
from repro.gadgets.corruptions import CORRUPTIONS, Corruption, all_corruptions, corrupt
from repro.gadgets.family import GadgetFamily, LogGadgetFamily
from repro.gadgets.labels import (
    CENTER,
    Down,
    ERROR,
    GADOK,
    GadgetHalfInput,
    GadgetNodeInput,
    Index,
    LCHILD,
    LEFT,
    NOPORT,
    PARENT,
    Pointer,
    Port,
    RCHILD,
    RIGHT,
    TREE_LABELS,
    UP,
    is_pointer,
)
from repro.gadgets.prover import ProverResult, error_radius, run_prover
from repro.gadgets.psi import PsiViolation, psi_labels_are_error_only, verify_psi
from repro.gadgets.scope import GadgetScope

__all__ = [
    "BuiltGadget",
    "build_gadget",
    "gadget_size",
    "subgadget_size",
    "StructuralViolation",
    "check_component",
    "check_node",
    "component_is_valid",
    "CORRUPTIONS",
    "Corruption",
    "all_corruptions",
    "corrupt",
    "GadgetFamily",
    "LogGadgetFamily",
    "CENTER",
    "Down",
    "ERROR",
    "GADOK",
    "GadgetHalfInput",
    "GadgetNodeInput",
    "Index",
    "LCHILD",
    "LEFT",
    "NOPORT",
    "PARENT",
    "Pointer",
    "Port",
    "RCHILD",
    "RIGHT",
    "TREE_LABELS",
    "UP",
    "is_pointer",
    "ProverResult",
    "error_radius",
    "run_prover",
    "PsiViolation",
    "psi_labels_are_error_only",
    "verify_psi",
    "GadgetScope",
]
