"""Labelings over V, E, and B (half-edges).

A :class:`Labeling` assigns one label to every node, edge, and half-edge
of a graph, mirroring the paper's convention that "each element of
V x E x B is assigned exactly one label" (Section 3.3).  Missing
entries read as ``EMPTY``.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.lcl.labels import EMPTY
from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["Labeling"]


class Labeling:
    """Mutable label assignment for one graph.

    The graph is referenced for shape validation only; labels are stored
    sparsely and default to ``EMPTY``.
    """

    def __init__(self, graph: PortGraph):
        self.graph = graph
        self._node: dict[int, Hashable] = {}
        self._edge: dict[int, Hashable] = {}
        self._half: dict[HalfEdge, Hashable] = {}

    # -- node labels --------------------------------------------------------

    def node(self, v: int) -> Hashable:
        return self._node.get(v, EMPTY)

    def set_node(self, v: int, label: Hashable) -> None:
        if not 0 <= v < self.graph.num_nodes:
            raise KeyError(f"node {v} out of range")
        self._node[v] = label

    # -- edge labels --------------------------------------------------------

    def edge(self, eid: int) -> Hashable:
        return self._edge.get(eid, EMPTY)

    def set_edge(self, eid: int, label: Hashable) -> None:
        if not 0 <= eid < self.graph.num_edges:
            raise KeyError(f"edge {eid} out of range")
        self._edge[eid] = label

    # -- half-edge labels ------------------------------------------------------

    def half(self, side: HalfEdge) -> Hashable:
        return self._half.get(side, EMPTY)

    def half_at(self, v: int, port: int) -> Hashable:
        return self._half.get(HalfEdge(v, port), EMPTY)

    def set_half(self, side: HalfEdge, label: Hashable) -> None:
        v, port = side
        if not 0 <= v < self.graph.num_nodes or not 0 <= port < self.graph.degree(v):
            raise KeyError(f"half-edge {side} out of range")
        self._half[HalfEdge(v, port)] = label

    def set_half_at(self, v: int, port: int, label: Hashable) -> None:
        self.set_half(HalfEdge(v, port), label)

    # -- bulk operations -----------------------------------------------------------

    def fill_nodes(self, label: Hashable) -> "Labeling":
        for v in self.graph.nodes():
            self._node[v] = label
        return self

    def fill_edges(self, label: Hashable) -> "Labeling":
        for eid in range(self.graph.num_edges):
            self._edge[eid] = label
        return self

    def fill_halves(self, label: Hashable) -> "Labeling":
        for side in self.graph.half_edges():
            self._half[side] = label
        return self

    def copy(self) -> "Labeling":
        out = Labeling(self.graph)
        out._node = dict(self._node)
        out._edge = dict(self._edge)
        out._half = dict(self._half)
        return out

    # -- iteration / comparison ---------------------------------------------------

    def items(self) -> Iterator[tuple[str, Hashable, Hashable]]:
        """Yield ``(kind, key, label)`` for every explicitly set label."""
        for v, label in sorted(self._node.items()):
            yield ("node", v, label)
        for eid, label in sorted(self._edge.items()):
            yield ("edge", eid, label)
        for side, label in sorted(self._half.items()):
            yield ("half", side, label)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Labeling):
            return NotImplemented
        if self.graph is not other.graph:
            if (
                self.graph.num_nodes != other.graph.num_nodes
                or self.graph.num_edges != other.graph.num_edges
            ):
                return False
        mine = self._dense()
        theirs = other._dense()
        return mine == theirs

    def _dense(self) -> tuple:
        nodes = tuple(self.node(v) for v in self.graph.nodes())
        edges = tuple(self.edge(e) for e in range(self.graph.num_edges))
        halves = tuple(self.half(s) for s in self.graph.half_edges())
        return (nodes, edges, halves)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        set_counts = (len(self._node), len(self._edge), len(self._half))
        return f"Labeling(nodes={set_counts[0]}, edges={set_counts[1]}, halves={set_counts[2]})"
