"""Node-edge-checkable LCL problems (ne-LCLs).

Following Section 2 of the paper, an ne-LCL is given by input and output
label alphabets on V, E, and B, a node constraint ``C_N`` and an edge
constraint ``C_E``.  Constraints here are predicates over explicit
configuration objects; they must be independent of identifiers and port
numbers (the verifier enforces port-permutation checks only in tests, as
full invariance checking is exponential).

Node configurations present incident edges **in port order**; a
self-loop contributes two consecutive entries.  Edge configurations are
presented in both side orders to guarantee symmetric evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.lcl.labels import LabelSet

__all__ = ["NodeConfiguration", "EdgeConfiguration", "NeLCL"]


@dataclass(frozen=True)
class NodeConfiguration:
    """Everything the node constraint of an ne-LCL may inspect at a node.

    ``loop_ports[p]`` marks ports occupied by a self-loop; this is
    structural information a node sees locally (like its degree), not a
    label.
    """

    degree: int
    node_input: Hashable
    node_output: Hashable
    edge_inputs: tuple
    edge_outputs: tuple
    half_inputs: tuple
    half_outputs: tuple
    loop_ports: tuple = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.loop_ports is None:
            object.__setattr__(self, "loop_ports", (False,) * self.degree)
        for name in (
            "edge_inputs",
            "edge_outputs",
            "half_inputs",
            "half_outputs",
            "loop_ports",
        ):
            if len(getattr(self, name)) != self.degree:
                raise ValueError(f"{name} must have one entry per port")

    def ports(self) -> range:
        return range(self.degree)


@dataclass(frozen=True)
class EdgeConfiguration:
    """Everything the edge constraint may inspect at an edge {u, v}.

    Index 0 is the u side and index 1 the v side; for a self-loop the
    two sides are the two ports of the same node (and the node labels
    coincide).  ``flipped()`` swaps the sides; the verifier accepts only
    if the constraint holds for both orders, which forces effective
    symmetry.
    """

    node_inputs: tuple
    node_outputs: tuple
    edge_input: Hashable
    edge_output: Hashable
    half_inputs: tuple
    half_outputs: tuple
    is_loop: bool = False

    def flipped(self) -> "EdgeConfiguration":
        return EdgeConfiguration(
            node_inputs=(self.node_inputs[1], self.node_inputs[0]),
            node_outputs=(self.node_outputs[1], self.node_outputs[0]),
            edge_input=self.edge_input,
            edge_output=self.edge_output,
            half_inputs=(self.half_inputs[1], self.half_inputs[0]),
            half_outputs=(self.half_outputs[1], self.half_outputs[0]),
            is_loop=self.is_loop,
        )


@dataclass
class NeLCL:
    """A node-edge-checkable LCL problem.

    ``node_constraint`` and ``edge_constraint`` return ``True`` for
    acceptable configurations.  Alphabets may be ``None`` (shape checked
    but membership not enforced) or :class:`LabelSet` instances.

    ``edge_symmetric`` declares that ``edge_constraint`` is invariant
    under swapping the two sides; the verifier then skips the flipped
    re-evaluation of every edge.  Only set it when the constraint is
    genuinely symmetric — the double-sided check exists to catch
    ill-formed constraints.
    """

    name: str
    node_constraint: Callable[[NodeConfiguration], bool]
    edge_constraint: Callable[[EdgeConfiguration], bool]
    node_inputs: LabelSet | None = None
    edge_inputs: LabelSet | None = None
    half_inputs: LabelSet | None = None
    node_outputs: LabelSet | None = None
    edge_outputs: LabelSet | None = None
    half_outputs: LabelSet | None = None
    edge_symmetric: bool = False
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"NeLCL({self.name!r})"
