"""The distributed constant-time verifier for ne-LCLs.

``verify`` is the centralized simulation of the local checking
procedure that defines LCLs: every node evaluates its node constraint,
every edge its edge constraint, and the solution is correct iff all
accept.  Violations carry enough context to pinpoint the failing
element, which the test-suite and the corruption experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import kernels
from repro.lcl.assignment import Labeling
from repro.lcl.problem import EdgeConfiguration, NeLCL, NodeConfiguration
from repro.local.graphs import PortGraph

__all__ = [
    "PreparedVerifier",
    "Violation",
    "Verdict",
    "verify",
    "node_configuration",
    "edge_configuration",
]


@dataclass(frozen=True)
class Violation:
    kind: str  # "node" | "edge" | "domain"
    where: object  # node index, edge id, or (element kind, key)
    message: str

    def __str__(self) -> str:
        return f"[{self.kind} @ {self.where}] {self.message}"


@dataclass
class Verdict:
    ok: bool
    violations: list[Violation]

    def __bool__(self) -> bool:
        return self.ok

    def first(self) -> Violation | None:
        return self.violations[0] if self.violations else None

    def summary(self, limit: int = 5) -> str:
        if self.ok:
            return "accepted"
        lines = [f"rejected with {len(self.violations)} violation(s):"]
        lines += [f"  {v}" for v in self.violations[:limit]]
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)


def node_configuration(
    graph: PortGraph, v: int, inputs: Labeling, outputs: Labeling
) -> NodeConfiguration:
    """Assemble the configuration node ``v`` checks locally.

    Reads topology through the flat incidence core: edge ids come from
    the per-node table, and a port is a loop port exactly when its flat
    neighbor entry is ``v`` itself.  Plain ``(v, p)`` tuples stand in
    for :class:`HalfEdge` keys (NamedTuples compare and hash equal to
    plain tuples).
    """
    eids = graph.incident_edge_ids(v)
    degree = len(eids)
    sides = [(v, p) for p in range(degree)]
    in_edge, out_edge = inputs.edge, outputs.edge
    in_half, out_half = inputs.half, outputs.half
    return NodeConfiguration(
        degree=degree,
        node_input=inputs.node(v),
        node_output=outputs.node(v),
        edge_inputs=tuple(in_edge(e) for e in eids),
        edge_outputs=tuple(out_edge(e) for e in eids),
        half_inputs=tuple(in_half(s) for s in sides),
        half_outputs=tuple(out_half(s) for s in sides),
        loop_ports=tuple(u == v for u in graph.neighbors(v)),
    )


def edge_configuration(
    graph: PortGraph, eid: int, inputs: Labeling, outputs: Labeling
) -> EdgeConfiguration:
    """Assemble the configuration edge ``eid`` checks locally."""
    edge = graph.edge(eid)
    u_side, v_side = edge.a, edge.b
    return EdgeConfiguration(
        node_inputs=(inputs.node(u_side.node), inputs.node(v_side.node)),
        node_outputs=(outputs.node(u_side.node), outputs.node(v_side.node)),
        edge_input=inputs.edge(eid),
        edge_output=outputs.edge(eid),
        half_inputs=(inputs.half(u_side), inputs.half(v_side)),
        half_outputs=(outputs.half(u_side), outputs.half(v_side)),
        is_loop=edge.is_loop,
    )


def _domain_violations(
    problem: NeLCL,
    graph: PortGraph,
    labeling: Labeling,
    direction: str,
    limit: int | None = None,
) -> list[Violation]:
    """Domain-membership violations, stopping once ``limit`` are found."""
    sets = {
        "node": getattr(problem, f"node_{direction}s"),
        "edge": getattr(problem, f"edge_{direction}s"),
        "half": getattr(problem, f"half_{direction}s"),
    }
    out: list[Violation] = []
    if limit is not None and limit <= 0:
        return out
    if sets["node"] is not None:
        for v in graph.nodes():
            if labeling.node(v) not in sets["node"]:
                out.append(
                    Violation(
                        "domain",
                        ("node", v),
                        f"{direction} label {labeling.node(v)!r} not in "
                        f"{sets['node'].name}",
                    )
                )
                if limit is not None and len(out) >= limit:
                    return out
    if sets["edge"] is not None:
        for eid in range(graph.num_edges):
            if labeling.edge(eid) not in sets["edge"]:
                out.append(
                    Violation(
                        "domain",
                        ("edge", eid),
                        f"{direction} label {labeling.edge(eid)!r} not in "
                        f"{sets['edge'].name}",
                    )
                )
                if limit is not None and len(out) >= limit:
                    return out
    if sets["half"] is not None:
        for side in graph.half_edges():
            if labeling.half(side) not in sets["half"]:
                out.append(
                    Violation(
                        "domain",
                        ("half", side),
                        f"{direction} label {labeling.half(side)!r} not in "
                        f"{sets['half'].name}",
                    )
                )
                if limit is not None and len(out) >= limit:
                    return out
    return out


class PreparedVerifier:
    """Repeated verification against one (problem, graph, inputs) triple.

    A batch of trials that shares a frozen graph and one inputs labeling
    (seed-only reruns of a topology-reusable family) re-derives the same
    topology- and input-side configuration fields on every :func:`verify`
    call; only the output-dependent fields actually change between
    trials.  This class precomputes that invariant skeleton once and
    then evaluates exactly the constraint calls :func:`verify` makes
    with default options, so ``prepared.verify(outputs)`` returns a
    verdict identical to ``verify(problem, graph, inputs, outputs)``.

    The caller is responsible for only reusing an instance against the
    graph and inputs it was prepared with (:attr:`graph` and
    :attr:`inputs_src` expose them for identity checks).
    """

    def __init__(
        self, problem: NeLCL, graph: PortGraph, inputs: Labeling | None = None
    ):
        self.problem = problem
        self.graph = graph
        #: The inputs object handed in (None = "empty labeling"), kept
        #: for identity checks by batch drivers.
        self.inputs_src = inputs
        if inputs is None:
            inputs = Labeling(graph)
        node_skeleton = []
        for v in graph.nodes():
            eids = graph.incident_edge_ids(v)
            sides = [(v, p) for p in range(len(eids))]
            node_skeleton.append(
                (
                    v,
                    len(eids),
                    inputs.node(v),
                    tuple(inputs.edge(e) for e in eids),
                    tuple(inputs.half(s) for s in sides),
                    tuple(u == v for u in graph.neighbors(v)),
                    eids,
                    sides,
                )
            )
        edge_skeleton = []
        for eid in range(graph.num_edges):
            edge = graph.edge(eid)
            u_side, v_side = edge.a, edge.b
            edge_skeleton.append(
                (
                    eid,
                    u_side,
                    v_side,
                    (inputs.node(u_side.node), inputs.node(v_side.node)),
                    inputs.edge(eid),
                    (inputs.half(u_side), inputs.half(v_side)),
                    edge.is_loop,
                )
            )
        self._node_skeleton = node_skeleton
        self._edge_skeleton = edge_skeleton

    def verify(self, outputs: Labeling) -> Verdict:
        """The verdict ``verify(problem, graph, inputs, outputs)`` returns."""
        from repro.lcl.labels import EMPTY

        problem = self.problem
        violations = _domain_violations(problem, self.graph, outputs, "output")
        # Hot path: labels are read straight off the labeling's sparse
        # maps (same ``get(key, EMPTY)`` the accessors perform), and the
        # configurations are allocated without re-running ``__post_init__``
        # — the skeleton's per-port tuples are length-consistent by
        # construction, so the skipped validation could never fire.
        out_node = outputs._node.get
        out_edge = outputs._edge.get
        out_half = outputs._half.get
        new_node_config = NodeConfiguration.__new__
        new_edge_config = EdgeConfiguration.__new__
        node_constraint = problem.node_constraint
        for v, degree, n_in, e_in, h_in, loops, eids, sides in self._node_skeleton:
            config = new_node_config(NodeConfiguration)
            config.__dict__.update(
                degree=degree,
                node_input=n_in,
                node_output=out_node(v, EMPTY),
                edge_inputs=e_in,
                edge_outputs=tuple(out_edge(e, EMPTY) for e in eids),
                half_inputs=h_in,
                half_outputs=tuple(out_half(s, EMPTY) for s in sides),
                loop_ports=loops,
            )
            if not node_constraint(config):
                violations.append(
                    Violation("node", v, f"node constraint of {problem.name} failed")
                )
        edge_constraint = problem.edge_constraint
        check_flip = not problem.edge_symmetric
        for eid, u_side, v_side, n_in, e_in, h_in, is_loop in self._edge_skeleton:
            config = new_edge_config(EdgeConfiguration)
            config.__dict__.update(
                node_inputs=n_in,
                node_outputs=(
                    out_node(u_side.node, EMPTY),
                    out_node(v_side.node, EMPTY),
                ),
                edge_input=e_in,
                edge_output=out_edge(eid, EMPTY),
                half_inputs=h_in,
                half_outputs=(out_half(u_side, EMPTY), out_half(v_side, EMPTY)),
                is_loop=is_loop,
            )
            if not edge_constraint(config):
                violations.append(
                    Violation(
                        "edge", eid, f"edge constraint of {problem.name} failed"
                    )
                )
            elif check_flip and not edge_constraint(config.flipped()):
                violations.append(
                    Violation(
                        "edge",
                        eid,
                        f"edge constraint of {problem.name} is asymmetric "
                        "(accepted one side order, rejected the other)",
                    )
                )
        return Verdict(ok=not violations, violations=violations)


def verify(
    problem: NeLCL,
    graph: PortGraph,
    inputs: Labeling,
    outputs: Labeling,
    check_input_domain: bool = False,
    max_violations: int | None = None,
) -> Verdict:
    """Run the distributed checker and collect violations.

    Edge constraints are evaluated on both side orders; both must
    accept, which makes asymmetric (hence ill-formed) constraints fail
    loudly instead of silently depending on storage order.  Problems
    that declare :attr:`NeLCL.edge_symmetric` vouch for symmetry and
    skip the second evaluation.  ``max_violations`` caps every pass,
    including the domain passes.
    """
    if (
        max_violations is None
        and not check_input_domain
        and kernels.vector_enabled()
    ):
        # Default-option verification has a vectorized twin that checks
        # each *distinct* configuration once; the verdict is identical,
        # violations included.
        from repro.kernels.verifier import vector_verify

        return vector_verify(problem, graph, inputs, outputs)
    violations: list[Violation] = []

    def full() -> bool:
        return max_violations is not None and len(violations) >= max_violations

    def remaining() -> int | None:
        # Budget left for the next pass.  A non-positive cap leaves the
        # domain passes uncapped (historical behavior: ``ok`` still
        # reflects domain validity even with ``max_violations=0``).
        if max_violations is None or max_violations <= 0:
            return None
        return max_violations - len(violations)

    violations.extend(
        _domain_violations(problem, graph, outputs, "output", remaining())
    )
    if check_input_domain and not full():
        violations.extend(
            _domain_violations(problem, graph, inputs, "input", remaining())
        )

    node_constraint = problem.node_constraint
    if not full():
        for v in graph.nodes():
            config = node_configuration(graph, v, inputs, outputs)
            if not node_constraint(config):
                violations.append(
                    Violation("node", v, f"node constraint of {problem.name} failed")
                )
                if full():
                    break
    edge_constraint = problem.edge_constraint
    check_flip = not problem.edge_symmetric
    if not full():
        for eid in range(graph.num_edges):
            config = edge_configuration(graph, eid, inputs, outputs)
            if not edge_constraint(config):
                violations.append(
                    Violation(
                        "edge", eid, f"edge constraint of {problem.name} failed"
                    )
                )
                if full():
                    break
            elif check_flip and not edge_constraint(config.flipped()):
                violations.append(
                    Violation(
                        "edge",
                        eid,
                        f"edge constraint of {problem.name} is asymmetric "
                        "(accepted one side order, rejected the other)",
                    )
                )
                if full():
                    break
    return Verdict(ok=not violations, violations=violations)
