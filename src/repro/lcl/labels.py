"""Label atoms and finite label sets for ne-LCLs.

Labels are plain hashable Python values (strings, ints, tuples of
labels).  Two conventions from the paper are made explicit:

* ``EMPTY`` is the paper's "empty label": the input of problems whose
  nodes receive no meaningful input (e.g. vertex coloring), and the
  filler used when multiple labels are packed into one.
* ``BLANK`` is the epsilon output of the padded problem Pi' (written
  as an empty box in Section 3.3): the forced output of port edges and
  their half-edges.
"""

from __future__ import annotations

from typing import Hashable, Iterable

__all__ = ["EMPTY", "BLANK", "LabelSet"]


class _Sentinel:
    """A named singleton label."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name

    def __copy__(self) -> "_Sentinel":
        return self

    def __deepcopy__(self, memo) -> "_Sentinel":
        return self


EMPTY = _Sentinel("EMPTY")
BLANK = _Sentinel("BLANK")


class LabelSet:
    """A named finite label alphabet with membership checking.

    ``closed=False`` creates an open alphabet: membership is not
    enforced.  Open alphabets are used for structured label spaces such
    as the Sigma_list tuples of Section 3.3, which are finite for fixed
    Delta but impractical to enumerate.
    """

    def __init__(self, name: str, values: Iterable[Hashable] = (), closed: bool = True):
        self.name = name
        self.values = frozenset(values)
        self.closed = closed
        if closed and not self.values:
            raise ValueError(f"closed label set {name!r} cannot be empty")

    def __contains__(self, label: Hashable) -> bool:
        if not self.closed:
            return True
        return label in self.values

    def __iter__(self):
        return iter(sorted(self.values, key=repr))

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        kind = "closed" if self.closed else "open"
        return f"LabelSet({self.name!r}, {len(self.values)} values, {kind})"

    @classmethod
    def open_set(cls, name: str) -> "LabelSet":
        return cls(name, (), closed=False)
