"""The locally-checkable-labeling formalism (ne-LCLs, Section 2)."""

from repro.lcl.assignment import Labeling
from repro.lcl.labels import BLANK, EMPTY, LabelSet
from repro.lcl.problem import EdgeConfiguration, NeLCL, NodeConfiguration
from repro.lcl.verifier import (
    Verdict,
    Violation,
    edge_configuration,
    node_configuration,
    verify,
)

__all__ = [
    "Labeling",
    "BLANK",
    "EMPTY",
    "LabelSet",
    "EdgeConfiguration",
    "NeLCL",
    "NodeConfiguration",
    "Verdict",
    "Violation",
    "edge_configuration",
    "node_configuration",
    "verify",
]
