"""JSONL trace sink: span intervals and events as an append-only stream.

The sink is the *offline* half of the telemetry layer: attach one to a
:class:`~repro.obs.telemetry.Telemetry` and every closed span and every
``event`` call appends one JSON line — ``{"t": wall-clock, "pid": ...,
"kind": "span" | "event", ...}`` — suitable for grep, pandas, or a
trace viewer.  It is off by default (``--trace PATH`` on the CLI turns
it on) and stays out of the hot path entirely when detached: the only
cost without a sink is one attribute test per span close.

Tracing is parent-process only: worker processes detach any inherited
sink when they initialize (one writer per file, no interleaved lines).
Lines flush on every emit, so a killed run leaves at worst one torn
trailing line — the same failure mode the trial cache already
tolerates everywhere.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, TextIO

__all__ = ["TraceSink"]


class TraceSink:
    """Append telemetry records to a JSONL file, one line per record."""

    def __init__(self, path: str):
        self.path = path
        self._handle: TextIO | None = open(path, "a", encoding="utf-8")
        self._pid = os.getpid()

    def emit(self, record: dict[str, Any]) -> None:
        handle = self._handle
        if handle is None:
            return
        line = json.dumps(
            {"t": time.time(), "pid": self._pid, **record}, sort_keys=True
        )
        try:
            handle.write(line + "\n")
            handle.flush()
        except OSError:
            # A full disk must not take the experiment down with it;
            # drop the sink and keep computing.
            self.close()

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
