"""Process-local telemetry: spans, counters, events — snapshot/merge-able.

One :class:`Telemetry` object per process accumulates three primitive
kinds of signal:

* **spans** — named, nestable, monotonic-clock timed sections.  Each
  distinct span *path* (names of enclosing spans joined with ``/``)
  aggregates to ``(count, total_s, min_s, max_s)``; the raw intervals
  also stream to an attached trace sink, when one is attached.
* **counters** — monotonic non-negative integers (cache hits, core
  reuses, chunks dispatched).
* **events** — structured records forwarded verbatim to the trace sink
  (a no-op without one, so the hot path pays one attribute test).

The layer is deliberately passive: nothing here ever touches trial
records, RNG state, or the cache contents, so enabling or disabling
telemetry cannot change what an experiment computes.

Snapshot / merge algebra
------------------------

Distribution follows the trial store's idempotent-merge design.  A
:meth:`Telemetry.snapshot` is a JSON-safe dict whose payload lives
under ``parts``, keyed by a unique *origin* id (``pid:seq`` by
default).  With ``reset=True`` the snapshot is a **delta** — it drains
everything accrued since the previous reset — so a long-running
process partitions its activity into disjoint parts, each counted in
exactly one snapshot.  :func:`merge_snapshots` is then a plain key
union over origins:

* **idempotent** — re-merging a snapshot (a retried chunk result, a
  re-delivered shard report) changes nothing, because its origins are
  already present;
* **commutative / associative** — origins are disjoint keys, so any
  merge order yields the same mapping (parts are stored key-sorted to
  make equal merges compare equal structurally, too).

:func:`aggregate` folds a merged snapshot's parts into one flat
``{"counters": ..., "spans": ...}`` view for rendering; the folds
(integer sums; count/total/min/max combination) are themselves
commutative and associative, so the aggregate is independent of merge
order by construction.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Iterable, Mapping, Sequence

__all__ = [
    "SNAPSHOT_VERSION",
    "Telemetry",
    "aggregate",
    "get_telemetry",
    "merge_snapshots",
    "set_enabled",
]

# Bump when the snapshot layout changes; mergers refuse foreign
# versions rather than silently misreading parts.
SNAPSHOT_VERSION = 1

_SPAN_ZERO = (0, 0.0, float("inf"), 0.0)  # count, total, min, max

# (pid, nonce) for default snapshot origins.  The nonce regenerates
# whenever the pid changes (fork), and keeps origins from colliding
# when snapshots from different *hosts* — where bare pids can repeat —
# meet in one merge.
_PROCESS_TAG: list = [None, None]


def _process_tag() -> str:
    pid = os.getpid()
    if _PROCESS_TAG[0] != pid:
        _PROCESS_TAG[0] = pid
        _PROCESS_TAG[1] = os.urandom(4).hex()
    return f"{pid}-{_PROCESS_TAG[1]}"


class _Span:
    """One timed section; re-entrant via fresh objects, thread-aware."""

    __slots__ = ("_telemetry", "_name", "_path", "_t0")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name
        self._path = name
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        stack = self._telemetry._stack()
        if stack:
            self._path = f"{stack[-1]}/{self._name}"
        stack.append(self._path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        stack = self._telemetry._stack()
        if stack and stack[-1] == self._path:
            stack.pop()
        self._telemetry._record_span(self._path, elapsed, len(stack))


class _NullSpan:
    """The disabled-telemetry span: one shared no-op object."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """One process's live telemetry registry.

    Thread-safe for counters and span recording (one lock, held only
    for dict updates); the span nesting stack is thread-local, so
    concurrent threads nest independently.  ``enabled=False`` turns
    every primitive into a near-free no-op — the records an experiment
    produces are identical either way, only the accounting disappears.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._spans: dict[str, tuple[int, float, float, float]] = {}
        self._local = threading.local()
        self._seq = 0
        self._sink: Any = None  # duck-typed: .emit(dict), .close()

    # -- internals -----------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_span(self, path: str, elapsed: float, depth: int) -> None:
        with self._lock:
            count, total, lo, hi = self._spans.get(path, _SPAN_ZERO)
            self._spans[path] = (
                count + 1,
                total + elapsed,
                min(lo, elapsed),
                max(hi, elapsed),
            )
        sink = self._sink
        if sink is not None:
            sink.emit(
                {"kind": "span", "name": path, "depth": depth, "dur_s": elapsed}
            )

    # -- primitives ----------------------------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a monotonic counter (created at zero)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def span(self, name: str):
        """A context manager timing one named, nestable section."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def event(self, name: str, **fields: Any) -> None:
        """Forward one structured record to the trace sink, if any."""
        if not self.enabled:
            return
        sink = self._sink
        if sink is not None:
            sink.emit({"kind": "event", "name": name, **fields})

    # -- trace sink ----------------------------------------------------

    def attach_sink(self, sink: Any) -> None:
        """Stream spans/events to ``sink`` (anything with ``emit(dict)``)."""
        self._sink = sink

    def detach_sink(self) -> Any:
        """Detach and return the current sink (None when absent)."""
        sink, self._sink = self._sink, None
        return sink

    # -- snapshot / reset ----------------------------------------------

    def counters(self) -> dict[str, int]:
        """A copy of the live counter map (test/inspection helper)."""
        with self._lock:
            return dict(self._counters)

    def span_stats(self) -> dict[str, dict[str, float]]:
        """A copy of the live span aggregates, JSON-shaped."""
        with self._lock:
            return {path: _span_dict(stat) for path, stat in self._spans.items()}

    def reset(self) -> None:
        """Drop everything accrued (worker processes reset after fork)."""
        with self._lock:
            self._counters.clear()
            self._spans.clear()

    def snapshot(self, origin: str | None = None, reset: bool = False) -> dict:
        """A JSON-safe, mergeable view of everything accrued.

        ``origin`` names this snapshot's part; the default
        ``pid-nonce:seq`` is unique per process *and* per call, which
        is what makes delta snapshots (``reset=True``) merge
        exactly-once.  An empty registry snapshots to zero parts, so
        idle processes add nothing to a merge.
        """
        with self._lock:
            if origin is None:
                origin = f"{_process_tag()}:{self._seq}"
            self._seq += 1
            counters = dict(self._counters)
            spans = {path: _span_dict(stat) for path, stat in self._spans.items()}
            if reset:
                self._counters.clear()
                self._spans.clear()
        parts: dict[str, Any] = {}
        if counters or spans:
            parts[origin] = {"counters": counters, "spans": spans}
        return {"v": SNAPSHOT_VERSION, "parts": parts}


def _span_dict(stat: Sequence[float]) -> dict[str, float]:
    count, total, lo, hi = stat
    return {
        "count": int(count),
        "total_s": total,
        "min_s": 0.0 if lo == float("inf") else lo,
        "max_s": hi,
    }


def merge_snapshots(snapshots: Iterable[Mapping | None]) -> dict:
    """Key-union snapshots by origin: idempotent, commutative.

    ``None`` entries are tolerated (a report whose producer had
    telemetry disabled merges as empty).  A duplicate origin must
    carry the same part it did before — parts are deltas of one
    process interval, so a collision is a re-delivery, not a conflict
    — and is skipped, which is exactly what makes retried chunks and
    re-merged shard reports count once.
    """
    parts: dict[str, Any] = {}
    for snap in snapshots:
        if not snap:
            continue
        version = snap.get("v")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported telemetry snapshot version {version!r} "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        for origin, part in snap.get("parts", {}).items():
            parts.setdefault(origin, part)
    return {"v": SNAPSHOT_VERSION, "parts": dict(sorted(parts.items()))}


def aggregate(snapshot: Mapping | None) -> dict[str, dict]:
    """Fold a snapshot's parts into one flat counters/spans view."""
    counters: dict[str, int] = {}
    spans: dict[str, dict[str, float]] = {}
    if snapshot:
        for part in snapshot.get("parts", {}).values():
            for name, value in part.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + int(value)
            for path, stat in part.get("spans", {}).items():
                into = spans.get(path)
                if into is None:
                    spans[path] = dict(stat)
                else:
                    into["count"] += stat["count"]
                    into["total_s"] += stat["total_s"]
                    into["min_s"] = min(into["min_s"], stat["min_s"])
                    into["max_s"] = max(into["max_s"], stat["max_s"])
    return {
        "counters": dict(sorted(counters.items())),
        "spans": dict(sorted(spans.items())),
    }


# -- the process-default registry ---------------------------------------
#
# Library code records into one shared per-process Telemetry; the
# runner drains it into reports via delta snapshots.  Worker processes
# reset it right after fork (see repro.engine.pool) so inherited parent
# state is never double-counted.

_DEFAULT = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-default telemetry registry."""
    return _DEFAULT


def set_enabled(enabled: bool) -> bool:
    """Toggle the default registry; returns the previous state."""
    previous = _DEFAULT.enabled
    _DEFAULT.enabled = enabled
    return previous
