"""Shard heartbeats: progress payloads on disk, liveness decided upstream.

A shard run periodically publishes a :class:`Heartbeat` — a small JSON
file replaced atomically on every write — carrying a monotonically
increasing ``seq``, trial progress, and (optionally) a cumulative
telemetry snapshot of the emitting process.  The file is the whole
protocol: any observer that can read it (the fabric launcher, ``status
--heartbeats``, a human with ``cat``) can judge the shard's health, and
a shard that dies or hangs simply stops replacing it.

Liveness is **observer-side** by design: the emitter writes only when
it makes progress (a trial completed, a phase changed), never from a
background keep-alive thread — a wedged main loop must not look
healthy because a timer thread still runs.  The
:class:`LivenessMonitor` therefore tracks *when each key's ``seq`` last
changed* on the observer's own monotonic clock, which also sidesteps
clock skew between hosts: staleness compares two local readings, never
an emitter timestamp.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.util.fsio import atomic_write_text

__all__ = [
    "HEARTBEAT_VERSION",
    "Heartbeat",
    "HeartbeatEmitter",
    "LivenessMonitor",
    "format_liveness",
    "read_heartbeat",
    "write_heartbeat",
]

# Bump when the payload layout changes; readers treat a foreign version
# as "no heartbeat" rather than misjudging liveness from stale fields.
HEARTBEAT_VERSION = 1


@dataclass(frozen=True)
class Heartbeat:
    """One progress beat: sequence number, phase, and trial counts."""

    seq: int
    shard_index: int
    pid: int
    #: "start" (process up, nothing run), "record" (mid-run), "done".
    phase: str
    done: int
    total: int
    #: Optional cumulative telemetry snapshot of the emitting process —
    #: a *view* for dashboards, never merged into reports (report
    #: telemetry travels via the delta-snapshot pipeline).
    telemetry: dict[str, Any] | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "v": HEARTBEAT_VERSION,
            "seq": self.seq,
            "shard_index": self.shard_index,
            "pid": self.pid,
            "phase": self.phase,
            "done": self.done,
            "total": self.total,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Heartbeat":
        return cls(
            seq=int(payload["seq"]),
            shard_index=int(payload["shard_index"]),
            pid=int(payload["pid"]),
            phase=str(payload["phase"]),
            done=int(payload["done"]),
            total=int(payload["total"]),
            telemetry=payload.get("telemetry"),
        )


def write_heartbeat(path: str, heartbeat: Heartbeat) -> None:
    """Atomically replace ``path`` with one heartbeat payload."""
    atomic_write_text(path, json.dumps(heartbeat.as_dict(), sort_keys=True))


def read_heartbeat(path: str) -> Heartbeat | None:
    """The current heartbeat at ``path``, or None.

    Missing files, unreadable JSON, and foreign versions all read as
    "no heartbeat" — the observer's timeout handles them uniformly, and
    atomic writes mean a torn payload can only come from a foreign
    writer anyway.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or payload.get("v") != HEARTBEAT_VERSION:
        return None
    try:
        return Heartbeat.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        return None


class HeartbeatEmitter:
    """Publish progress beats for one shard run, throttled.

    ``record()`` is wired into the runner's ``on_record`` stream; with
    millisecond trials that would mean thousands of file replacements,
    so beats are coalesced to at most one write per ``min_interval``
    seconds.  Phase transitions (``start()``/``done()``) always write —
    the observer must see the process come up before the first trial
    lands, and the final beat must report the true total.
    """

    def __init__(
        self,
        path: str,
        shard_index: int,
        total: int,
        min_interval: float = 0.2,
        with_telemetry: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.path = path
        self.shard_index = shard_index
        self.total = total
        self.min_interval = min_interval
        self.with_telemetry = with_telemetry
        self._clock = clock
        self._seq = 0
        self._done = 0
        self._phase = "start"
        self._last_write = float("-inf")

    def start(self) -> None:
        self._phase = "start"
        self._write(force=True)

    def record(self) -> None:
        """One trial completed; write unless inside the throttle window."""
        self._done += 1
        self._phase = "record"
        self._write(force=False)

    def done(self) -> None:
        self._phase = "done"
        self._write(force=True)

    def _write(self, force: bool) -> None:
        now = self._clock()
        if not force and now - self._last_write < self.min_interval:
            return
        self._last_write = now
        self._seq += 1
        telemetry = None
        if self.with_telemetry:
            from repro.obs.telemetry import get_telemetry

            # A cumulative (non-reset) snapshot under a fixed origin:
            # draining here would steal deltas from the shard report.
            telemetry = get_telemetry().snapshot(origin="heartbeat")
        write_heartbeat(
            self.path,
            Heartbeat(
                seq=self._seq,
                shard_index=self.shard_index,
                pid=os.getpid(),
                phase=self._phase,
                done=self._done,
                total=self.total,
                telemetry=telemetry,
            ),
        )


class LivenessMonitor:
    """Observer-side staleness tracking over heartbeat files.

    One monitor watches many keys (one per running shard).  ``observe``
    re-reads a key's file and records *on the monitor's clock* when its
    ``seq`` last advanced; ``stale`` then answers "has this key gone
    ``timeout`` seconds without progress?".  Keys start their clock at
    ``watch`` time, so a process that never writes its first beat times
    out too.
    """

    def __init__(self, timeout: float, clock: Callable[[], float] = time.monotonic):
        if timeout <= 0:
            raise ValueError(f"liveness timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._clock = clock
        # key -> (path, last seq seen or None, clock reading at last change)
        self._watched: dict[Any, tuple[str, int | None, float]] = {}
        self._beats: dict[Any, Heartbeat | None] = {}

    def watch(self, key: Any, path: str) -> None:
        self._watched[key] = (path, None, self._clock())
        self._beats[key] = None

    def forget(self, key: Any) -> None:
        self._watched.pop(key, None)
        self._beats.pop(key, None)

    def observe(self, key: Any) -> Heartbeat | None:
        """Re-read one key's heartbeat; returns the latest payload."""
        path, last_seq, changed_at = self._watched[key]
        beat = read_heartbeat(path)
        self._beats[key] = beat
        if beat is not None and beat.seq != last_seq:
            self._watched[key] = (path, beat.seq, self._clock())
        return beat

    def age(self, key: Any) -> float:
        """Seconds (on the monitor's clock) since ``key`` last progressed."""
        _path, _seq, changed_at = self._watched[key]
        return self._clock() - changed_at

    def stale(self, key: Any) -> bool:
        return self.age(key) > self.timeout

    def last_beat(self, key: Any) -> Heartbeat | None:
        return self._beats.get(key)

    def entries(self) -> list[tuple[Any, Heartbeat | None, float, bool]]:
        """(key, last beat, age, stale) rows for every watched key."""
        return [
            (key, self._beats.get(key), self.age(key), self.stale(key))
            for key in self._watched
        ]


def format_liveness(monitor: LivenessMonitor) -> str:
    """Render a monitor's view as the shard liveness table."""
    from repro.analysis import render_table

    rows = []
    for key, beat, age, stale in sorted(
        monitor.entries(), key=lambda entry: str(entry[0])
    ):
        if beat is None:
            phase, progress = "(no heartbeat)", "-"
        else:
            phase = beat.phase
            progress = f"{beat.done}/{beat.total}"
        state = "STALE" if stale else "live"
        rows.append([key, phase, progress, f"{age:.1f}s", state])
    return render_table(
        ["shard", "phase", "trials", "since progress", "state"],
        rows,
        title=f"heartbeat liveness (timeout {monitor.timeout:.1f}s)",
    )
