"""Human-readable rendering of telemetry snapshots.

``format_telemetry`` turns a (merged) snapshot into the same
fixed-width tables the benchmark suite and CLI already print: one
phase-breakdown table for spans — with each span's share of the total
span time, which is what finally answers "where does the time go?" —
and one table for counters.  The CLI's ``stats`` subcommand and
``cache --status`` both come here.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.telemetry import aggregate

__all__ = ["format_telemetry"]


def _render_table(headers, rows, title):
    # Lazy import: repro.analysis pulls in the engine for its run_sweep
    # shim, and the obs layer must stay importable from anywhere.
    from repro.analysis import render_table

    return render_table(headers, rows, title=title)


def format_telemetry(
    snapshot: Mapping | None,
    title: str = "telemetry",
    counter_prefix: str = "",
) -> str:
    """Render a snapshot as phase/counter tables (or an honest 'empty').

    ``counter_prefix`` filters the counter table (e.g. ``"cache."`` for
    ``cache --status``); spans are always shown in full.  Accepts raw
    and merged snapshots alike — anything :func:`repro.obs.aggregate`
    reads.
    """
    view = aggregate(snapshot)
    spans = view["spans"]
    counters = {
        name: value
        for name, value in view["counters"].items()
        if name.startswith(counter_prefix)
    }
    blocks = []
    if spans:
        # Share of the *top-level* span time: nested spans re-count
        # their parents' time, so the denominator only sums roots.
        root_total = sum(
            stat["total_s"] for path, stat in spans.items() if "/" not in path
        )
        rows = []
        for path, stat in spans.items():
            mean_ms = stat["total_s"] / stat["count"] * 1e3 if stat["count"] else 0.0
            share = (
                f"{stat['total_s'] / root_total * 100:.1f}%"
                if "/" not in path and root_total > 0
                else "-"
            )
            rows.append(
                [
                    path,
                    stat["count"],
                    round(stat["total_s"], 4),
                    round(mean_ms, 3),
                    round(stat["max_s"] * 1e3, 3),
                    share,
                ]
            )
        blocks.append(
            _render_table(
                ["span", "count", "total s", "mean ms", "max ms", "share"],
                rows,
                title=f"{title}: phases",
            )
        )
    if counters:
        blocks.append(
            _render_table(
                ["counter", "value"],
                [[name, value] for name, value in counters.items()],
                title=f"{title}: counters",
            )
        )
    if not blocks:
        return f"{title}: no telemetry recorded"
    return "\n\n".join(blocks)
