"""Observability: spans, counters, and events across the engine stack.

A lightweight, stdlib-only telemetry layer with the same merge algebra
as the trial store: process-local accumulation
(:class:`~repro.obs.telemetry.Telemetry`), delta snapshots keyed by
unique origins, and an idempotent + commutative
:func:`~repro.obs.telemetry.merge_snapshots` union — so worker and
shard telemetry reduce across processes and hosts exactly like trial
records do.  The engine threads it through every layer (trial phase
spans in the drivers, cache hit/miss counters, per-chunk worker
snapshots piggybacked on batch results, merged ``telemetry`` blocks on
reports); ``python -m repro.engine stats`` and ``--trace PATH`` expose
it from the shell.

Telemetry is provably inert: nothing in this package touches records,
RNG, or cache contents, so runs are bit-identical with it enabled or
disabled.
"""

from repro.obs.telemetry import (
    SNAPSHOT_VERSION,
    Telemetry,
    aggregate,
    get_telemetry,
    merge_snapshots,
    set_enabled,
)
from repro.obs.trace import TraceSink
from repro.obs.render import format_telemetry
from repro.obs.heartbeat import (
    HEARTBEAT_VERSION,
    Heartbeat,
    HeartbeatEmitter,
    LivenessMonitor,
    format_liveness,
    read_heartbeat,
    write_heartbeat,
)

__all__ = [
    "HEARTBEAT_VERSION",
    "Heartbeat",
    "HeartbeatEmitter",
    "LivenessMonitor",
    "SNAPSHOT_VERSION",
    "Telemetry",
    "TraceSink",
    "aggregate",
    "format_liveness",
    "format_telemetry",
    "get_telemetry",
    "merge_snapshots",
    "read_heartbeat",
    "set_enabled",
    "write_heartbeat",
]
