"""Measurement and reporting: growth fits, sweeps, the Figure 1 table."""

from repro.analysis.growth import (
    GROWTH_FUNCTIONS,
    GrowthFit,
    best_fit,
    fit_growth,
    ratio_series,
)
from repro.analysis.landscape import LandscapeRow, measure_row, render_landscape
from repro.analysis.sweep import Sweep, SweepPoint, run_sweep
from repro.analysis.tables import render_table

__all__ = [
    "GROWTH_FUNCTIONS",
    "GrowthFit",
    "best_fit",
    "fit_growth",
    "ratio_series",
    "LandscapeRow",
    "measure_row",
    "render_landscape",
    "Sweep",
    "SweepPoint",
    "run_sweep",
    "render_table",
]
