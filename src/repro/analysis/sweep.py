"""n-sweeps: run a solver across sizes and seeds, collect round counts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.local.algorithm import Instance, LocalAlgorithm

__all__ = ["SweepPoint", "Sweep", "run_sweep"]

InstanceFactory = Callable[[int, int], Instance]


@dataclass
class SweepPoint:
    n: int
    trials: int
    rounds_mean: float
    rounds_max: int
    rounds_min: int

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(
                f"SweepPoint(n={self.n}) needs at least one trial; a mean "
                "over zero trials is undefined"
            )

    def row(self) -> list:
        return [self.n, self.trials, round(self.rounds_mean, 2), self.rounds_max]


@dataclass
class Sweep:
    solver_name: str
    points: list[SweepPoint]

    def ns(self) -> list[int]:
        return [p.n for p in self.points]

    def means(self) -> list[float]:
        return [p.rounds_mean for p in self.points]

    def maxima(self) -> list[int]:
        return [p.rounds_max for p in self.points]


def run_sweep(
    solver: LocalAlgorithm,
    instance_factory: InstanceFactory,
    ns: Sequence[int],
    seeds: Sequence[int] = (0, 1, 2),
    verify: Callable[[Instance, object], None] | None = None,
) -> Sweep:
    """Measure ``solver`` on instances of each size.

    ``instance_factory(n, seed)`` builds one instance; the reported
    ``n`` is the actual instance size (which may differ slightly from
    the requested one, e.g. for gadget-rounded paddings).  ``verify``
    (if given) receives ``(instance, result)`` after every run and
    should raise on invalid outputs, so sweeps never report rounds of
    wrong solutions.

    This is a thin shim over :func:`repro.engine.runner.run_callable_sweep`
    (imported lazily to keep ``repro.analysis`` importable on its own);
    callers holding importable references instead of live objects
    should use :func:`repro.engine.runner.run_experiment` directly and
    gain multiprocessing and trial caching for free.
    """
    if not seeds:
        raise ValueError("run_sweep needs at least one seed (got an empty grid)")
    from repro.engine.runner import run_callable_sweep

    return run_callable_sweep(solver, instance_factory, ns, seeds, verify)
