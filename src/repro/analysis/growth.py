"""Growth-shape fitting: which Theta-class do measured rounds follow?

The paper's results are asymptotic; the reproduction measures round
counts over an ``n``-sweep and asks which growth function from the
landscape's dictionary (Figure 1's axes) explains them best.  Each
candidate ``g`` is fitted as ``rounds ~ a * g(n) + b`` by least
squares; candidates are ranked by RMSE on the normalized series, so
slowly and quickly growing shapes compete fairly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.util.logmath import log_star

__all__ = [
    "GROWTH_FUNCTIONS",
    "GrowthFit",
    "fit_growth",
    "best_fit",
    "growth_rank",
    "ratio_series",
]


def _log(n: float) -> float:
    return math.log2(max(n, 2.0))


GROWTH_FUNCTIONS: dict[str, Callable[[float], float]] = {
    "1": lambda n: 1.0,
    "log*": lambda n: float(log_star(n)),
    "loglog": lambda n: math.log2(max(_log(n), 2.0)),
    "log": _log,
    "log loglog": lambda n: _log(n) * math.log2(max(_log(n), 2.0)),
    "log^2": lambda n: _log(n) ** 2,
    "log^2 loglog": lambda n: _log(n) ** 2 * math.log2(max(_log(n), 2.0)),
    "log^3": lambda n: _log(n) ** 3,
    "sqrt": lambda n: math.sqrt(n),
    "n": lambda n: float(n),
}


@dataclass
class GrowthFit:
    name: str
    scale: float  # a in rounds ~ a * g(n) + b
    offset: float
    rmse: float  # on the normalized series

    def predict(self, n: float) -> float:
        return self.scale * GROWTH_FUNCTIONS[self.name](n) + self.offset

    def __str__(self) -> str:
        return f"{self.scale:.2f} * {self.name}(n) + {self.offset:.2f} (rmse {self.rmse:.3f})"


def _least_squares(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0:
        return 0.0, mean_y
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    a = cov / var_x
    return a, mean_y - a * mean_x


def fit_growth(
    ns: Sequence[int],
    rounds: Sequence[float],
    candidates: Sequence[str] | None = None,
) -> list[GrowthFit]:
    """All candidate fits, best first."""
    if len(ns) != len(rounds) or len(ns) < 3:
        raise ValueError("need at least three (n, rounds) points")
    if candidates is None:
        candidates = list(GROWTH_FUNCTIONS)
    spread = max(rounds) - min(rounds)
    scale_norm = spread if spread > 0 else max(max(rounds), 1.0)
    fits = []
    for name in candidates:
        g = GROWTH_FUNCTIONS[name]
        xs = [g(n) for n in ns]
        a, b = _least_squares(xs, rounds)
        if a < 0:
            # decreasing fits are clamped: growth classes only
            a, b = 0.0, sum(rounds) / len(rounds)
        residuals = [
            (a * x + b - y) / scale_norm for x, y in zip(xs, rounds)
        ]
        rmse = math.sqrt(sum(r * r for r in residuals) / len(residuals))
        fits.append(GrowthFit(name, a, b, rmse))
    fits.sort(key=lambda fit: fit.rmse)
    return fits


def best_fit(
    ns: Sequence[int],
    rounds: Sequence[float],
    candidates: Sequence[str] | None = None,
) -> GrowthFit:
    return fit_growth(ns, rounds, candidates)[0]


# GROWTH_FUNCTIONS is declared slowest-growing first, so its insertion
# order doubles as the asymptotic ordering of the candidate classes.
_GROWTH_ORDER = {name: rank for rank, name in enumerate(GROWTH_FUNCTIONS)}


def growth_rank(name: str) -> int:
    """Position of a growth class in the slowest-to-fastest ordering.

    Lower is asymptotically smaller; use it to compare fitted classes
    (e.g. pick the solver with the smallest measured growth for a
    landscape cell).  Unknown class names raise ``KeyError``.
    """
    return _GROWTH_ORDER[name]


def ratio_series(
    ns: Sequence[int], det: Sequence[float], rand: Sequence[float]
) -> list[tuple[int, float]]:
    """The D(n)/R(n) series the paper's discussion section studies."""
    return [
        (n, d / max(r, 1e-9)) for n, d, r in zip(ns, det, rand)
    ]
