"""Figure 1 assembly: the measured complexity landscape.

Each row of the landscape pairs a problem with its measured
deterministic and randomized complexities (best-fit growth class over
an n-sweep) and the paper's placement, so benches can print paper vs
measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.growth import best_fit, fit_growth
from repro.analysis.sweep import Sweep
from repro.analysis.tables import render_table
from repro.local.algorithm import Instance, LocalAlgorithm

__all__ = [
    "LandscapeRow",
    "measure_row",
    "render_landscape",
    "rows_from_engine_reports",
]


@dataclass
class LandscapeRow:
    problem: str
    paper_det: str
    paper_rand: str
    det_sweep: Sweep | None
    rand_sweep: Sweep | None
    candidates: Sequence[str] | None = None

    def measured_det(self) -> str:
        return self._measured(self.det_sweep)

    def measured_rand(self) -> str:
        return self._measured(self.rand_sweep)

    def _measured(self, sweep: Sweep | None) -> str:
        if sweep is None:
            return "-"
        if len(sweep.points) < 3:
            return "?"  # growth fitting needs at least three sizes
        fit = best_fit(sweep.ns(), sweep.means(), self.candidates)
        return fit.name

    def row(self) -> list:
        return [
            self.problem,
            self.paper_det,
            self.measured_det(),
            self.paper_rand,
            self.measured_rand(),
        ]


def measure_row(
    problem: str,
    paper_det: str,
    paper_rand: str,
    det_solver: LocalAlgorithm | None,
    rand_solver: LocalAlgorithm | None,
    instance_factory: Callable[[int, int], Instance],
    ns: Sequence[int],
    seeds: Sequence[int] = (0, 1, 2),
    candidates: Sequence[str] | None = None,
    verify: Callable[[Instance, object], None] | None = None,
) -> LandscapeRow:
    # Rows run on the engine's in-process sweep path (lazy import:
    # repro.engine depends on this package's sweep module).
    from repro.engine.runner import run_callable_sweep

    det_sweep = (
        run_callable_sweep(det_solver, instance_factory, ns, seeds, verify)
        if det_solver
        else None
    )
    rand_sweep = (
        run_callable_sweep(rand_solver, instance_factory, ns, seeds, verify)
        if rand_solver
        else None
    )
    return LandscapeRow(
        problem=problem,
        paper_det=paper_det,
        paper_rand=paper_rand,
        det_sweep=det_sweep,
        rand_sweep=rand_sweep,
        candidates=candidates,
    )


def _growth_sort_key(sweep: Sweep) -> tuple[int, int]:
    """Order sweeps by fitted asymptotic class, unfittable ones last."""
    from repro.analysis.growth import growth_rank

    if len(sweep.points) < 3:
        return (1, 0)  # too few sizes to fit: lose to any fitted sweep
    fit = best_fit(sweep.ns(), sweep.means())
    return (0, growth_rank(fit.name))


def rows_from_engine_reports(reports: Sequence) -> list[LandscapeRow]:
    """Fold registry-generated engine reports into Figure 1 rows.

    Accepts the :class:`~repro.engine.runner.EngineReport` list of the
    ``landscape`` experiment (spec names shaped
    ``landscape/<problem>/<solver>@<family>``) and produces one row per
    (problem, family) pair.  When several solvers of one kind cover a
    cell, the deterministic and randomized columns each show the
    *best-per-cell* representative: the solver whose measured rounds
    fit the smallest growth class (ties broken by solver name, sweeps
    too short to fit ranked last) — a cell's entry is the complexity of
    the problem, not of whichever algorithm happened to register first.
    Reports with foreign spec names are ignored.
    """
    from repro.runtime import registry

    solvers = registry.solvers()
    problems = registry.problems()
    cells: dict[tuple[str, str], dict[str, list[tuple[str, Sweep]]]] = {}
    for report in reports:
        parts = report.spec.name.split("/")
        if len(parts) != 3 or "@" not in parts[2]:
            continue
        problem_name = parts[1]
        solver_name, _, family_name = parts[2].partition("@")
        solver_info = solvers.get(solver_name)
        if solver_info is None or problem_name not in problems:
            continue
        kind = "rand" if solver_info.randomized else "det"
        cell = cells.setdefault((problem_name, family_name), {})
        cell.setdefault(kind, []).append((solver_name, report.sweep))

    def best_per_cell(candidates: list[tuple[str, Sweep]] | None) -> Sweep | None:
        if not candidates:
            return None
        return min(
            candidates, key=lambda entry: (_growth_sort_key(entry[1]), entry[0])
        )[1]

    rows = []
    for (problem_name, family_name), cell in sorted(cells.items()):
        info = problems[problem_name]
        rows.append(
            LandscapeRow(
                problem=f"{problem_name} @ {family_name}",
                paper_det=info.paper_det,
                paper_rand=info.paper_rand,
                det_sweep=best_per_cell(cell.get("det")),
                rand_sweep=best_per_cell(cell.get("rand")),
            )
        )
    return rows


def render_landscape(rows: Sequence[LandscapeRow]) -> str:
    headers = [
        "problem",
        "paper det",
        "measured det",
        "paper rand",
        "measured rand",
    ]
    return render_table(
        headers,
        [row.row() for row in rows],
        title="Figure 1 - the complexity landscape (paper vs measured)",
    )
