"""Aligned plain-text tables for the benchmark reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table (numbers right-aligned)."""
    cells = [[_fmt(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(
                cell.rjust(w) if _numeric(cell) else cell.ljust(w)
                for cell, w in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _fmt(x: object) -> str:
    if isinstance(x, float):
        return f"{x:.2f}"
    return str(x)


def _numeric(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False
