"""repro: an executable reproduction of Balliu, Brandt, Olivetti, Suomela,
"How much does randomness help with locally checkable problems?"
(PODC 2020, arXiv:1902.06803).

The package provides:

* ``repro.local`` — the LOCAL model substrate: port-numbered multigraphs,
  radius-metered views, and a synchronous message-passing engine.
* ``repro.lcl`` — the node-edge-checkable LCL formalism and its verifier.
* ``repro.problems`` — classic LCLs (sinkless orientation, colorings,
  MIS, matching) with deterministic and randomized solvers.
* ``repro.gadgets`` — the (log, Delta)-gadget family of Section 4 with
  its local checker, the error-pointer LCL Psi, and the prover V.
* ``repro.core`` — the paper's contribution: padded graphs, the padded
  problem Pi', its generic solver, hard instances, and the problem
  family Pi_i of Theorem 11.
* ``repro.generators`` / ``repro.analysis`` — instances, n-sweeps, and
  growth-shape fitting used to regenerate the paper's landscape.
* ``repro.runtime`` — the registry-driven execution layer: catalogs of
  problems, solvers, and families, and the unified ``Runtime`` driver
  every (problem, solver, family) trial runs through.
* ``repro.engine`` — parallel, cached experiment orchestration over
  registry-generated specs (``python -m repro.engine``).
"""

__version__ = "1.0.0"
