"""Integer logarithm helpers used throughout the complexity accounting.

The paper states all bounds in terms of ``log n``, ``log log n`` and
``log* n``; these helpers provide exact integer versions so that measured
round counts can be compared against predictions without floating-point
ambiguity at small ``n``.
"""

from __future__ import annotations

import math

__all__ = ["floor_log2", "ceil_log2", "iterated_log", "log_star"]


def floor_log2(x: int) -> int:
    """Return ``floor(log2(x))`` for a positive integer ``x``."""
    if x <= 0:
        raise ValueError(f"floor_log2 requires a positive integer, got {x}")
    return x.bit_length() - 1


def ceil_log2(x: int) -> int:
    """Return ``ceil(log2(x))`` for a positive integer ``x``."""
    if x <= 0:
        raise ValueError(f"ceil_log2 requires a positive integer, got {x}")
    return (x - 1).bit_length()


def iterated_log(x: float, iterations: int) -> float:
    """Apply ``log2`` to ``x`` the given number of times.

    Values are clamped at 1 from below between applications so that the
    function stays defined for the small ``n`` used in tests.
    """
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    value = float(x)
    for _ in range(iterations):
        value = math.log2(max(value, 1.0) + 1e-12) if value > 1.0 else 0.0
        if value <= 0.0:
            return 0.0
    return value


def log_star(x: float) -> int:
    """Return ``log* x``: the number of times ``log2`` must be applied
    before the value drops to at most 1."""
    count = 0
    value = float(x)
    while value > 1.0:
        value = math.log2(value)
        count += 1
        if count > 64:  # unreachable for sane inputs; guards bad floats
            raise OverflowError(f"log_star did not converge for {x!r}")
    return count
