"""Small shared utilities: integer log helpers and seeded randomness."""

from repro.util.logmath import (
    ceil_log2,
    floor_log2,
    iterated_log,
    log_star,
)
from repro.util.rng import NodeRng, fork_rng

__all__ = [
    "ceil_log2",
    "floor_log2",
    "iterated_log",
    "log_star",
    "NodeRng",
    "fork_rng",
]
