"""Small shared utilities: log helpers, seeded randomness, safe file IO."""

from repro.util.fsio import atomic_write_text
from repro.util.logmath import (
    ceil_log2,
    floor_log2,
    iterated_log,
    log_star,
)
from repro.util.rng import NodeRng, fork_rng

__all__ = [
    "atomic_write_text",
    "ceil_log2",
    "floor_log2",
    "iterated_log",
    "log_star",
    "NodeRng",
    "fork_rng",
]
