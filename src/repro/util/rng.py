"""Seeded randomness with per-node forking.

Randomized LOCAL algorithms give every node an independent random bit
string.  ``fork_rng`` derives a child generator per node from a master
seed so that (a) runs are reproducible, and (b) a node's bits do not
depend on the iteration order of the simulator.
"""

from __future__ import annotations

import random

__all__ = ["NodeRng", "fork_rng"]

_FORK_SALT = 0x9E3779B97F4A7C15  # golden-ratio odd constant for mixing


def fork_rng(seed: int, node: int) -> random.Random:
    """Return an independent generator for ``node`` derived from ``seed``."""
    mixed = (seed * 0x100000001B3 + node * _FORK_SALT) & 0xFFFFFFFFFFFFFFFF
    mixed ^= mixed >> 33
    return random.Random(mixed)


class NodeRng:
    """A family of per-node random generators sharing one master seed.

    Generators are created lazily and cached, so repeated access inside a
    round returns the same stream.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: dict[int, random.Random] = {}

    def for_node(self, node: int) -> random.Random:
        """Return the (cached) generator dedicated to ``node``."""
        stream = self._streams.get(node)
        if stream is None:
            stream = fork_rng(self.seed, node)
            self._streams[node] = stream
        return stream

    def global_stream(self) -> random.Random:
        """A generator for decisions not tied to a particular node."""
        return self.for_node(-1)
