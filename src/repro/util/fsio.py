"""Crash-safe file writes: tmp file + ``os.replace``.

Every file the engine hands to another process — plan files, shard
report JSON, cache exports, lease boards, heartbeats — must be either
absent or complete: a reader that races a writer (or outlives a killed
one) may see the *old* contents but never a torn prefix.  POSIX rename
within one directory gives exactly that, so the helper stages the text
in a sibling temp file and atomically replaces the target.
"""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` so readers never see a partial file.

    The temp file lives in the target's directory (rename is only
    atomic within one filesystem) and is cleaned up on any failure, so
    a full disk leaves the previous version of ``path`` intact instead
    of a half-written replacement.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
