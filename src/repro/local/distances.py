"""Distance, component, and cycle computations on :class:`PortGraph`.

These are the centralized counterparts of what LOCAL-model nodes do by
exploring their neighborhoods; solvers use them both to produce outputs
and to *account* for the view radius a distributed node would have
needed (see DESIGN.md, "Rounds are measured, not asserted").
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro import kernels
from repro.local.graphs import PortGraph

__all__ = [
    "bfs_distances",
    "multi_source_bfs",
    "connected_components",
    "component_of",
    "eccentricity",
    "diameter",
    "girth",
    "cycle_containment_radius",
    "ball",
    "induced_subgraph",
]


def bfs_distances(
    graph: PortGraph, source: int, max_radius: int | None = None
) -> dict[int, int]:
    """Map every node within ``max_radius`` of ``source`` to its distance."""
    if kernels.vector_enabled():
        from repro.kernels import vector

        return vector.bfs_distances(graph, source, max_radius)
    off, nbr, _, _ = graph.csr()
    dist = {source: 0}
    queue = [source]
    for v in queue:  # appending while iterating keeps FIFO order
        d = dist[v]
        if max_radius is not None and d >= max_radius:
            continue
        for u in nbr[off[v] : off[v + 1]]:
            if u not in dist:
                dist[u] = d + 1
                queue.append(u)
    return dist


def multi_source_bfs(
    graph: PortGraph, sources: Iterable[int]
) -> tuple[dict[int, int], dict[int, int]]:
    """Multi-source BFS.

    Returns ``(dist, parent_edge)`` where ``parent_edge[v]`` is the edge id
    leading one step closer to the source set (absent for sources and
    unreachable nodes).  Parents are chosen deterministically: the
    smallest-eid tie-break, which makes the forest a pure function of the
    graph and source order.
    """
    if kernels.vector_enabled():
        from repro.kernels import vector

        return vector.multi_source_bfs(graph, sources)
    off, nbr, _, eids = graph.csr()
    dist: dict[int, int] = {}
    parent_edge: dict[int, int] = {}
    queue: list[int] = []
    for s in sources:
        if s not in dist:
            dist[s] = 0
            queue.append(s)
    for v in queue:
        d = dist[v]
        for slot in range(off[v], off[v + 1]):
            u = nbr[slot]
            if u not in dist:
                dist[u] = d + 1
                parent_edge[u] = eids[slot]
                queue.append(u)
    return dist, parent_edge


def connected_components(graph: PortGraph) -> list[list[int]]:
    """Connected components as sorted node lists, ordered by minimum node."""
    if kernels.vector_enabled():
        from repro.kernels import vector

        return vector.connected_components(graph)
    off, nbr, _, _ = graph.csr()
    seen = [False] * graph.num_nodes
    components = []
    for start in graph.nodes():
        if seen[start]:
            continue
        seen[start] = True
        comp = [start]
        for v in comp:  # comp doubles as the BFS queue
            for u in nbr[off[v] : off[v + 1]]:
                if not seen[u]:
                    seen[u] = True
                    comp.append(u)
        components.append(sorted(comp))
    return components


def component_of(graph: PortGraph, v: int) -> list[int]:
    """The sorted connected component containing ``v``."""
    dist = bfs_distances(graph, v)
    return sorted(dist)


def eccentricity(graph: PortGraph, v: int) -> int:
    """Maximum distance from ``v`` within its component."""
    dist = bfs_distances(graph, v)
    return max(dist.values())


def diameter(graph: PortGraph) -> int:
    """Maximum eccentricity over all nodes (per component; max of them)."""
    best = 0
    for v in graph.nodes():
        best = max(best, eccentricity(graph, v))
    return best


def girth(graph: PortGraph) -> int | None:
    """Length of the shortest cycle, or ``None`` for forests.

    Self-loops count as cycles of length 1 and parallel edge pairs as
    cycles of length 2, matching the multigraph conventions of the paper.
    """
    if graph.has_self_loop():
        return 1
    if graph.has_parallel_edges():
        return 2
    off, nbr, _, eids = graph.csr()
    best: int | None = None
    for source in graph.nodes():
        # BFS from source; first cross edge yields a cycle through source's
        # BFS tree of length dist[u] + dist[v] + 1 (a standard upper bound
        # that is tight when minimized over all sources).
        dist = {source: 0}
        parent = {source: -1}
        queue = [source]
        for v in queue:
            d = dist[v]
            if best is not None and d * 2 >= best:
                continue
            for slot in range(off[v], off[v + 1]):
                u = nbr[slot]
                eid = eids[slot]
                if u not in dist:
                    dist[u] = d + 1
                    parent[u] = eid
                    queue.append(u)
                elif parent[v] != eid:
                    length = dist[u] + d + 1
                    if best is None or length < best:
                        best = length
    return best


def cycle_containment_radius(
    graph: PortGraph, v: int, max_radius: int | None = None
) -> int | None:
    """The smallest ``r`` such that ``ball(v, r)`` contains a full cycle.

    This is the quantity ``h(v)`` used by the deterministic sinkless
    orientation solver: a node exploring radius ``r`` can certify a cycle
    as soon as one is fully contained in its view.  Equivalently it is
    the BFS depth at which the first non-tree edge with both endpoints
    discovered appears.  Returns ``None`` if no cycle exists within
    ``max_radius`` (or at all).
    """
    # A self-loop or parallel pair at distance d is found at radius d (+1).
    off, nbr, _, eids = graph.csr()
    dist = {v: 0}
    parent = {v: -1}
    queue = [v]
    for x in queue:
        d = dist[x]
        if max_radius is not None and d > max_radius:
            return None
        for slot in range(off[x], off[x + 1]):
            u = nbr[slot]
            eid = eids[slot]
            if u == x:  # self-loop: cycle within radius d
                return d
            if u not in dist:
                dist[u] = d + 1
                parent[u] = eid
                queue.append(u)
            elif parent[x] != eid:
                # Non-tree edge between x (depth d) and u (depth dist[u]):
                # the cycle through the two BFS branches is contained in
                # the ball of radius max(d, dist[u]).
                radius = max(d, dist[u])
                if max_radius is None or radius <= max_radius:
                    return radius
                return None
    return None


def ball(graph: PortGraph, v: int, radius: int) -> dict[int, int]:
    """Nodes within ``radius`` of ``v`` mapped to their distance."""
    return bfs_distances(graph, v, max_radius=radius)


def induced_subgraph(
    graph: PortGraph, nodes: Iterable[int]
) -> tuple[PortGraph, dict[int, int]]:
    """The subgraph induced by ``nodes``.

    Returns ``(subgraph, mapping)`` with ``mapping[original] = local``.
    Surviving edges keep their relative port order per node, so local
    views preserve the port structure of the original graph.
    """
    from repro.local.graphs import HalfEdge

    keep = sorted(set(nodes))
    mapping = {v: i for i, v in enumerate(keep)}
    keep_set = set(keep)
    # Assign new ports per node in original port order.  Plain (v, port)
    # tuples hash and compare equal to HalfEdge, so the flat scan and the
    # edge-object loop below share one dict.
    off, nbr, _, _ = graph.csr()
    new_port: dict[tuple[int, int], int] = {}
    for v in keep:
        next_p = 0
        base = off[v]
        for port, u in enumerate(nbr[base : off[v + 1]]):
            if u in keep_set:
                new_port[(v, port)] = next_p
                next_p += 1
    edges = []
    for edge in graph.edges():
        if edge.a.node in keep_set and edge.b.node in keep_set:
            a = HalfEdge(mapping[edge.a.node], new_port[edge.a])
            b = HalfEdge(mapping[edge.b.node], new_port[edge.b])
            edges.append((a, b))
    return PortGraph(len(keep), edges), mapping
