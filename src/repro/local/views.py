"""Radius-metered local views.

In the LOCAL model, a T-round algorithm is exactly a function of each
node's radius-T view (paper, Section 2).  :class:`ViewOracle` serves
balls around nodes through an incremental BFS and records the largest
radius each node ever consulted; that record *is* the empirical round
complexity reported by the harness.

Solvers that compute global structure directly (for speed) instead call
:meth:`charge` to account the radius a distributed implementation would
have needed; either way the number lands in the same meter.
"""

from __future__ import annotations

from repro.local.distances import induced_subgraph
from repro.local.graphs import PortGraph

__all__ = ["ViewOracle", "View"]


class View:
    """A radius-``r`` view around ``center``: nodes, distances, subgraph.

    ``subgraph()`` materializes the induced subgraph on demand (with a
    mapping back to original node indices) for algorithms that want to
    run offline computations on the view.
    """

    def __init__(self, graph: PortGraph, center: int, radius: int, dist: dict[int, int]):
        self._graph = graph
        self.center = center
        self.radius = radius
        self.dist = dist
        self._nodes: list[int] | None = None
        self._boundary: list[int] | None = None

    def __contains__(self, v: int) -> bool:
        return v in self.dist

    def nodes(self) -> list[int]:
        """Sorted view nodes (cached — treat the list as read-only)."""
        if self._nodes is None:
            self._nodes = sorted(self.dist)
        return self._nodes

    def boundary(self) -> list[int]:
        """Nodes at exactly the view radius (where knowledge ends).

        Cached like :meth:`nodes`; treat the list as read-only.
        """
        if self._boundary is None:
            radius = self.radius
            self._boundary = sorted(
                v for v, d in self.dist.items() if d == radius
            )
        return self._boundary

    def subgraph(self) -> tuple[PortGraph, dict[int, int]]:
        return induced_subgraph(self._graph, self.dist)


class ViewOracle:
    """Serves views and meters the maximum radius used per node."""

    def __init__(self, graph: PortGraph):
        self.graph = graph
        self._radius_used = [0] * graph.num_nodes
        # Incremental BFS state per node: (dist map, current frontier,
        # depth the BFS has been grown to)
        self._state: dict[int, tuple[dict[int, int], list[int], int]] = {}

    # -- metering ------------------------------------------------------------

    def charge(self, v: int, radius: int) -> None:
        """Record that node ``v`` needed a view of at least ``radius``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if radius > self._radius_used[v]:
            self._radius_used[v] = radius

    def radius_used(self, v: int) -> int:
        return self._radius_used[v]

    def node_radii(self) -> list[int]:
        return list(self._radius_used)

    def rounds(self) -> int:
        """The empirical round complexity: max radius over all nodes."""
        return max(self._radius_used, default=0)

    # -- view service -----------------------------------------------------------

    def _grow_to(self, v: int, radius: int) -> tuple[dict[int, int], int]:
        """Grow the cached BFS of ``v`` to ``radius``.

        Returns ``(dist, grown)`` where ``grown`` is the BFS depth the
        cache actually reached (every entry of ``dist`` is at distance
        ``<= grown``; ``grown`` may exceed ``radius`` when a previous,
        larger request already expanded the ball).
        """
        state = self._state.get(v)
        if state is None:
            state = ({v: 0}, [v], 0)
            self._state[v] = state
        dist, frontier, current = state
        off, nbr, _, _ = self.graph.csr()
        while current < radius and frontier:
            next_frontier = []
            push = next_frontier.append
            for x in frontier:
                for u in nbr[off[x] : off[x + 1]]:
                    if u not in dist:
                        dist[u] = current + 1
                        push(u)
            frontier = next_frontier
            current += 1
        self._state[v] = (dist, frontier, current)
        return dist, current

    def view(self, v: int, radius: int) -> View:
        """The radius-``radius`` view of ``v``; meters the access."""
        self.charge(v, radius)
        dist, grown = self._grow_to(v, radius)
        if grown > radius:
            # The cached ball is bigger than the request: filter it down.
            trimmed = {u: d for u, d in dist.items() if d <= radius}
        else:
            # Everything cached is within the request; a plain copy keeps
            # the View isolated from later growth of the shared BFS state.
            trimmed = dict(dist)
        return View(self.graph, v, radius, trimmed)

    def forget(self, v: int) -> None:
        """Drop cached BFS state for ``v`` (metering is kept)."""
        self._state.pop(v, None)
