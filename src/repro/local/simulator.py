"""Synchronous message-passing engine for the LOCAL model.

The engine runs the classical formulation of the model: in every round
each node sends one (arbitrarily large) message through each port,
receives the messages of its neighbors, and updates its state.  Round
counting is exact: the reported complexity is the number of rounds
executed before every node has halted.

Algorithms naturally expressed round-by-round (Cole–Vishkin, Luby)
use this engine; view-based algorithms use
:class:`repro.local.views.ViewOracle` instead.  Section 2 of the paper
notes the two are equivalent.

Two execution paths share the exact same semantics:

* the **object loop** below — one Python object per node, the oracle;
* the **batched array path** — when a solver also supplies an
  :class:`ArrayProgram` and the vector kernel backend is active, rounds
  run whole-population at a time over flat per-slot numpy arrays in
  :func:`repro.kernels.engine.run_array_program`: one gather across the
  CSR delivery involution, one ``step_all``, active-set compaction as
  nodes halt — no per-node Python in the loop.

Results, ``halt_rounds``, round traces, and
:class:`ConvergenceError` diagnostics are bit-identical across the two;
``--kernels object`` always forces the oracle.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro import kernels
from repro.local.algorithm import Instance
from repro.obs import get_telemetry

__all__ = [
    "ArrayProgram",
    "NodeProtocol",
    "SyncEngine",
    "MessageRound",
    "EngineResult",
    "ConvergenceError",
]

_LOG = logging.getLogger("repro.local.simulator")
_WARNED_NO_ARRAY_BACKEND = False


class ConvergenceError(RuntimeError):
    """The engine hit ``max_rounds`` with nodes still active.

    Carries the partial round trace and the number of still-active
    nodes so callers can diagnose livelocks (which nodes never halt,
    whether activity was shrinking) instead of staring at a bare
    message.
    """

    def __init__(self, max_rounds: int, active: int, trace: list["MessageRound"]):
        super().__init__(
            f"engine did not converge in {max_rounds} rounds; "
            f"{active} node(s) still active in the last round"
        )
        self.max_rounds = max_rounds
        self.active = active
        self.trace = trace


class NodeProtocol(Protocol):
    """Behaviour of one node in the synchronous engine.

    The engine instantiates one object per node via the factory passed to
    :class:`SyncEngine`.  A node halts by returning ``None`` from
    ``outgoing``; once every node has halted the run is over.  A halted
    node still has its final state inspected through ``result``.
    """

    def outgoing(self, round_index: int) -> list[Any] | None:  # pragma: no cover
        """Messages for ports 0..deg-1 this round, or None to halt."""
        ...

    def receive(self, round_index: int, inbox: list[Any]) -> None:  # pragma: no cover
        """Deliver the per-port messages of this round."""
        ...

    def result(self) -> Any:  # pragma: no cover
        """Final local output once the node halted."""
        ...


class ArrayProgram(Protocol):
    """Whole-population twin of :class:`NodeProtocol` for batched rounds.

    An array program advances *every* node per call over flat per-slot
    arrays aligned with the frozen CSR tables (see
    :class:`repro.kernels.engine.SlotLayout`).  ``step_all(r, inbox)``
    fuses the object protocol's ``receive`` of round ``r - 1`` (``inbox``
    is ``None`` at round 0) with ``outgoing`` of round ``r``: it returns
    the per-slot outbox array (first axis = total slots; any dtype or
    payload width) plus an optional per-node halt mask — ``True`` where
    the object node would return ``None`` this round.  Programs are
    single-use: the engine builds one per run via the factory handed to
    :class:`SyncEngine`.
    """

    def init_all(self, instance: Instance, layout: Any) -> None:  # pragma: no cover
        """Set up per-node state arrays for one run."""
        ...

    def step_all(self, round_index: int, inbox: Any):  # pragma: no cover
        """Process last round's inbox, emit this round's outbox + halts."""
        ...

    def results_all(self) -> list[Any]:  # pragma: no cover
        """Per-node final outputs, matching the object nodes' results."""
        ...


@dataclass
class MessageRound:
    index: int
    active: int


@dataclass
class EngineResult:
    """Per-node results and the exact number of rounds executed.

    ``halt_rounds[v]`` is the round index at which node ``v`` returned
    ``None`` from ``outgoing`` — i.e. the number of message rounds the
    node participated in, which is exactly the view radius it consulted.
    ``rounds`` is their maximum.
    """

    results: list[Any]
    rounds: int
    trace: list[MessageRound]
    halt_rounds: list[int]

    def node_radius(self) -> list[int]:
        """Per-node view radii: the round each node halted at."""
        return list(self.halt_rounds)


def _warn_no_array_backend() -> None:
    global _WARNED_NO_ARRAY_BACKEND
    if not _WARNED_NO_ARRAY_BACKEND:
        _WARNED_NO_ARRAY_BACKEND = True
        _LOG.warning(
            "array node program degrades to the object round loop "
            "(numpy is not importable; install the [fast] extra)"
        )


class SyncEngine:
    """Runs node objects in lock-step synchronous rounds.

    ``array_program`` is an optional zero-argument factory producing an
    :class:`ArrayProgram`; when present and the vector kernel backend is
    active, :meth:`run` executes the batched path instead of the object
    loop.  Node-factory classes may also expose the factory as an
    ``array_program`` attribute — it is discovered automatically, so
    ``SyncEngine(instance, FloodNode)`` batches wherever the class ships
    a twin.
    """

    def __init__(
        self,
        instance: Instance,
        node_factory: Callable[[int, Instance], NodeProtocol],
        array_program: Callable[[], ArrayProgram] | None = None,
    ):
        self.instance = instance
        self.graph = instance.graph
        self._node_factory = node_factory
        if array_program is None:
            array_program = getattr(node_factory, "array_program", None)
        self._array_program = array_program
        self._nodes: list[NodeProtocol] | None = None

    @property
    def nodes(self) -> list[NodeProtocol]:
        """The per-node objects, built on first use.

        Lazy so the batched path never pays ``n`` object constructions
        it will not consult.
        """
        if self._nodes is None:
            self._nodes = [
                self._node_factory(v, self.instance)
                for v in self.graph.nodes()
            ]
        return self._nodes

    def run(self, max_rounds: int = 10_000) -> EngineResult:
        if self._array_program is not None:
            if kernels.vector_enabled():
                from repro.kernels.engine import run_array_program

                return run_array_program(
                    self.instance, self._array_program(), max_rounds
                )
            if not kernels.HAVE_NUMPY:
                _warn_no_array_backend()
        graph = self.graph
        nodes = self.nodes
        num_nodes = graph.num_nodes
        # Hot loop: read topology through the flat incidence core so a
        # delivery is two index reads and a store, with no Edge/HalfEdge
        # objects on the path.
        off, nbr, peer, _ = graph.csr()
        deg = graph.degrees
        delivery_plan = None
        if kernels.vector_enabled():
            from repro.kernels import vector

            delivery_plan = vector.DeliveryPlan(graph)
        halted = [False] * num_nodes
        halt_rounds = [0] * num_nodes
        trace: list[MessageRound] = []
        rounds = 0
        active_total = 0
        for round_index in range(max_rounds):
            outboxes: list[list[Any] | None] = []
            append_outbox = outboxes.append
            active = 0
            for v, node in enumerate(nodes):
                if halted[v]:
                    append_outbox(None)
                    continue
                out = node.outgoing(round_index)
                if out is None:
                    halted[v] = True
                    halt_rounds[v] = round_index
                    append_outbox(None)
                    continue
                if len(out) != deg[v]:
                    raise ValueError(
                        f"node {v} produced {len(out)} messages for "
                        f"{deg[v]} ports"
                    )
                append_outbox(out)
                active += 1
            if active == 0:
                break
            rounds += 1
            active_total += active
            trace.append(MessageRound(round_index, active))
            # Deliver: the message leaving (u, p) arrives at the half-edge
            # across the edge.  Halted nodes send nothing; their neighbors
            # receive an explicit None on that port.  Only non-halted nodes
            # get an inbox — halted receivers would never read theirs, and
            # on large graphs with early halters the skipped allocations
            # dominate the per-round cost.
            if delivery_plan is not None:
                inboxes = delivery_plan.deliver(outboxes, halted)
            else:
                inboxes: list[list[Any] | None] = [
                    None if halted[v] else [None] * deg[v]
                    for v in range(num_nodes)
                ]
                for v, out in enumerate(outboxes):
                    if out is None:
                        continue
                    base = off[v]
                    for port, message in enumerate(out):
                        slot = base + port
                        inbox = inboxes[nbr[slot]]
                        if inbox is not None:
                            inbox[peer[slot]] = message
            for v, node in enumerate(nodes):
                if not halted[v]:
                    node.receive(round_index, inboxes[v])
        else:
            raise ConvergenceError(max_rounds, sum(not h for h in halted), trace)
        telemetry = get_telemetry()
        telemetry.incr("engine.rounds", rounds)
        telemetry.incr("engine.active_nodes", active_total)
        telemetry.incr("kernels.object_rounds", rounds)
        return EngineResult(
            results=[node.result() for node in self.nodes],
            rounds=rounds,
            trace=trace,
            halt_rounds=halt_rounds,
        )
