"""Synchronous message-passing engine for the LOCAL model.

The engine runs the classical formulation of the model: in every round
each node sends one (arbitrarily large) message through each port,
receives the messages of its neighbors, and updates its state.  Round
counting is exact: the reported complexity is the number of rounds
executed before every node has halted.

Algorithms naturally expressed round-by-round (Cole–Vishkin, Luby)
use this engine; view-based algorithms use
:class:`repro.local.views.ViewOracle` instead.  Section 2 of the paper
notes the two are equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro import kernels
from repro.local.algorithm import Instance

__all__ = [
    "NodeProtocol",
    "SyncEngine",
    "MessageRound",
    "EngineResult",
    "ConvergenceError",
]


class ConvergenceError(RuntimeError):
    """The engine hit ``max_rounds`` with nodes still active.

    Carries the partial round trace and the number of still-active
    nodes so callers can diagnose livelocks (which nodes never halt,
    whether activity was shrinking) instead of staring at a bare
    message.
    """

    def __init__(self, max_rounds: int, active: int, trace: list["MessageRound"]):
        super().__init__(
            f"engine did not converge in {max_rounds} rounds; "
            f"{active} node(s) still active in the last round"
        )
        self.max_rounds = max_rounds
        self.active = active
        self.trace = trace


class NodeProtocol(Protocol):
    """Behaviour of one node in the synchronous engine.

    The engine instantiates one object per node via the factory passed to
    :class:`SyncEngine`.  A node halts by returning ``None`` from
    ``outgoing``; once every node has halted the run is over.  A halted
    node still has its final state inspected through ``result``.
    """

    def outgoing(self, round_index: int) -> list[Any] | None:  # pragma: no cover
        """Messages for ports 0..deg-1 this round, or None to halt."""
        ...

    def receive(self, round_index: int, inbox: list[Any]) -> None:  # pragma: no cover
        """Deliver the per-port messages of this round."""
        ...

    def result(self) -> Any:  # pragma: no cover
        """Final local output once the node halted."""
        ...


@dataclass
class MessageRound:
    index: int
    active: int


@dataclass
class EngineResult:
    """Per-node results and the exact number of rounds executed.

    ``halt_rounds[v]`` is the round index at which node ``v`` returned
    ``None`` from ``outgoing`` — i.e. the number of message rounds the
    node participated in, which is exactly the view radius it consulted.
    ``rounds`` is their maximum.
    """

    results: list[Any]
    rounds: int
    trace: list[MessageRound]
    halt_rounds: list[int]

    def node_radius(self) -> list[int]:
        """Per-node view radii: the round each node halted at."""
        return list(self.halt_rounds)


class SyncEngine:
    """Runs node objects in lock-step synchronous rounds."""

    def __init__(self, instance: Instance, node_factory: Callable[[int, Instance], NodeProtocol]):
        self.instance = instance
        self.graph = instance.graph
        self.nodes = [node_factory(v, instance) for v in self.graph.nodes()]

    def run(self, max_rounds: int = 10_000) -> EngineResult:
        graph = self.graph
        nodes = self.nodes
        num_nodes = graph.num_nodes
        # Hot loop: read topology through the flat incidence core so a
        # delivery is two index reads and a store, with no Edge/HalfEdge
        # objects on the path.
        off, nbr, peer, _ = graph.csr()
        deg = graph.degrees
        delivery_plan = None
        if kernels.vector_enabled():
            from repro.kernels import vector

            delivery_plan = vector.DeliveryPlan(graph)
        halted = [False] * num_nodes
        halt_rounds = [0] * num_nodes
        trace: list[MessageRound] = []
        rounds = 0
        for round_index in range(max_rounds):
            outboxes: list[list[Any] | None] = []
            append_outbox = outboxes.append
            active = 0
            for v, node in enumerate(nodes):
                if halted[v]:
                    append_outbox(None)
                    continue
                out = node.outgoing(round_index)
                if out is None:
                    halted[v] = True
                    halt_rounds[v] = round_index
                    append_outbox(None)
                    continue
                if len(out) != deg[v]:
                    raise ValueError(
                        f"node {v} produced {len(out)} messages for "
                        f"{deg[v]} ports"
                    )
                append_outbox(out)
                active += 1
            if active == 0:
                break
            rounds += 1
            trace.append(MessageRound(round_index, active))
            # Deliver: the message leaving (u, p) arrives at the half-edge
            # across the edge.  Halted nodes send nothing; their neighbors
            # receive an explicit None on that port.  Only non-halted nodes
            # get an inbox — halted receivers would never read theirs, and
            # on large graphs with early halters the skipped allocations
            # dominate the per-round cost.
            if delivery_plan is not None:
                inboxes = delivery_plan.deliver(outboxes, halted)
            else:
                inboxes: list[list[Any] | None] = [
                    None if halted[v] else [None] * deg[v]
                    for v in range(num_nodes)
                ]
                for v, out in enumerate(outboxes):
                    if out is None:
                        continue
                    base = off[v]
                    for port, message in enumerate(out):
                        slot = base + port
                        inbox = inboxes[nbr[slot]]
                        if inbox is not None:
                            inbox[peer[slot]] = message
            for v, node in enumerate(nodes):
                if not halted[v]:
                    node.receive(round_index, inboxes[v])
        else:
            raise ConvergenceError(max_rounds, sum(not h for h in halted), trace)
        return EngineResult(
            results=[node.result() for node in self.nodes],
            rounds=rounds,
            trace=trace,
            halt_rounds=halt_rounds,
        )
