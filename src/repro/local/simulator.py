"""Synchronous message-passing engine for the LOCAL model.

The engine runs the classical formulation of the model: in every round
each node sends one (arbitrarily large) message through each port,
receives the messages of its neighbors, and updates its state.  Round
counting is exact: the reported complexity is the number of rounds
executed before every node has halted.

Algorithms naturally expressed round-by-round (Cole–Vishkin, Luby)
use this engine; view-based algorithms use
:class:`repro.local.views.ViewOracle` instead.  Section 2 of the paper
notes the two are equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.local.algorithm import Instance

__all__ = ["NodeProtocol", "SyncEngine", "MessageRound", "EngineResult"]


class NodeProtocol(Protocol):
    """Behaviour of one node in the synchronous engine.

    The engine instantiates one object per node via the factory passed to
    :class:`SyncEngine`.  A node halts by returning ``None`` from
    ``outgoing``; once every node has halted the run is over.  A halted
    node still has its final state inspected through ``result``.
    """

    def outgoing(self, round_index: int) -> list[Any] | None:  # pragma: no cover
        """Messages for ports 0..deg-1 this round, or None to halt."""
        ...

    def receive(self, round_index: int, inbox: list[Any]) -> None:  # pragma: no cover
        """Deliver the per-port messages of this round."""
        ...

    def result(self) -> Any:  # pragma: no cover
        """Final local output once the node halted."""
        ...


@dataclass
class MessageRound:
    index: int
    active: int


@dataclass
class EngineResult:
    """Per-node results and the exact number of rounds executed."""

    results: list[Any]
    rounds: int
    trace: list[MessageRound]

    def node_radius(self) -> list[int]:
        """Message rounds translate to a uniform view radius."""
        return [self.rounds] * len(self.results)


class SyncEngine:
    """Runs node objects in lock-step synchronous rounds."""

    def __init__(self, instance: Instance, node_factory: Callable[[int, Instance], NodeProtocol]):
        self.instance = instance
        self.graph = instance.graph
        self.nodes = [node_factory(v, instance) for v in self.graph.nodes()]

    def run(self, max_rounds: int = 10_000) -> EngineResult:
        graph = self.graph
        halted = [False] * graph.num_nodes
        trace: list[MessageRound] = []
        rounds = 0
        for round_index in range(max_rounds):
            outboxes: list[list[Any] | None] = []
            active = 0
            for v, node in enumerate(self.nodes):
                if halted[v]:
                    outboxes.append(None)
                    continue
                out = node.outgoing(round_index)
                if out is None:
                    halted[v] = True
                    outboxes.append(None)
                    continue
                if len(out) != graph.degree(v):
                    raise ValueError(
                        f"node {v} produced {len(out)} messages for "
                        f"{graph.degree(v)} ports"
                    )
                outboxes.append(out)
                active += 1
            if active == 0:
                break
            rounds += 1
            trace.append(MessageRound(round_index, active))
            # Deliver: the message leaving (u, p) arrives at the half-edge
            # across the edge.  Halted nodes send nothing; their neighbors
            # receive an explicit None on that port.  Only non-halted nodes
            # get an inbox — halted receivers would never read theirs, and
            # on large graphs with early halters the skipped allocations
            # dominate the per-round cost.
            inboxes: list[list[Any] | None] = [
                None if halted[v] else [None] * graph.degree(v)
                for v in graph.nodes()
            ]
            for v in graph.nodes():
                out = outboxes[v]
                if out is None:
                    continue
                for port in range(graph.degree(v)):
                    target = graph.endpoint(v, port)
                    inbox = inboxes[target.node]
                    if inbox is not None:
                        inbox[target.port] = out[port]
            for v, node in enumerate(self.nodes):
                if not halted[v]:
                    node.receive(round_index, inboxes[v])
        else:
            raise RuntimeError(f"engine did not converge in {max_rounds} rounds")
        return EngineResult(
            results=[node.result() for node in self.nodes],
            rounds=rounds,
            trace=trace,
        )
