"""Conversions between :class:`PortGraph` and networkx multigraphs.

networkx is used only at the boundary: for generator convenience and for
cross-checking structural computations in tests.  Everything inside the
library operates on :class:`PortGraph`.
"""

from __future__ import annotations

import networkx as nx

from repro.local.graphs import PortGraph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: PortGraph) -> nx.MultiGraph:
    """Convert to an ``nx.MultiGraph`` preserving edge ids and ports."""
    out = nx.MultiGraph()
    out.add_nodes_from(graph.nodes())
    for edge in graph.edges():
        out.add_edge(
            edge.a.node,
            edge.b.node,
            key=edge.eid,
            ports=(edge.a.port, edge.b.port),
        )
    return out


def from_networkx(nxgraph: nx.Graph) -> tuple[PortGraph, dict]:
    """Convert any networkx (multi)graph to a :class:`PortGraph`.

    Node labels are mapped to 0..n-1 in sorted order when sortable, else
    in insertion order.  Returns ``(graph, node_mapping)`` where
    ``node_mapping[original_label] = index``.
    """
    try:
        ordered = sorted(nxgraph.nodes())
    except TypeError:
        ordered = list(nxgraph.nodes())
    mapping = {label: i for i, label in enumerate(ordered)}
    pairs = []
    if nxgraph.is_multigraph():
        edge_iter = ((u, v) for u, v, _ in nxgraph.edges(keys=True))
    else:
        edge_iter = iter(nxgraph.edges())
    for u, v in edge_iter:
        pairs.append((mapping[u], mapping[v]))
    return PortGraph.from_edge_list(len(ordered), pairs), mapping
