"""Algorithm-facing containers: problem instances and run results.

An :class:`Instance` bundles everything a LOCAL algorithm receives:
the port-numbered graph, unique identifiers, the input labeling, the
size hint ``n`` (nodes know ``n`` and ``max_degree`` up front, paper
Section 1), and — for randomized algorithms — a seeded randomness
source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.local.graphs import PortGraph
from repro.local.identifiers import IdAssignment, sequential_ids
from repro.util.rng import NodeRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.lcl.assignment import Labeling

__all__ = ["Instance", "RunResult", "LocalAlgorithm"]


@dataclass
class Instance:
    """One LOCAL-model execution context."""

    graph: PortGraph
    ids: IdAssignment
    inputs: "Labeling | None" = None
    n_hint: int | None = None
    rng: NodeRng | None = None

    def __post_init__(self) -> None:
        if len(self.ids) != self.graph.num_nodes:
            raise ValueError("identifier assignment size mismatch")
        if self.n_hint is None:
            self.n_hint = self.graph.num_nodes
        if self.n_hint < self.graph.num_nodes:
            raise ValueError("n_hint must upper-bound the number of nodes")

    @classmethod
    def simple(
        cls,
        graph: PortGraph,
        inputs: "Labeling | None" = None,
        seed: int | None = None,
    ) -> "Instance":
        """An instance with sequential ids and an optional seed."""
        rng = NodeRng(seed) if seed is not None else None
        return cls(graph, sequential_ids(graph.num_nodes), inputs, None, rng)

    def require_rng(self) -> NodeRng:
        if self.rng is None:
            raise ValueError(
                "this algorithm is randomized; the instance needs an rng "
                "(pass seed=... or rng=NodeRng(seed))"
            )
        return self.rng


@dataclass
class RunResult:
    """Outputs plus the locality accounting of one run.

    ``node_radius[v]`` is the view radius node ``v`` consulted; the
    scalar ``rounds`` is their maximum, i.e. the empirical round
    complexity of the execution in the LOCAL model.
    """

    outputs: "Labeling"
    node_radius: list[int]
    extras: dict = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return max(self.node_radius, default=0)


@runtime_checkable
class LocalAlgorithm(Protocol):
    """The interface every solver in this library implements."""

    name: str
    randomized: bool

    def solve(self, instance: Instance) -> RunResult:  # pragma: no cover
        ...
