"""Mutable builder producing frozen :class:`PortGraph` instances."""

from __future__ import annotations

from repro.local.graphs import HalfEdge, PortGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates nodes and edges, then freezes into a ``PortGraph``.

    Ports are assigned in insertion order unless given explicitly; an
    explicit port may not collide with an automatically assigned one, so
    either use explicit ports for a node consistently or not at all.
    """

    def __init__(self, num_nodes: int = 0):
        self._num_nodes = num_nodes
        self._edges: list[tuple[HalfEdge, HalfEdge]] = []
        self._next_port: dict[int, int] = {}
        self._explicit_ports: dict[int, set[int]] = {}

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def add_node(self) -> int:
        """Add one node and return its index."""
        v = self._num_nodes
        self._num_nodes += 1
        return v

    def add_nodes(self, count: int) -> range:
        """Add ``count`` nodes and return their index range."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = self._num_nodes
        self._num_nodes += count
        return range(start, self._num_nodes)

    def _take_port(self, v: int, port: int | None) -> int:
        if not 0 <= v < self._num_nodes:
            raise ValueError(f"node {v} does not exist")
        if port is None:
            port = self._next_port.get(v, 0)
            while port in self._explicit_ports.get(v, ()):  # skip reserved
                port += 1
            self._next_port[v] = port + 1
            return port
        if port < 0:
            raise ValueError("port must be non-negative")
        taken = self._explicit_ports.setdefault(v, set())
        if port in taken or port < self._next_port.get(v, 0):
            raise ValueError(f"port {port} of node {v} already used")
        taken.add(port)
        return port

    def add_edge(
        self,
        u: int,
        v: int,
        u_port: int | None = None,
        v_port: int | None = None,
    ) -> int:
        """Add an edge (possibly a self-loop) and return its edge id."""
        if u == v and u_port is not None and u_port == v_port:
            raise ValueError("a self-loop needs two distinct ports")
        a = HalfEdge(u, self._take_port(u, u_port))
        b = HalfEdge(v, self._take_port(v, v_port))
        eid = len(self._edges)
        self._edges.append((a, b))
        return eid

    def build(self) -> PortGraph:
        """Freeze into an immutable :class:`PortGraph`."""
        return PortGraph(self._num_nodes, self._edges)
