"""The LOCAL model substrate: port multigraphs, views, engines."""

from repro.local.algorithm import Instance, LocalAlgorithm, RunResult
from repro.local.builder import GraphBuilder
from repro.local.distances import (
    bfs_distances,
    ball,
    connected_components,
    cycle_containment_radius,
    diameter,
    eccentricity,
    girth,
    induced_subgraph,
    multi_source_bfs,
)
from repro.local.flood import FloodNode, MinIdFloodNode
from repro.local.graphs import Edge, HalfEdge, PortGraph
from repro.local.identifiers import (
    IdAssignment,
    random_ids,
    reversed_ids,
    sequential_ids,
)
from repro.local.simulator import ConvergenceError, EngineResult, SyncEngine
from repro.local.views import View, ViewOracle

__all__ = [
    "Instance",
    "LocalAlgorithm",
    "RunResult",
    "GraphBuilder",
    "bfs_distances",
    "ball",
    "connected_components",
    "cycle_containment_radius",
    "diameter",
    "eccentricity",
    "girth",
    "induced_subgraph",
    "multi_source_bfs",
    "Edge",
    "FloodNode",
    "HalfEdge",
    "MinIdFloodNode",
    "PortGraph",
    "IdAssignment",
    "random_ids",
    "reversed_ids",
    "sequential_ids",
    "ConvergenceError",
    "EngineResult",
    "SyncEngine",
    "View",
    "ViewOracle",
]
