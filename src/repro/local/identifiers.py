"""Unique identifier assignments from {1, ..., poly(n)}.

In the LOCAL model nodes carry unique identifiers from a polynomial
range (paper, Section 1).  Deterministic algorithms may use them for
symmetry breaking; the choice of assignment is part of the (worst-case)
input, so generators for several adversary styles are provided.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = ["IdAssignment", "sequential_ids", "random_ids", "reversed_ids"]


class IdAssignment:
    """An injective map from node indices to positive identifiers."""

    def __init__(self, ids: Sequence[int]):
        ids = list(ids)
        if len(set(ids)) != len(ids):
            raise ValueError("identifiers must be unique")
        if any(i <= 0 for i in ids):
            raise ValueError("identifiers must be positive")
        self._ids = ids
        self._inverse = {identifier: v for v, identifier in enumerate(ids)}

    def __len__(self) -> int:
        return len(self._ids)

    def of(self, v: int) -> int:
        """The identifier of node ``v``."""
        return self._ids[v]

    def node_with(self, identifier: int) -> int:
        """The node carrying ``identifier``."""
        return self._inverse[identifier]

    def max_id(self) -> int:
        return max(self._ids) if self._ids else 0

    def as_list(self) -> list[int]:
        return list(self._ids)


def sequential_ids(n: int) -> IdAssignment:
    """Node ``v`` gets identifier ``v + 1``."""
    return IdAssignment(range(1, n + 1))


def reversed_ids(n: int) -> IdAssignment:
    """Node ``v`` gets identifier ``n - v`` (an easy adversarial twist)."""
    return IdAssignment(range(n, 0, -1))


def random_ids(n: int, rng: random.Random, space_exponent: int = 2) -> IdAssignment:
    """A uniform injective assignment into {1, ..., n**space_exponent}.

    ``space_exponent >= 1``; the default quadratic space matches the
    usual poly(n) identifier-space assumption.
    """
    if space_exponent < 1:
        raise ValueError("space_exponent must be at least 1")
    space = max(n, n**space_exponent)
    ids = rng.sample(range(1, space + 1), n)
    return IdAssignment(ids)
