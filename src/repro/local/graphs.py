"""Port-numbered multigraphs for the LOCAL model.

The paper (Section 2) works with graphs that may be disconnected and may
contain self-loops and parallel edges, where every node numbers its
incident edges with ports ``1..deg(v)``.  ``PortGraph`` is an immutable
representation of exactly that object:

* A **half-edge** is a pair ``(node, port)``.  Half-edges are the set
  ``B`` of incident node-edge pairs from the paper's ne-LCL formalism;
  with parallel edges the pair ``(node, edge)`` would be ambiguous, the
  pair ``(node, port)`` never is.
* An **edge** joins two half-edges.  A self-loop joins two distinct ports
  of the same node and therefore still contributes two half-edges.

Ports are 0-based in code (the paper's ``Port_1..Port_d`` maps to ports
``0..d-1``); all public formatting uses the 0-based convention
consistently.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Sequence

__all__ = ["HalfEdge", "Edge", "PortGraph"]


class HalfEdge(NamedTuple):
    """One side of an edge: a (node, port) incidence."""

    node: int
    port: int


class Edge(NamedTuple):
    """An undirected edge joining two half-edges.

    ``a`` and ``b`` are stored in a canonical order (smaller endpoint
    first) but carry no orientation; orientations are outputs of
    algorithms, never part of the graph.
    """

    eid: int
    a: HalfEdge
    b: HalfEdge

    @property
    def is_loop(self) -> bool:
        return self.a.node == self.b.node

    def nodes(self) -> tuple[int, int]:
        return (self.a.node, self.b.node)

    def other_side(self, side: HalfEdge) -> HalfEdge:
        """Return the opposite half-edge of ``side`` on this edge."""
        if side == self.a:
            return self.b
        if side == self.b:
            return self.a
        raise ValueError(f"{side} is not an endpoint of edge {self.eid}")


class PortGraph:
    """An immutable port-numbered multigraph.

    Construct instances with :class:`repro.local.builder.GraphBuilder` or
    the convenience classmethod :meth:`from_edge_list`.
    """

    __slots__ = ("_num_nodes", "_edges", "_adj", "_frozen")

    def __init__(self, num_nodes: int, edges: Sequence[tuple[HalfEdge, HalfEdge]]):
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        self._edges: list[Edge] = []
        # _adj[v][p] = eid of the edge attached to port p of node v
        self._adj: list[list[int]] = [[] for _ in range(num_nodes)]
        occupied: set[HalfEdge] = set()
        for eid, (a, b) in enumerate(edges):
            a = HalfEdge(*a)
            b = HalfEdge(*b)
            if a > b:
                a, b = b, a
            for side in (a, b):
                if not 0 <= side.node < num_nodes:
                    raise ValueError(f"edge endpoint {side} out of range")
                if side.port < 0:
                    raise ValueError(f"negative port in {side}")
                if side in occupied:
                    raise ValueError(f"port {side} used by two edges")
                occupied.add(side)
            if a == b:
                raise ValueError("an edge must join two distinct half-edges")
            self._edges.append(Edge(eid, a, b))
        # Materialize adjacency; ports must form a contiguous 0..deg-1 range.
        per_node: list[dict[int, int]] = [dict() for _ in range(num_nodes)]
        for edge in self._edges:
            per_node[edge.a.node][edge.a.port] = edge.eid
            per_node[edge.b.node][edge.b.port] = edge.eid
        for v, ports in enumerate(per_node):
            degree = len(ports)
            if ports and (min(ports) != 0 or max(ports) != degree - 1):
                raise ValueError(
                    f"node {v} has non-contiguous ports {sorted(ports)}"
                )
            self._adj[v] = [ports[p] for p in range(degree)]
        self._frozen = True

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_edge_list(
        cls, num_nodes: int, pairs: Sequence[tuple[int, int]]
    ) -> "PortGraph":
        """Build a graph from (u, v) pairs, assigning ports in input order."""
        next_port = [0] * num_nodes
        edges = []
        for u, v in pairs:
            pu = next_port[u]
            next_port[u] += 1
            pv = next_port[v]
            next_port[v] += 1
            edges.append((HalfEdge(u, pu), HalfEdge(v, pv)))
        return cls(num_nodes, edges)

    # -- basic size queries ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def degree(self, v: int) -> int:
        return len(self._adj[v])

    @property
    def max_degree(self) -> int:
        if self._num_nodes == 0:
            return 0
        return max(len(ports) for ports in self._adj)

    def min_degree(self) -> int:
        if self._num_nodes == 0:
            return 0
        return min(len(ports) for ports in self._adj)

    # -- iteration ---------------------------------------------------------------

    def nodes(self) -> range:
        return range(self._num_nodes)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def half_edges(self) -> Iterator[HalfEdge]:
        """All half-edges of the graph (the set B of the paper)."""
        for edge in self._edges:
            yield edge.a
            yield edge.b

    def half_edges_of(self, v: int) -> Iterator[HalfEdge]:
        for port in range(len(self._adj[v])):
            yield HalfEdge(v, port)

    # -- incidence queries ---------------------------------------------------------

    def edge(self, eid: int) -> Edge:
        return self._edges[eid]

    def edge_id_at(self, v: int, port: int) -> int:
        return self._adj[v][port]

    def edge_at(self, v: int, port: int) -> Edge:
        return self._edges[self._adj[v][port]]

    def endpoint(self, v: int, port: int) -> HalfEdge:
        """The half-edge reached by leaving ``v`` through ``port``.

        For a self-loop on ports ``p`` and ``q`` of ``v``,
        ``endpoint(v, p)`` is ``HalfEdge(v, q)``.
        """
        edge = self._edges[self._adj[v][port]]
        return edge.other_side(HalfEdge(v, port))

    def neighbor(self, v: int, port: int) -> int:
        return self.endpoint(v, port).node

    def neighbors(self, v: int) -> Iterator[int]:
        """Neighbors of ``v`` with multiplicity, in port order."""
        for port in range(len(self._adj[v])):
            yield self.endpoint(v, port).node

    def incident_edges(self, v: int) -> Iterator[Edge]:
        """Incident edges in port order; a self-loop appears twice."""
        for eid in self._adj[v]:
            yield self._edges[eid]

    def half_edge_of_edge(self, v: int, eid: int) -> HalfEdge:
        """The half-edge of ``eid`` at node ``v`` (first port for loops)."""
        edge = self._edges[eid]
        if edge.a.node == v:
            return edge.a
        if edge.b.node == v:
            return edge.b
        raise ValueError(f"node {v} is not an endpoint of edge {eid}")

    # -- structural predicates -------------------------------------------------------

    def has_self_loop(self) -> bool:
        return any(edge.is_loop for edge in self._edges)

    def has_parallel_edges(self) -> bool:
        seen: set[tuple[int, int]] = set()
        for edge in self._edges:
            if edge.is_loop:
                continue
            key = (edge.a.node, edge.b.node)
            if key in seen:
                return True
            seen.add(key)
        return False

    def is_simple(self) -> bool:
        return not self.has_self_loop() and not self.has_parallel_edges()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PortGraph(n={self._num_nodes}, m={self.num_edges})"
