"""Port-numbered multigraphs for the LOCAL model.

The paper (Section 2) works with graphs that may be disconnected and may
contain self-loops and parallel edges, where every node numbers its
incident edges with ports ``1..deg(v)``.  ``PortGraph`` is an immutable
representation of exactly that object:

* A **half-edge** is a pair ``(node, port)``.  Half-edges are the set
  ``B`` of incident node-edge pairs from the paper's ne-LCL formalism;
  with parallel edges the pair ``(node, edge)`` would be ambiguous, the
  pair ``(node, port)`` never is.
* An **edge** joins two half-edges.  A self-loop joins two distinct ports
  of the same node and therefore still contributes two half-edges.

Ports are 0-based in code (the paper's ``Port_1..Port_d`` maps to ports
``0..d-1``); all public formatting uses the 0-based convention
consistently.

Two access layers
-----------------

``PortGraph`` exposes the same immutable topology through two layers:

* The **object layer** — :class:`Edge` / :class:`HalfEdge` values from
  ``edge``, ``edges``, ``incident_edges`` — is the readable API for
  construction, formatting, and anything off the hot path.
* The **flat incidence core** — CSR-style arrays built once at freeze
  time and returned by :meth:`PortGraph.csr` (per-port neighbor, peer
  port, and edge-id tables with per-node offsets, plus the cached
  :attr:`PortGraph.degrees` list) — backs ``endpoint``, ``neighbor``,
  ``neighbors``, and every hot loop in the simulator, BFS, and verifier
  with O(1) index reads and no per-lookup object allocation.

Both layers are views of the same frozen arrays, so self-loops and
parallel edges behave identically through either.
"""

from __future__ import annotations

import warnings
from array import array
from typing import Iterator, NamedTuple, Sequence

__all__ = ["HalfEdge", "Edge", "PortGraph"]

# CSR tables are stored as signed 64-bit typed arrays ("q") and exposed
# as read-only memoryviews: the buffer protocol makes them zero-copy
# consumable by numpy kernels and shared-memory exports, and the
# read-only view makes the "must not be mutated" contract enforceable.
_CSR_TYPECODE = "q"


def _readonly_q(buf) -> memoryview:
    """A read-only int64 memoryview over any buffer-protocol object."""
    view = memoryview(buf)
    if view.format != _CSR_TYPECODE:
        view = view.cast(_CSR_TYPECODE)
    return view.toreadonly()


class HalfEdge(NamedTuple):
    """One side of an edge: a (node, port) incidence."""

    node: int
    port: int


class Edge(NamedTuple):
    """An undirected edge joining two half-edges.

    ``a`` and ``b`` are stored in a canonical order (smaller endpoint
    first) but carry no orientation; orientations are outputs of
    algorithms, never part of the graph.
    """

    eid: int
    a: HalfEdge
    b: HalfEdge

    @property
    def is_loop(self) -> bool:
        return self.a.node == self.b.node

    def nodes(self) -> tuple[int, int]:
        return (self.a.node, self.b.node)

    def other_side(self, side: HalfEdge) -> HalfEdge:
        """Return the opposite half-edge of ``side`` on this edge."""
        if side == self.a:
            return self.b
        if side == self.b:
            return self.a
        raise ValueError(f"{side} is not an endpoint of edge {self.eid}")


class _DeprecatedCallableInt(int):
    """Shim for ``PortGraph.min_degree`` callers from before it became a
    property: the value still answers ``()`` (with a DeprecationWarning)."""

    __slots__ = ()

    def __call__(self) -> int:
        warnings.warn(
            "PortGraph.min_degree is now a property; use `graph.min_degree` "
            "instead of `graph.min_degree()`",
            DeprecationWarning,
            stacklevel=2,
        )
        return int(self)


class PortGraph:
    """An immutable port-numbered multigraph.

    Construct instances with :class:`repro.local.builder.GraphBuilder` or
    the convenience classmethod :meth:`from_edge_list`.
    """

    __slots__ = (
        "_num_nodes",
        "_num_edges",
        "_edges",
        "_adj",
        "_frozen",
        "_deg",
        "_off",
        "_nbr",
        "_peer",
        "_eids",
        "_min_degree",
        "_max_degree",
    )

    def __init__(self, num_nodes: int, edges: Sequence[tuple[HalfEdge, HalfEdge]]):
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        self._edges: list[Edge] = []
        # _adj[v][p] = eid of the edge attached to port p of node v
        self._adj: list[list[int]] = [[] for _ in range(num_nodes)]
        occupied: set[HalfEdge] = set()
        for eid, (a, b) in enumerate(edges):
            a = HalfEdge(*a)
            b = HalfEdge(*b)
            if a > b:
                a, b = b, a
            for side in (a, b):
                if not 0 <= side.node < num_nodes:
                    raise ValueError(f"edge endpoint {side} out of range")
                if side.port < 0:
                    raise ValueError(f"negative port in {side}")
                if side in occupied:
                    raise ValueError(f"port {side} used by two edges")
                occupied.add(side)
            if a == b:
                raise ValueError("an edge must join two distinct half-edges")
            self._edges.append(Edge(eid, a, b))
        # Materialize adjacency; ports must form a contiguous 0..deg-1 range.
        per_node: list[dict[int, int]] = [dict() for _ in range(num_nodes)]
        for edge in self._edges:
            per_node[edge.a.node][edge.a.port] = edge.eid
            per_node[edge.b.node][edge.b.port] = edge.eid
        for v, ports in enumerate(per_node):
            degree = len(ports)
            if ports and (min(ports) != 0 or max(ports) != degree - 1):
                raise ValueError(
                    f"node {v} has non-contiguous ports {sorted(ports)}"
                )
            self._adj[v] = [ports[p] for p in range(degree)]
        # Flat incidence core (CSR layout): port slot (v, p) lives at flat
        # index _off[v] + p; _nbr holds the node across the edge, _peer the
        # port it arrives on, _eids the edge id.  A self-loop on ports p, q
        # of v fills both slots pointing at each other, so the tables keep
        # exact multigraph semantics.
        deg = [len(ports) for ports in self._adj]
        off = [0] * (num_nodes + 1)
        for v in range(num_nodes):
            off[v + 1] = off[v] + deg[v]
        total = off[num_nodes]
        nbr = [0] * total
        peer = [0] * total
        eids = [0] * total
        for edge in self._edges:
            eid = edge.eid
            (a_node, a_port), (b_node, b_port) = edge.a, edge.b
            i = off[a_node] + a_port
            j = off[b_node] + b_port
            nbr[i] = b_node
            peer[i] = b_port
            eids[i] = eid
            nbr[j] = a_node
            peer[j] = a_port
            eids[j] = eid
        self._deg = deg
        self._num_edges = len(self._edges)
        self._off = _readonly_q(array(_CSR_TYPECODE, off))
        self._nbr = _readonly_q(array(_CSR_TYPECODE, nbr))
        self._peer = _readonly_q(array(_CSR_TYPECODE, peer))
        self._eids = _readonly_q(array(_CSR_TYPECODE, eids))
        self._min_degree = _DeprecatedCallableInt(min(deg, default=0))
        self._max_degree = max(deg, default=0)
        self._frozen = True

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_csr(
        cls,
        num_nodes: int,
        num_edges: int,
        off,
        nbr,
        peer,
        eids,
    ) -> "PortGraph":
        """Adopt already-frozen CSR tables without rebuilding them.

        The tables may be any buffer-protocol objects holding int64
        values — typed arrays, numpy arrays, or slices of a
        ``multiprocessing.shared_memory`` buffer.  They are adopted
        **zero-copy**: the graph keeps read-only views over the caller's
        bytes, so a worker attaching a shared segment maps the same
        physical tables as every other worker on the host.  The object
        layer (:class:`Edge` values, per-node edge-id lists) is
        reconstructed lazily on first access; kernels that stay on the
        flat core never pay for it.

        The tables are trusted to be internally consistent (they came
        out of another ``PortGraph``); this is an adoption seam, not a
        validating constructor.
        """
        graph = cls.__new__(cls)
        graph._adopt_csr(num_nodes, num_edges, off, nbr, peer, eids)
        return graph

    def _adopt_csr(self, num_nodes, num_edges, off, nbr, peer, eids) -> None:
        self._num_nodes = int(num_nodes)
        self._num_edges = int(num_edges)
        self._off = _readonly_q(off)
        self._nbr = _readonly_q(nbr)
        self._peer = _readonly_q(peer)
        self._eids = _readonly_q(eids)
        off_view = self._off
        deg = [off_view[v + 1] - off_view[v] for v in range(self._num_nodes)]
        self._deg = deg
        self._min_degree = _DeprecatedCallableInt(min(deg, default=0))
        self._max_degree = max(deg, default=0)
        self._frozen = True
        # _edges and _adj are deliberately left unset; __getattr__
        # materializes them from the flat tables on first touch.

    def __getattr__(self, name: str):
        # Only reachable when a slot is unset: the lazy object layer of
        # a CSR-adopted graph.  Both halves materialize together.
        if name in ("_edges", "_adj"):
            edges, adj = self._materialize_object_layer()
            self._edges = edges
            self._adj = adj
            return edges if name == "_edges" else adj
        raise AttributeError(name)

    def _materialize_object_layer(self) -> tuple[list[Edge], list[list[int]]]:
        """Rebuild Edge values and per-node edge-id lists from the CSR
        tables.  Flat slots are scanned in (node, port) order, so the
        first slot of each edge id is its canonical ``a`` side."""
        off, eids = self._off, self._eids
        first: list[HalfEdge | None] = [None] * self._num_edges
        edges: list[Edge | None] = [None] * self._num_edges
        adj: list[list[int]] = []
        for v in range(self._num_nodes):
            base = off[v]
            row = eids[base : off[v + 1]].tolist()
            adj.append(row)
            for port, eid in enumerate(row):
                side = HalfEdge(v, port)
                if first[eid] is None:
                    first[eid] = side
                else:
                    edges[eid] = Edge(eid, first[eid], side)
        return edges, adj

    # -- pickling --------------------------------------------------------------
    #
    # Memoryviews are not picklable, so state travels as the raw table
    # bytes; the receiving side re-adopts them (object layer lazy again).
    # This also keeps pickles small: no Edge/HalfEdge object graph.

    def __getstate__(self) -> dict:
        return {
            "num_nodes": self._num_nodes,
            "num_edges": self._num_edges,
            "off": self._off.tobytes(),
            "nbr": self._nbr.tobytes(),
            "peer": self._peer.tobytes(),
            "eids": self._eids.tobytes(),
        }

    def __setstate__(self, state: dict) -> None:
        tables = []
        for key in ("off", "nbr", "peer", "eids"):
            buf = array(_CSR_TYPECODE)
            buf.frombytes(state[key])
            tables.append(buf)
        self._adopt_csr(state["num_nodes"], state["num_edges"], *tables)

    @classmethod
    def from_edge_list(
        cls, num_nodes: int, pairs: Sequence[tuple[int, int]]
    ) -> "PortGraph":
        """Build a graph from (u, v) pairs, assigning ports in input order."""
        next_port = [0] * num_nodes
        edges = []
        for u, v in pairs:
            pu = next_port[u]
            next_port[u] += 1
            pv = next_port[v]
            next_port[v] += 1
            edges.append((HalfEdge(u, pu), HalfEdge(v, pv)))
        return cls(num_nodes, edges)

    # -- basic size queries ----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def degree(self, v: int) -> int:
        return self._deg[v]

    @property
    def degrees(self) -> list[int]:
        """Per-node degree table (shared, frozen — do not mutate)."""
        return self._deg

    @property
    def max_degree(self) -> int:
        return self._max_degree

    @property
    def min_degree(self) -> int:
        """Minimum degree (0 for the empty graph).

        The value tolerates the legacy ``graph.min_degree()`` call form
        with a DeprecationWarning.
        """
        return self._min_degree

    # -- flat incidence core -----------------------------------------------------

    def csr(self) -> tuple[memoryview, memoryview, memoryview, memoryview]:
        """The flat incidence tables ``(offsets, neighbors, peer_ports,
        edge_ids)``.

        Port slot ``(v, p)`` lives at flat index ``offsets[v] + p``;
        ``offsets[num_nodes]`` equals ``2 * num_edges``.  The tables are
        **read-only** int64 memoryviews over the graph's frozen typed
        arrays: mutation attempts raise ``TypeError``, and the buffer
        protocol lets numpy kernels and shared-memory exports consume
        them zero-copy (``np.frombuffer(view, dtype=np.int64)``).  Hot
        loops unpack them into locals; everything else should prefer the
        object API.
        """
        return self._off, self._nbr, self._peer, self._eids

    def incident_edge_ids(self, v: int) -> list[int]:
        """Edge ids at ``v`` in port order (shared, frozen — do not
        mutate); a self-loop appears twice."""
        return self._adj[v]

    # -- iteration ---------------------------------------------------------------

    def nodes(self) -> range:
        return range(self._num_nodes)

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def half_edges(self) -> Iterator[HalfEdge]:
        """All half-edges of the graph (the set B of the paper)."""
        for edge in self._edges:
            yield edge.a
            yield edge.b

    def half_edges_of(self, v: int) -> Iterator[HalfEdge]:
        for port in range(self._deg[v]):
            yield HalfEdge(v, port)

    # -- incidence queries ---------------------------------------------------------

    def edge(self, eid: int) -> Edge:
        return self._edges[eid]

    def edge_id_at(self, v: int, port: int) -> int:
        return self._adj[v][port]

    def edge_at(self, v: int, port: int) -> Edge:
        return self._edges[self._adj[v][port]]

    def endpoint(self, v: int, port: int) -> HalfEdge:
        """The half-edge reached by leaving ``v`` through ``port``.

        For a self-loop on ports ``p`` and ``q`` of ``v``,
        ``endpoint(v, p)`` is ``HalfEdge(v, q)``.
        """
        degree = self._deg[v]
        if port < 0:
            port += degree
        if not 0 <= port < degree:
            raise IndexError("list index out of range")
        i = self._off[v] + port
        return HalfEdge(self._nbr[i], self._peer[i])

    def neighbor(self, v: int, port: int) -> int:
        degree = self._deg[v]
        if port < 0:
            port += degree
        if not 0 <= port < degree:
            raise IndexError("list index out of range")
        return self._nbr[self._off[v] + port]

    def neighbors(self, v: int) -> list[int]:
        """Neighbors of ``v`` with multiplicity, in port order."""
        return self._nbr[self._off[v] : self._off[v + 1]].tolist()

    def incident_edges(self, v: int) -> list[Edge]:
        """Incident edges in port order; a self-loop appears twice."""
        edges = self._edges
        return [edges[eid] for eid in self._adj[v]]

    def half_edge_of_edge(self, v: int, eid: int) -> HalfEdge:
        """The half-edge of ``eid`` at node ``v`` (first port for loops)."""
        edge = self._edges[eid]
        if edge.a.node == v:
            return edge.a
        if edge.b.node == v:
            return edge.b
        raise ValueError(f"node {v} is not an endpoint of edge {eid}")

    # -- structural predicates -------------------------------------------------------

    def has_self_loop(self) -> bool:
        return any(edge.is_loop for edge in self._edges)

    def has_parallel_edges(self) -> bool:
        seen: set[tuple[int, int]] = set()
        for edge in self._edges:
            if edge.is_loop:
                continue
            key = (edge.a.node, edge.b.node)
            if key in seen:
                return True
            seen.add(key)
        return False

    def is_simple(self) -> bool:
        return not self.has_self_loop() and not self.has_parallel_edges()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PortGraph(n={self._num_nodes}, m={self.num_edges})"
