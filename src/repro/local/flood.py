"""Flooding node programs: the engine's reference workloads.

Two classic probes, each shipped in both execution models — an object
node program for the oracle loop and an
:class:`~repro.local.simulator.ArrayProgram` twin (discovered via the
``array_program`` class attribute) for the batched path:

* :class:`FloodNode` — delta-floods identifiers and counts the rounds
  until it has heard from everyone, i.e. its eccentricity.  The tests'
  diameter probe since PR 2, now a library citizen.
* :class:`MinIdFloodNode` — forwards the smallest value seen and halts
  the round after it stabilizes.  Halting is staggered (distance to the
  minimum), making it the canonical active-set-compaction workload and
  the gated throughput case in ``benchmarks/bench_simulator_throughput``.
"""

from __future__ import annotations

from repro.local.algorithm import Instance

__all__ = ["FloodNode", "MinIdFloodNode"]


class FloodNode:
    """Counts rounds until it has heard from everyone (diameter probe).

    Floods deltas: each round a node forwards only what it learned the
    round before.  An id at distance d still arrives in exactly d
    rounds, so heard sets, halting rounds, and results are identical to
    re-broadcasting the full heard set — but messages stay
    frontier-sized instead of ball-sized.
    """

    def __init__(self, v: int, instance: Instance):
        self.v = v
        self.n = instance.graph.num_nodes
        self.degree = instance.graph.degree(v)
        self.heard = {v}
        self.fresh = frozenset((v,))
        self.done_at: int | None = 0 if self.n == 1 else None

    @staticmethod
    def array_program():
        from repro.kernels.programs import EccFloodProgram

        return EccFloodProgram()

    def outgoing(self, round_index):
        if self.done_at is not None:
            return None
        return [self.fresh] * self.degree

    def receive(self, round_index, inbox):
        heard = self.heard
        fresh = set().union(*(m for m in inbox if m)) - heard
        heard |= fresh
        self.fresh = frozenset(fresh)
        if len(heard) == self.n:
            self.done_at = round_index + 1

    def result(self):
        return self.done_at


class MinIdFloodNode:
    """Forward the smallest value seen, halt once it stabilizes.

    Converges on every graph (each component settles on its minimum),
    with per-node halt rounds staggered by distance to the minimum.
    """

    def __init__(self, v: int, instance: Instance):
        self.value = v
        self.deg = instance.graph.degree(v)
        self.changed = True

    @staticmethod
    def array_program():
        from repro.kernels.programs import MinFloodProgram

        return MinFloodProgram()

    def outgoing(self, round_index):
        if not self.changed:
            return None
        return [self.value] * self.deg

    def receive(self, round_index, inbox):
        best = min([self.value] + [m for m in inbox if m is not None])
        self.changed = best != self.value
        self.value = best

    def result(self):
        return self.value
