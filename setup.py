"""Packaging shim (kept as setup.py so editable installs work without
the ``wheel`` package).

The library itself is stdlib-only.  ``pip install -e .[fast]`` pulls in
numpy and unlocks :mod:`repro.kernels`' vectorized layer; without it
every kernel degrades to the pure-python object layer with identical
results (see the "Vectorized kernels" section of the README).
"""

from setuptools import find_packages, setup

setup(
    name="repro-podc-balliu",
    version="0.8.0",
    description=(
        "Reproduction of the PODC'20 LCL complexity-landscape paper: "
        "instances, solvers, verifier, and the sharded experiment engine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[],
    extras_require={
        # Vectorized kernels over the CSR core.  Optional: the object
        # layer is the always-available oracle; `kernels=auto` only
        # selects the vector backend when numpy imports.
        "fast": ["numpy>=1.22"],
    },
)
