"""E14 — incidence-core microbenchmarks: flat CSR tables vs the object API.

Times the same topology queries through both access layers of
:class:`PortGraph` — the pre-existing ``Edge``/``HalfEdge`` object path
and the flat CSR tables added by the incidence core — on the three
graph families the reproduction leans on (cycles, random cubic graphs,
the paper's gadgets).  Results land both in the human-readable table
(``report``) and in ``BENCH_incidence.json`` (``report_json``) so the
trajectory is tracked across PRs.

Set ``BENCH_QUICK=1`` to run with few repetitions (CI smoke mode).
"""

from __future__ import annotations

import os
import random
import time

from benchmarks.conftest import report, report_json
from repro.analysis import render_table
from repro.gadgets.build import build_gadget
from repro.generators import cycle, random_regular
from repro.local import bfs_distances
from repro.local.graphs import HalfEdge, PortGraph

QUICK = os.environ.get("BENCH_QUICK", "") not in ("", "0")
REPS = 1 if QUICK else 5


# -- the two access paths -----------------------------------------------------


def _endpoint_sweep_object(graph: PortGraph) -> int:
    """Visit every half-edge via edge objects (the pre-flat-core path)."""
    total = 0
    for v in graph.nodes():
        for port in range(graph.degree(v)):
            edge = graph.edge_at(v, port)
            total += edge.other_side(HalfEdge(v, port)).node
    return total


def _endpoint_sweep_flat(graph: PortGraph) -> int:
    """Visit every half-edge through the CSR tables."""
    off, nbr, _, _ = graph.csr()
    total = 0
    for v in graph.nodes():
        for u in nbr[off[v] : off[v + 1]]:
            total += u
    return total


def _bfs_object(graph: PortGraph, source: int) -> dict[int, int]:
    """Full BFS via edge objects (the pre-flat-core bfs_distances)."""
    dist = {source: 0}
    queue = [source]
    for v in queue:
        d = dist[v]
        for port in range(graph.degree(v)):
            edge = graph.edge_at(v, port)
            u = edge.other_side(HalfEdge(v, port)).node
            if u not in dist:
                dist[u] = d + 1
                queue.append(u)
    return dist


def _time(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _graphs() -> list[tuple[str, PortGraph]]:
    size = 512 if QUICK else 4096
    cubic = 256 if QUICK else 2048
    return [
        (f"cycle-{size}", cycle(size)),
        (f"cubic-{cubic}", random_regular(cubic, 3, random.Random(0))),
        ("gadget-d3-h5", build_gadget(3, 5).graph),
    ]


def test_incidence_core_old_vs_new():
    rows = []
    results: dict[str, dict] = {}
    for name, graph in _graphs():
        assert _endpoint_sweep_object(graph) == _endpoint_sweep_flat(graph)
        assert _bfs_object(graph, 0) == bfs_distances(graph, 0)
        sweep_obj = _time(_endpoint_sweep_object, graph)
        sweep_flat = _time(_endpoint_sweep_flat, graph)
        bfs_obj = _time(_bfs_object, graph, 0)
        bfs_flat = _time(bfs_distances, graph, 0)
        results[name] = {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "endpoint_sweep": {
                "object_s": sweep_obj,
                "flat_s": sweep_flat,
                "speedup": round(sweep_obj / sweep_flat, 2),
            },
            "bfs_full": {
                "object_s": bfs_obj,
                "flat_s": bfs_flat,
                "speedup": round(bfs_obj / bfs_flat, 2),
            },
        }
        rows.append(
            [
                name,
                f"{sweep_obj * 1e3:.2f}ms",
                f"{sweep_flat * 1e3:.2f}ms",
                f"{sweep_obj / sweep_flat:.1f}x",
                f"{bfs_obj * 1e3:.2f}ms",
                f"{bfs_flat * 1e3:.2f}ms",
                f"{bfs_obj / bfs_flat:.1f}x",
            ]
        )
        # The perf claim this PR ships: flat reads beat object hops.
        # Only asserted in thorough mode — a single quick-mode sample on
        # a noisy CI runner is not evidence of a regression.
        if not QUICK:
            assert sweep_flat < sweep_obj
    report_json("incidence_core", {"quick": QUICK, "graphs": results})
    report(
        render_table(
            [
                "graph",
                "sweep(obj)",
                "sweep(flat)",
                "speedup",
                "bfs(obj)",
                "bfs(flat)",
                "speedup",
            ],
            rows,
            title="E14  incidence core: object API vs flat CSR tables",
        )
    )


def test_incidence_core_benchmark_hooks(benchmark):
    """pytest-benchmark visibility for the flat path on the cubic graph."""
    graph = random_regular(256 if QUICK else 2048, 3, random.Random(0))
    result = benchmark(lambda: len(bfs_distances(graph, 0)))
    assert result == graph.num_nodes
