"""Shared helpers for the benchmark suite.

Every bench regenerates a table or series from the paper (the
experiment index lives in DESIGN.md).  ``report`` collects them and a
``pytest_terminal_summary`` hook prints everything after the benchmark
timings, so the tables always land in ``bench_output.txt`` regardless
of pytest's output capture.  They are also appended to
``benchmarks/results.txt`` for later inspection.
"""

from __future__ import annotations

import json
import os
import platform
import sys

import pytest

_REPORTS: list[str] = []
# filename -> {key -> payload}; each file is one perf-trajectory JSON.
_JSON_REPORTS: dict[str, dict[str, object]] = {}
_RESULTS_FILE = os.path.join(os.path.dirname(__file__), "results.txt")
_DEFAULT_JSON = "BENCH_incidence.json"


def report(text: str) -> None:
    _REPORTS.append(text)


def report_json(key: str, payload: object, file: str = _DEFAULT_JSON) -> None:
    """Collect a machine-readable benchmark record.

    Everything registered here is written to ``benchmarks/<file>`` at
    the end of the run (``BENCH_incidence.json`` by default;
    ``bench_runtime_dispatch`` writes ``BENCH_runtime.json``), so perf
    trajectories can be tracked across PRs without parsing the human
    tables.
    """
    _JSON_REPORTS.setdefault(file, {})[key] = payload


def _merged_reports() -> tuple[list[str], dict[str, dict[str, object]]]:
    """Reports from this module AND its twin import instance.

    pytest loads this file as module ``conftest`` while the bench files
    ``import benchmarks.conftest``; without an ``__init__.py`` those are
    two separate module objects, so the hook must merge both to see
    what the benchmarks registered.
    """
    reports = list(_REPORTS)
    json_reports = {file: dict(keys) for file, keys in _JSON_REPORTS.items()}
    twin = sys.modules.get("benchmarks.conftest")
    if twin is not None and getattr(twin, "_REPORTS", None) is not _REPORTS:
        reports += twin._REPORTS
        for file, keys in twin._JSON_REPORTS.items():
            json_reports.setdefault(file, {}).update(keys)
    return reports, json_reports


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports, json_reports = _merged_reports()
    if reports:
        terminalreporter.section("reproduction tables (paper vs measured)")
        for text in reports:
            terminalreporter.write_line("")
            for line in text.splitlines():
                terminalreporter.write_line(line)
        try:
            with open(_RESULTS_FILE, "w") as handle:
                handle.write("\n\n".join(reports) + "\n")
        except OSError:  # pragma: no cover - the report is best-effort
            pass
    for file, keys in json_reports.items():
        payload = {
            "python": platform.python_version(),
            "machine": platform.machine(),
            **keys,
        }
        path = os.path.join(os.path.dirname(__file__), file)
        try:
            with open(path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            terminalreporter.write_line(f"wrote {path}")
        except OSError:  # pragma: no cover - the report is best-effort
            pass


@pytest.fixture(scope="session")
def family_levels():
    from repro.core import build_family

    return build_family(3)
