"""Shared helpers for the benchmark suite.

Every bench regenerates a table or series from the paper (the
experiment index lives in DESIGN.md).  ``report`` collects them and a
``pytest_terminal_summary`` hook prints everything after the benchmark
timings, so the tables always land in ``bench_output.txt`` regardless
of pytest's output capture.  They are also appended to
``benchmarks/results.txt`` for later inspection.
"""

from __future__ import annotations

import os

import pytest

_REPORTS: list[str] = []
_RESULTS_FILE = os.path.join(os.path.dirname(__file__), "results.txt")


def report(text: str) -> None:
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduction tables (paper vs measured)")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    try:
        with open(_RESULTS_FILE, "w") as handle:
            handle.write("\n\n".join(_REPORTS) + "\n")
    except OSError:  # pragma: no cover - the report is best-effort
        pass


@pytest.fixture(scope="session")
def family_levels():
    from repro.core import build_family

    return build_family(3)
