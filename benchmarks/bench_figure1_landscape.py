"""E1 — Figure 1: the complexity landscape, measured.

One row per implemented LCL: the paper's placement of its deterministic
and randomized complexity against the best-fit growth class of the
measured round series.  Problems on the diagonal (randomness useless)
are measured with the same algorithm for both columns, which *is* the
optimal randomized algorithm there.
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.analysis import measure_row, render_landscape
from repro.generators import cycle
from repro.generators.hard import cubic_instance, padded_hard_instance
from repro.lcl import Labeling, verify
from repro.local import Instance
from repro.local.identifiers import random_ids
from repro.problems import (
    ColorClassMisSolver,
    ConstantSolver,
    CycleColoringSolver,
    DeterministicSinklessSolver,
    MaximalIndependentSet,
    RandomizedSinklessSolver,
    SinklessOrientation,
    ThreeColoringCycles,
)
from repro.util.rng import NodeRng

NS = [2**k for k in range(6, 13)]
SMALL = ["1", "log*", "loglog", "log"]
POLYLOG = ["1", "log*", "loglog", "log", "log loglog", "log^2"]


def _cycle_instance(n: int, seed: int) -> Instance:
    import random

    rng = random.Random(seed * 7919 + n)
    return Instance(cycle(n), random_ids(n, rng), None, None, NodeRng(seed))


def _verifier(problem):
    def check(instance, result):
        verdict = verify(
            problem, instance.graph, Labeling(instance.graph), result.outputs
        )
        assert verdict.ok, verdict.summary()

    return check


def test_landscape_table(family_levels, benchmark):
    rows = []
    rows.append(
        measure_row(
            "trivial",
            "O(1)",
            "O(1)",
            ConstantSolver(),
            ConstantSolver(),
            _cycle_instance,
            NS,
            seeds=(0,),
            candidates=SMALL,
        )
    )
    coloring = CycleColoringSolver()
    rows.append(
        measure_row(
            "3-coloring cycles",
            "Theta(log* n)",
            "Theta(log* n)",
            coloring,
            coloring,
            _cycle_instance,
            NS,
            seeds=(0, 1),
            candidates=SMALL,
            verify=_verifier(ThreeColoringCycles().problem()),
        )
    )
    mis = ColorClassMisSolver()
    rows.append(
        measure_row(
            "MIS (bounded degree)",
            "Theta(log* n)",
            "Theta(log* n)",
            mis,
            mis,
            cubic_instance,
            NS,
            seeds=(0,),
            candidates=SMALL,
            verify=_verifier(MaximalIndependentSet().problem()),
        )
    )
    rows.append(
        measure_row(
            "sinkless orientation",
            "Theta(log n)",
            "Theta(loglog n)",
            DeterministicSinklessSolver(),
            RandomizedSinklessSolver(),
            cubic_instance,
            NS,
            seeds=(0, 1),
            candidates=SMALL,
            verify=_verifier(SinklessOrientation().problem()),
        )
    )
    pi2 = family_levels[1]
    rows.append(
        measure_row(
            "Pi_2 (this work)",
            "Theta(log^2 n)",
            "Theta(log n loglog n)",
            pi2.det_solver,
            pi2.rand_solver,
            lambda n, s: padded_hard_instance(pi2, n, s),
            [300, 900, 2500, 7000, 16000],
            seeds=(0,),
            candidates=POLYLOG,
            verify=lambda inst, res: _assert_level(pi2, inst, res),
        )
    )
    table = render_landscape(rows)
    note = (
        "note: at laptop sizes, log*(n) in {3, 4} is indistinguishable "
        "from a small additive\ndrift, so log*-class rows are asserted on "
        "growth deltas, not fit names."
    )
    report(table + "\n" + note)
    # landmark assertions: the diagonal stays flat, the separations show
    assert rows[0].measured_det() == "1"
    # log*-class problems: almost flat over a 64x size range
    for row in (rows[1], rows[2]):
        sweep = row.det_sweep
        assert sweep.means()[-1] - sweep.means()[0] <= 8
    assert rows[3].measured_det() in ("log",)
    assert rows[3].measured_rand() in ("loglog", "log*", "1")

    instance = cubic_instance(256, 0)
    benchmark(lambda: ColorClassMisSolver().solve(instance))


def _assert_level(level, instance, result):
    verdict = level.verify(instance.graph, instance.inputs, result.outputs)
    assert verdict.ok, verdict.summary()
