"""E9 — engine scaling: serial vs pooled dispatch, cold vs warm cache.

Not a paper experiment but a harness property the other benches lean
on: the engine must (a) keep results bit-identical across worker
counts, (b) replay a warm cache without recomputing anything, and on
multi-core hardware (c) beat the serial loop on wall-clock.  (c) is
reported, not asserted — CI machines promise nothing about cores.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report
from repro.analysis import render_table
from repro.engine import ExperimentSpec, TrialCache, run_experiment

SPEC = ExperimentSpec(
    name="engine-scaling/sinkless-det",
    solver="repro.problems:DeterministicSinklessSolver",
    generator="repro.generators.hard:cubic_instance",
    verifier="repro.engine.experiments:verify_sinkless",
    ns=tuple(2**k for k in range(6, 12)),
    seeds=(0, 1, 2),
)


def _timed(workers: int, cache: TrialCache | None):
    start = time.perf_counter()
    result = run_experiment(SPEC, workers=workers, cache=cache)
    return result, time.perf_counter() - start


def test_engine_scaling(benchmark, tmp_path):
    serial, serial_s = _timed(workers=1, cache=None)

    pool_cache_dir = str(tmp_path / "cache")
    pooled, pooled_s = _timed(workers=4, cache=TrialCache(pool_cache_dir))
    warm, warm_s = _timed(workers=4, cache=TrialCache(pool_cache_dir))

    trials = serial.trials_total
    rows = [
        ["serial (workers=1, no cache)", trials, 0, round(serial_s, 3),
         round(trials / serial_s, 1)],
        ["pooled (workers=4, cold cache)", trials, 0, round(pooled_s, 3),
         round(trials / pooled_s, 1)],
        ["pooled (workers=4, warm cache)", 0, trials, round(warm_s, 4),
         round(trials / warm_s, 1)],
    ]
    report(
        render_table(
            ["configuration", "computed", "cached", "seconds", "trials/s"],
            rows,
            title=(
                "E9  engine scaling: identical results, cached replay, "
                "pooled dispatch\n"
                f"    serial->pooled speedup: {serial_s / pooled_s:.2f}x, "
                f"cold->warm speedup: {pooled_s / warm_s:.1f}x"
            ),
        )
    )
    # (a) bit-identical sweeps at every worker count and cache state
    assert serial.sweep == pooled.sweep == warm.sweep
    # (b) the warm run replays everything and computes nothing
    assert warm.cache_hits == trials and warm.computed == 0
    assert pooled.cache_hits == 0 and pooled.computed == trials

    benchmark(lambda: run_experiment(SPEC, workers=1, cache=TrialCache(pool_cache_dir)))
