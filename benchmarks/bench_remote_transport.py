"""E14 — remote transport overhead on the clean (no-fault) path.

Moving shard results over HTTP must cost ~nothing next to computing
them.  Both arms run the same two-shard pipeline to completion; the
baseline merges the shard roots straight off the filesystem, the
remote arm detours each root through the full transport — manifested
``export_dir``, a loopback ``ExportServer``, checksum-verified
``pull_export``, then the same merge.  Full mode holds the overhead
of that detour — its directly-timed cost against the baseline
pipeline — under 5% (records asserted identical first).  Differencing
the two end-to-end totals would gate compute jitter instead: the
solver arm is ~40x the transport leg and wobbles by more than the
whole detour costs.
Quick mode's workload is ~40ms of compute, so a percentage there
would only measure the transport's fixed costs against an
artificially tiny denominator; it gates the absolute per-file
transfer cost instead (both modes do), and still reports the
percentage for the record.

Emits ``benchmarks/BENCH_remote.json`` via the shared ``report_json``
hook for cross-PR tracking.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from benchmarks.conftest import report, report_json
from repro.analysis import render_table
from repro.engine.cache import TrialCache
from repro.engine.remote import ExportServer, PullPolicy, pull_export
from repro.engine.runner import plan_experiment, run_shard
from repro.engine.spec import ExperimentSpec
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref

QUICK = bool(os.environ.get("BENCH_QUICK"))
# Full mode needs seconds of compute per arm so the ~100ms transport
# leg registers as the few-percent tax it is in real sweeps; fewer
# seeds at larger n buys that without inflating the transferred bytes.
MAX_N = 512 if QUICK else 65536
REPEATS = 2 if QUICK else 3
THRESHOLD_PCT = 5.0  # gated in full mode only (see docstring)
PER_FILE_BUDGET_MS = 5.0  # gated in both modes
NUM_SHARDS = 2


def _spec() -> ExperimentSpec:
    ns = []
    n = 64
    while n <= MAX_N:
        ns.append(n)
        n *= 2
    return ExperimentSpec(
        name="bench/degree-parity/parity@cycle",
        solver=solver_ref("parity"),
        generator=family_ref("cycle"),
        verifier=verifier_ref("degree-parity"),
        ns=tuple(ns),
        seeds=tuple(range(16 if QUICK else 8)),
    )


def _run_shards(spec, root) -> list[str]:
    """Compute every shard into its own cache root; return the roots."""
    plan = plan_experiment(spec, num_shards=NUM_SHARDS)
    roots = []
    for i in range(NUM_SHARDS):
        out = os.path.join(root, f"shard-{i}")
        cache = TrialCache(os.path.join(root, "shared"), isolation=out)
        run_shard(plan.manifest(i), workers=1, cache=cache)
        roots.append(out)
    return roots


def _fingerprint(root) -> dict[str, int]:
    cache = TrialCache(root)
    cache.load_all()
    return {key: len(str(record)) for key, record in cache._index.items()}


def _baseline(spec, root) -> float:
    """run shards + merge the roots straight off the filesystem."""
    start = time.perf_counter()
    roots = _run_shards(spec, root)
    merged = TrialCache(os.path.join(root, "merged"))
    for shard_root in roots:
        merged.merge(shard_root)
    return time.perf_counter() - start


def _remote(spec, root) -> tuple[float, float, int, int]:
    """Same pipeline with the transport detour; also times the pure
    export->serve->pull->merge leg and counts transferred bytes/files."""
    start = time.perf_counter()
    roots = _run_shards(spec, root)
    transport_start = time.perf_counter()
    export_root = os.path.join(root, "exports")
    for i, shard_root in enumerate(roots):
        TrialCache(shard_root).export_dir(
            os.path.join(export_root, f"shard-{i}")
        )
    merged = TrialCache(os.path.join(root, "merged"))
    pulled_bytes = pulled_files = 0
    policy = PullPolicy(timeout=10.0, max_attempts=2)
    with ExportServer(export_root) as server:
        for i in range(len(roots)):
            result = pull_export(
                f"{server.url}/shard-{i}",
                os.path.join(root, "pulls", f"src-{i}"),
                policy,
            )
            assert result.ok, result.summary()
            pulled_bytes += sum(file.bytes for file in result.files)
            pulled_files += len(result.files)
            merged.merge(result.dest)
    now = time.perf_counter()
    return now - start, now - transport_start, pulled_bytes, pulled_files


def test_remote_transport_clean_path_overhead():
    spec = _spec()
    trials = len(spec.ns) * len(spec.seeds)
    best_base = best_remote = best_transport = float("inf")
    pulled_bytes = pulled_files = 0
    for _ in range(REPEATS):
        tmp = tempfile.mkdtemp(prefix="bench-remote-")
        try:
            base_s = _baseline(spec, os.path.join(tmp, "base"))
            remote_s, transport_s, pulled_bytes, pulled_files = _remote(
                spec, os.path.join(tmp, "remote")
            )
            base_fp = _fingerprint(os.path.join(tmp, "base", "merged"))
            remote_fp = _fingerprint(os.path.join(tmp, "remote", "merged"))
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        assert remote_fp == base_fp  # transport must not change a byte
        best_base = min(best_base, base_s)
        best_remote = min(best_remote, remote_s)
        best_transport = min(best_transport, transport_s)
    overhead_pct = best_transport / best_base * 100
    end_to_end_pct = (best_remote - best_base) / best_base * 100
    per_file_ms = best_transport / max(pulled_files, 1) * 1000
    throughput_mbs = pulled_bytes / max(best_transport, 1e-9) / 1e6

    report(
        render_table(
            ["case", "trials", "ms"],
            [
                ["compute + fs merge", trials, round(best_base * 1000, 1)],
                [
                    "compute + export/serve/pull/merge",
                    trials,
                    round(best_remote * 1000, 1),
                ],
                [
                    "  transport leg alone",
                    pulled_files,
                    round(best_transport * 1000, 1),
                ],
            ],
            title=(
                "E14 remote transport clean path\n"
                f"    overhead: {overhead_pct:+.2f}% "
                f"(budget: < {THRESHOLD_PCT:.0f}%"
                f"{', reported only in quick mode' if QUICK else ''}); "
                f"{per_file_ms:.2f}ms/file "
                f"(budget: < {PER_FILE_BUDGET_MS:.0f}ms), "
                f"{throughput_mbs:.1f}MB/s verified"
            ),
        )
    )
    report_json(
        "remote_transport",
        {
            "trials": trials,
            "baseline_ms": best_base * 1000,
            "remote_ms": best_remote * 1000,
            "transport_ms": best_transport * 1000,
            "overhead_pct": overhead_pct,
            "end_to_end_pct": end_to_end_pct,
            "pulled_files": pulled_files,
            "pulled_bytes": pulled_bytes,
            "per_file_ms": per_file_ms,
            "throughput_mb_s": throughput_mbs,
            "max_n": MAX_N,
            "quick": QUICK,
        },
        file="BENCH_remote.json",
    )
    assert per_file_ms < PER_FILE_BUDGET_MS, (
        f"remote transfer cost {per_file_ms:.2f}ms/file exceeds "
        f"{PER_FILE_BUDGET_MS:.0f}ms"
    )
    if not QUICK:
        assert overhead_pct < THRESHOLD_PCT, (
            f"remote transport overhead {overhead_pct:.2f}% exceeds "
            f"{THRESHOLD_PCT:.0f}%"
        )
