"""E8 — Figure 2: padding stretches distances by the gadget depth.

Pads a cycle with gadgets of growing height and measures how base-graph
distances dilate: the physical distance between gadget centers should
be ~ (2h + 1) per base hop, the communication overhead that Theorem 1's
complexity product comes from.
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.analysis import render_table
from repro.core import pad_graph
from repro.gadgets import build_gadget
from repro.generators import cycle
from repro.local import bfs_distances


def test_distance_dilation(benchmark):
    base = cycle(8)
    rows = []
    factors = []
    for height in (2, 3, 4, 5, 6):
        gadgets = [build_gadget(3, height) for _ in base.nodes()]
        padded = pad_graph(base, gadgets)
        centers = [
            padded.padded_node(v, gadgets[v].center) for v in base.nodes()
        ]
        dist = bfs_distances(padded.graph, centers[0])
        base_dist = bfs_distances(base, 0)
        per_hop = []
        for v in base.nodes():
            if v == 0:
                continue
            per_hop.append(dist[centers[v]] / base_dist[v])
        factor = sum(per_hop) / len(per_hop)
        factors.append(factor)
        rows.append(
            [
                height,
                padded.graph.num_nodes,
                2 * height + 1,
                round(factor, 2),
            ]
        )
    report(
        render_table(
            ["height h", "padded n", "expected 2h+1", "measured stretch"],
            rows,
            title="E8  Figure 2: distance dilation through the padding",
        )
    )
    for (h_row, factor) in zip(rows, factors):
        expected = h_row[2]
        assert 0.8 * expected <= factor <= 1.2 * expected

    gadgets = [build_gadget(3, 4) for _ in base.nodes()]
    benchmark(lambda: pad_graph(base, gadgets))
