"""Ablations of the design choices DESIGN.md calls out.

* **Anchor scan vs pure fixer** — the deterministic sinkless solver's
  anchor phase is what produces the Theta(log n) measured locality; an
  ablated solver that skips it (canonical ID orientation + the same
  repair machinery) is *correct* but measures like the randomized one,
  i.e. it no longer witnesses the deterministic lower-bound shape.
* **Mixed vs uniform gadget heights** — Definition 3 allows a
  different gadget per node; the Pi' solver must pay for the *largest*
  gadget on any relevant path, so mixed paddings cost as much as their
  tallest gadget dictates.
* **Discussion-section classifier** — the measured Pi_1/Pi_2 gaps land
  in the regimes the paper names (exponential-scale vs subexponential),
  and neither implies a network-decomposition lower bound.
"""

from __future__ import annotations

import random

from benchmarks.conftest import report
from repro.analysis import best_fit, render_table, run_sweep
from repro.core import PaddedProblem, PaddedSolver, classify_gap, pad_graph
from repro.gadgets import LogGadgetFamily, build_gadget
from repro.generators import random_regular
from repro.generators.hard import cubic_instance
from repro.lcl import Labeling, verify
from repro.local import Instance
from repro.local.algorithm import RunResult
from repro.local.identifiers import sequential_ids
from repro.problems import (
    DeterministicSinklessSolver,
    Orientation,
    SinklessOrientation,
    fix_deficient,
)
from repro.util.rng import NodeRng


class AblatedSinklessSolver:
    """Deterministic, correct, but no anchor scan: ID orientation + fixer."""

    name = "sinkless-det-ablated"
    randomized = False

    def solve(self, instance):
        graph, ids = instance.graph, instance.ids
        orientation = Orientation.by_lower_id(graph, ids)
        node_radius = [1 if graph.degree(v) else 0 for v in graph.nodes()]
        fix = fix_deficient(graph, orientation, 3, priority=ids.of)
        for node, radius in fix.touched.items():
            node_radius[node] = max(node_radius[node], radius)
        return RunResult(orientation.to_labeling(), node_radius)


def test_anchor_scan_ablation(benchmark):
    ns = [2**k for k in range(6, 13)]
    problem = SinklessOrientation().problem()

    def verified(instance, result):
        verdict = verify(
            problem, instance.graph, Labeling(instance.graph), result.outputs
        )
        assert verdict.ok, verdict.summary()

    full = run_sweep(DeterministicSinklessSolver(), cubic_instance, ns, (0, 1), verified)
    ablated = run_sweep(AblatedSinklessSolver(), cubic_instance, ns, (0, 1), verified)
    full_fit = best_fit(full.ns(), full.means(), ["1", "log*", "loglog", "log"])
    ablated_fit = best_fit(ablated.ns(), ablated.means(), ["1", "log*", "loglog", "log"])
    rows = [
        [n, f, a] for n, f, a in zip(full.ns(), full.means(), ablated.means())
    ]
    report(
        render_table(
            ["n", "anchor-scan rounds", "ablated rounds"],
            rows,
            title=(
                "ABL1  anchor scan ablation: both are correct, but only the "
                "anchor scan\n      exhibits the deterministic Theta(log n) "
                f"shape\n      full: {full_fit}\n      ablated: {ablated_fit}"
            ),
        )
    )
    assert full_fit.name == "log"
    assert ablated_fit.name in ("1", "log*", "loglog")

    instance = cubic_instance(1024, 0)
    benchmark(lambda: AblatedSinklessSolver().solve(instance))


def test_mixed_height_padding(benchmark):
    base = random_regular(8, 3, random.Random(1))
    family = LogGadgetFamily(3)
    problem = PaddedProblem(SinklessOrientation().problem(), family)
    solver = PaddedSolver(problem, DeterministicSinklessSolver())
    rows = []
    results = {}
    for label, heights in (
        ("uniform h=3", [3] * 8),
        ("uniform h=6", [6] * 8),
        ("mixed 3..6", [3, 4, 5, 6, 3, 4, 5, 6]),
    ):
        gadgets = [build_gadget(3, h) for h in heights]
        padded = pad_graph(base, gadgets)
        instance = Instance(
            padded.graph,
            sequential_ids(padded.graph.num_nodes),
            padded.inputs,
            None,
            NodeRng(0),
        )
        result = solver.solve(instance)
        assert problem.verify(padded.graph, padded.inputs, result.outputs).ok
        results[label] = result.rounds
        rows.append([label, padded.graph.num_nodes, result.rounds])
    report(
        render_table(
            ["padding", "n", "Pi' rounds"],
            rows,
            title=(
                "ABL2  mixed gadget heights: the tallest gadget on the "
                "simulation path sets the cost"
            ),
        )
    )
    assert results["uniform h=3"] < results["mixed 3..6"] <= results["uniform h=6"] * 1.25

    benchmark(lambda: solver.solve(Instance(
        padded.graph,
        sequential_ids(padded.graph.num_nodes),
        padded.inputs,
        None,
        NodeRng(0),
    )))


def test_gap_classification(benchmark):
    """The Discussion section: where do measured gaps land?"""
    ns = [4096]
    det1 = run_sweep(DeterministicSinklessSolver(), cubic_instance, ns, (0, 1, 2))
    from repro.problems import RandomizedSinklessSolver

    rand1 = run_sweep(RandomizedSinklessSolver(), cubic_instance, ns, (0, 1, 2))
    # amplified to asymptotic scale: feed the fitted shapes at large n
    from repro.core.theory import deterministic_prediction, randomized_prediction

    rows = []
    for level in (1, 2, 3):
        n = 2**40
        verdict = classify_gap(
            deterministic_prediction(level, n), randomized_prediction(level, n), n
        )
        rows.append(
            [f"Pi_{level} @ 2^40", round(verdict.ratio, 1), verdict.kind,
             "no" if not verdict.implies_nd_bound() else "YES"]
        )
    measured = classify_gap(det1.means()[0], rand1.means()[0], 4096)
    rows.append(
        ["Pi_1 measured @ 4096", round(measured.ratio, 2), measured.kind, "no"]
    )
    report(
        render_table(
            ["gap", "D/R", "regime", "implies ND bound?"],
            rows,
            title=(
                "ABL3  Discussion: all constructed gaps are subexponential "
                "(D/R = Theta(log/loglog)),\n      so none implies a network-"
                "decomposition lower bound"
            ),
        )
    )
    for row in rows[:3]:
        assert row[3] == "no"

    benchmark(lambda: classify_gap(100, 10, 2**30))
