"""E12 — telemetry overhead: observability must be (nearly) free.

PR 6's claim: the obs layer (phase spans around build/solve/verify,
engine counters, snapshot piggybacking) costs < 3% wall time on the
batched-runtime workload from E11, and is **inert** — the records an
experiment produces are bit-identical with telemetry enabled or
disabled, at K in {1, 4} shards, with the K=4 telemetry merging
order-independently.

The timing gate only applies to full-size runs; quick mode times
millisecond windows on shared CI runners where a noisy neighbor could
fail it with zero code defect.  The inertness and merge-algebra
assertions hold in every mode.  Emits ``benchmarks/BENCH_obs.json``.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import report, report_json
from repro.analysis import render_table
from repro.engine.runner import (
    merge_shard_reports,
    plan_experiment,
    run_experiment,
    run_shard,
)
from repro.engine.spec import ExperimentSpec
from repro.obs import aggregate, get_telemetry, set_enabled
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref

QUICK = bool(os.environ.get("BENCH_QUICK"))
N = 512 if QUICK else 4096
SEEDS = tuple(range(8))
REPEATS = 3 if QUICK else 5
THRESHOLD = 0.03  # max tolerated wall-time overhead with telemetry on


def _spec(name: str, ns=(N,)) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        solver=solver_ref("parity"),
        generator=family_ref("cycle"),
        verifier=verifier_ref("degree-parity"),
        ns=ns,
        seeds=SEEDS,
    )


def test_telemetry_overhead_and_inertness():
    spec = _spec("bench-obs/degree-parity/parity@cycle")
    telemetry = get_telemetry()
    best_on = best_off = float("inf")
    report_on = report_off = None
    was_enabled = set_enabled(True)
    try:
        # Interleave enabled/disabled repeats so drift (thermal, cache
        # warmup) hits both arms equally; keep the best of each.
        for _ in range(REPEATS):
            set_enabled(True)
            telemetry.reset()
            start = time.perf_counter()
            report_on = run_experiment(spec, workers=1, batch_size=len(SEEDS))
            best_on = min(best_on, time.perf_counter() - start)
            set_enabled(False)
            start = time.perf_counter()
            report_off = run_experiment(spec, workers=1, batch_size=len(SEEDS))
            best_off = min(best_off, time.perf_counter() - start)
    finally:
        set_enabled(was_enabled)
    assert report_on is not None and report_off is not None

    # Inert: same records, down to the bit, with the layer on or off.
    assert report_on.records == report_off.records
    assert report_on.telemetry is not None and report_off.telemetry is None

    overhead = best_on / best_off - 1.0
    view = aggregate(report_on.telemetry)
    phase_total = sum(
        stat["total_s"]
        for path, stat in view["spans"].items()
        if path.startswith("trial.")
    )
    rows = [
        [
            "parity@cycle",
            N,
            len(SEEDS) * len(spec.ns),
            round(best_off * 1e3, 2),
            round(best_on * 1e3, 2),
            f"{overhead * 100:+.2f}%",
        ]
    ]
    report(
        render_table(
            ["case", "n", "trials", "off ms", "on ms", "overhead"],
            rows,
            title=(
                "E12 telemetry overhead (run_experiment, telemetry on vs off)\n"
                f"    bar: < {THRESHOLD * 100:.0f}% on full-size runs "
                "(informational in quick mode; records bit-identical); "
                f"phase spans cover {phase_total:.3f}s of the run"
            ),
        )
    )
    report_json(
        "obs_overhead",
        {
            "n": N,
            "trials": len(SEEDS) * len(spec.ns),
            "repeats": REPEATS,
            "off_ms": best_off * 1e3,
            "on_ms": best_on * 1e3,
            "overhead_frac": overhead,
            "threshold_frac": THRESHOLD,
            "counters": view["counters"],
            "records_identical": report_on.records == report_off.records,
            "quick": QUICK,
        },
        file="BENCH_obs.json",
    )
    if not QUICK:
        assert overhead < THRESHOLD, (
            f"telemetry overhead {overhead * 100:.2f}% exceeds the "
            f"{THRESHOLD * 100:.0f}% bar on the full-size workload"
        )


def test_k4_shard_telemetry_merges_order_independently_and_stays_inert():
    # Smaller sizes: this case checks algebra, not throughput.
    spec = _spec("bench-obs/shards/parity@cycle", ns=(64, 96, 128, 160))
    plan = plan_experiment(spec, num_shards=4, batch_size=len(SEEDS))

    def run_all():
        return [run_shard(plan.manifest(i)) for i in range(plan.num_shards)]

    was_enabled = set_enabled(True)
    try:
        get_telemetry().reset()
        reports = run_all()
        merges = [
            merge_shard_reports([reports[i] for i in order])
            for order in ((0, 1, 2, 3), (3, 1, 0, 2), (2, 3, 1, 0))
        ]
        assert all(m.telemetry == merges[0].telemetry for m in merges[1:])
        assert all(m.records == merges[0].records for m in merges[1:])
        counters = aggregate(merges[0].telemetry)["counters"]
        assert counters["trials.executed"] == len(spec.ns) * len(SEEDS)
        set_enabled(False)
        silent = merge_shard_reports(run_all())
    finally:
        set_enabled(was_enabled)
    assert silent.telemetry is None
    assert silent.records == merges[0].records
    report_json(
        "obs_shard_merge",
        {
            "num_shards": plan.num_shards,
            "trials": len(spec.ns) * len(SEEDS),
            "order_independent": True,
            "records_identical_disabled": silent.records == merges[0].records,
            "counters": counters,
        },
        file="BENCH_obs.json",
    )
