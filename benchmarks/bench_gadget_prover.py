"""E6/E7 — Theorem 6, Lemmas 9 and 10: the gadget family and prover V.

Regenerates: (a) the O(log n) radius series of V on valid gadgets of
growing height, (b) the corruption matrix — every corruption detected,
proof of error Psi-consistent, error labels everywhere — and (c) the
Lemma 9 summary: adversarial error labelings on valid gadgets are
rejected.
"""

from __future__ import annotations

import random

from benchmarks.conftest import report
from repro.analysis import best_fit, render_table
from repro.gadgets import (
    ERROR,
    GADOK,
    GadgetScope,
    LogGadgetFamily,
    Pointer,
    all_corruptions,
    build_gadget,
    run_prover,
    verify_psi,
)
from repro.gadgets.labels import Down, LEFT, PARENT, RCHILD, RIGHT, UP


def test_prover_radius_series(benchmark):
    family = LogGadgetFamily(3)
    rows = []
    ns, radii = [], []
    for height in range(3, 11):
        built = family.member_with_height(height)
        scope = GadgetScope(built.graph, built.inputs)
        component = sorted(built.graph.nodes())
        result = run_prover(scope, component, 3, built.num_nodes)
        assert result.all_ok()
        used = max(result.node_radius.values())
        ns.append(built.num_nodes)
        radii.append(used)
        rows.append([height, built.num_nodes, used])
    fit = best_fit(ns, [float(r) for r in radii], ["1", "log*", "loglog", "log", "sqrt"])
    report(
        render_table(
            ["height", "gadget n", "V radius"],
            rows,
            title=(
                "E6  Lemma 10: prover V certifies valid gadgets in O(log n) "
                f"rounds\n    measured fit: {fit}"
            ),
        )
    )
    assert fit.name == "log"

    built = family.member_with_height(7)
    scope = GadgetScope(built.graph, built.inputs)
    component = sorted(built.graph.nodes())
    benchmark(lambda: run_prover(scope, component, 3, built.num_nodes))


def test_corruption_matrix(benchmark):
    built = build_gadget(3, 5)
    rows = []
    for corruption in all_corruptions(built, random.Random(0)):
        scope = GadgetScope(corruption.graph, corruption.inputs)
        component = sorted(corruption.graph.nodes())
        result = run_prover(scope, component, 3, corruption.graph.num_nodes)
        psi_ok = not verify_psi(scope, component, result.outputs, 3)
        rows.append(
            [
                corruption.name,
                "yes" if not result.is_valid else "NO",
                "yes" if result.error_only() else "NO",
                "yes" if psi_ok else "NO",
                len(result.violations),
            ]
        )
        assert not result.is_valid and result.error_only() and psi_ok
    report(
        render_table(
            ["corruption", "detected", "error labels only", "Psi-consistent", "flagged nodes"],
            rows,
            title="E6  corrupted gadgets: locally checkable proofs of error",
        )
    )

    corruption = all_corruptions(built, random.Random(0))[0]
    scope = GadgetScope(corruption.graph, corruption.inputs)
    component = sorted(corruption.graph.nodes())
    benchmark(
        lambda: run_prover(scope, component, 3, corruption.graph.num_nodes)
    )


def test_lemma9_adversarial_summary(benchmark):
    built = build_gadget(2, 4)
    scope = GadgetScope(built.graph, built.inputs)
    component = sorted(built.graph.nodes())
    pool = [
        ERROR,
        Pointer(RIGHT),
        Pointer(LEFT),
        Pointer(PARENT),
        Pointer(RCHILD),
        Pointer(UP),
        Pointer(Down(1)),
        Pointer(Down(2)),
    ]
    rng = random.Random(17)
    attempts = 1000
    rejected = 0
    for _ in range(attempts):
        outputs = {v: rng.choice(pool) for v in component}
        if verify_psi(scope, component, outputs, 2):
            rejected += 1
    report(
        render_table(
            ["adversarial labelings", "rejected", "accepted"],
            [[attempts, rejected, attempts - rejected]],
            title=(
                "E7  Lemma 9: no error labeling satisfies Psi on a valid "
                "gadget"
            ),
        )
    )
    assert rejected == attempts

    outputs = {v: GADOK for v in component}
    benchmark(lambda: verify_psi(scope, component, outputs, 2))
