"""E3 — Theorem 1 / Lemma 4: the multiplicative padding overhead.

The padded solver's measured rounds should track
``base rounds x gadget depth``: padding multiplies the base problem's
complexity by Theta(d(n)).  This bench measures the product structure
directly (the solver reports both factors) across gadget heights, and
runs the Lemma 5 reduction once to confirm the transfer direction.
"""

from __future__ import annotations

import random

from benchmarks.conftest import report
from repro.analysis import render_table
from repro.core import PaddedProblem, PaddedSolver, hard_instance, simulate_padded_algorithm
from repro.core.hard_instances import _lifted_ids
from repro.gadgets import LogGadgetFamily, build_gadget
from repro.core.padding import pad_graph
from repro.generators import random_regular
from repro.local import Instance
from repro.local.identifiers import sequential_ids
from repro.problems import DeterministicSinklessSolver, SinklessOrientation
from repro.util.rng import NodeRng

FAMILY = LogGadgetFamily(3)
PROBLEM = PaddedProblem(SinklessOrientation().problem(), FAMILY)


def _padded_instance(base, height):
    gadgets = [build_gadget(3, height) for _ in base.nodes()]
    padded = pad_graph(base, gadgets)
    return padded, Instance(
        padded.graph,
        sequential_ids(padded.graph.num_nodes),
        padded.inputs,
        None,
        NodeRng(0),
    )


def test_multiplicative_overhead(benchmark):
    base = random_regular(16, 3, random.Random(2))
    solver = PaddedSolver(PROBLEM, DeterministicSinklessSolver())
    rows = []
    overheads = []
    for height in (2, 3, 4, 5, 6, 7):
        padded, instance = _padded_instance(base, height)
        result = solver.solve(instance)
        verdict = PROBLEM.verify(padded.graph, padded.inputs, result.outputs)
        assert verdict.ok, verdict.summary()
        base_rounds = result.extras["base_rounds"]
        depth = 2 * height
        overhead = result.rounds / max(base_rounds, 1)
        overheads.append((depth, overhead))
        rows.append(
            [
                instance.graph.num_nodes,
                height,
                depth,
                base_rounds,
                result.rounds,
                round(overhead, 2),
            ]
        )
    report(
        render_table(
            ["padded n", "height h", "port dist 2h", "base rounds", "Pi' rounds", "overhead"],
            rows,
            title=(
                "E3  Theorem 1: padding multiplies complexity by the gadget "
                "depth Theta(d(n))"
            ),
        )
    )
    # the overhead factor must grow ~linearly with the depth
    (d0, o0), (d1, o1) = overheads[0], overheads[-1]
    assert o1 > o0
    assert 0.3 * (d1 / d0) <= o1 / o0 <= 3.0 * (d1 / d0)

    padded, instance = _padded_instance(base, 4)
    benchmark(lambda: solver.solve(instance))


def test_lemma5_reduction_transfer(benchmark):
    base_graph = random_regular(16, 3, random.Random(4))
    base_instance = Instance.simple(base_graph, seed=1)
    solver = PaddedSolver(PROBLEM, DeterministicSinklessSolver())
    base_result, padded_result = benchmark.pedantic(
        lambda: simulate_padded_algorithm(
            PROBLEM, solver, FAMILY, base_instance, target_n=4096
        ),
        rounds=1,
        iterations=1,
    )
    report(
        render_table(
            ["quantity", "value"],
            [
                ["base graph n", base_graph.num_nodes],
                ["padded n", 4096],
                ["padded rounds", padded_result.rounds],
                ["gadget depth", base_result.extras["depth"]],
                ["induced base rounds", base_result.rounds],
            ],
            title=(
                "E3  Lemma 5 reduction: a Pi' algorithm induces a Pi "
                "algorithm at rounds/depth"
            ),
        )
    )
    assert base_result.rounds <= padded_result.rounds
