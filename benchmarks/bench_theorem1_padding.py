"""E3 — Theorem 1 / Lemma 4: the multiplicative padding overhead.

The padded solver's measured rounds should track
``base rounds x gadget depth``: padding multiplies the base problem's
complexity by Theta(d(n)).  This bench measures the product structure
directly across gadget heights — the height series is one declarative
``repro.engine`` spec whose trial records carry both factors — and
runs the Lemma 5 reduction once to confirm the transfer direction.
"""

from __future__ import annotations

import random

from benchmarks.conftest import report
from repro.analysis import render_table
from repro.core import PaddedProblem, PaddedSolver, simulate_padded_algorithm
from repro.engine import ExperimentSpec, run_experiment
from repro.engine.experiments import padded_sinkless_instance
from repro.gadgets import LogGadgetFamily
from repro.generators import random_regular
from repro.local import Instance
from repro.problems import DeterministicSinklessSolver, SinklessOrientation

FAMILY = LogGadgetFamily(3)
PROBLEM = PaddedProblem(SinklessOrientation().problem(), FAMILY)

HEIGHTS = (2, 3, 4, 5, 6, 7)

SPEC = ExperimentSpec(
    name="padding/multiplicative-overhead",
    solver="repro.engine.experiments:padded_sinkless_solver",
    generator="repro.engine.experiments:padded_sinkless_instance",
    verifier="repro.engine.experiments:verify_padded_sinkless",
    ns=HEIGHTS,
    seeds=(0,),
)


def test_multiplicative_overhead(benchmark):
    engine_report = run_experiment(SPEC, workers=4)
    rows = []
    overheads = []
    for height, record in zip(HEIGHTS, engine_report.records):
        base_rounds = record["extras"]["base_rounds"]
        depth = 2 * height
        overhead = record["rounds"] / max(base_rounds, 1)
        overheads.append((depth, overhead))
        rows.append(
            [
                record["actual_n"],
                height,
                depth,
                base_rounds,
                record["rounds"],
                round(overhead, 2),
            ]
        )
    report(
        render_table(
            ["padded n", "height h", "port dist 2h", "base rounds", "Pi' rounds", "overhead"],
            rows,
            title=(
                "E3  Theorem 1: padding multiplies complexity by the gadget "
                "depth Theta(d(n))"
            ),
        )
    )
    # the overhead factor must grow ~linearly with the depth
    (d0, o0), (d1, o1) = overheads[0], overheads[-1]
    assert o1 > o0
    assert 0.3 * (d1 / d0) <= o1 / o0 <= 3.0 * (d1 / d0)

    solver = PaddedSolver(PROBLEM, DeterministicSinklessSolver())
    instance = padded_sinkless_instance(4, 0)
    benchmark(lambda: solver.solve(instance))


def test_lemma5_reduction_transfer(benchmark):
    base_graph = random_regular(16, 3, random.Random(4))
    base_instance = Instance.simple(base_graph, seed=1)
    solver = PaddedSolver(PROBLEM, DeterministicSinklessSolver())
    base_result, padded_result = benchmark.pedantic(
        lambda: simulate_padded_algorithm(
            PROBLEM, solver, FAMILY, base_instance, target_n=4096
        ),
        rounds=1,
        iterations=1,
    )
    report(
        render_table(
            ["quantity", "value"],
            [
                ["base graph n", base_graph.num_nodes],
                ["padded n", 4096],
                ["padded rounds", padded_result.rounds],
                ["gadget depth", base_result.extras["depth"]],
                ["induced base rounds", base_result.rounds],
            ],
            title=(
                "E3  Lemma 5 reduction: a Pi' algorithm induces a Pi "
                "algorithm at rounds/depth"
            ),
        )
    )
    assert base_result.rounds <= padded_result.rounds
