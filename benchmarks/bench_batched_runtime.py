"""E11 — batched trial pipeline: the batch as the unit of scheduling.

PR 4's claim: running a seed-batch of trials through
``Runtime.run_many`` — one solver-factory/verifier setup, one frozen
topology per size, one verifier skeleton per shared core — beats the
per-trial path (``Runtime.run`` in a loop, which rebuilds all of that
per trial) by >= 2x trial throughput on topology-reusable families at
batch size >= 8, while producing bit-identical records.

Topology-seeded families (the random cubic hard instances) cannot share
graphs across seeds; their case is reported too as the honest lower
bound — there the batch only amortizes setup, not construction.

The engine-layer ratio (chunked ``run_experiment`` vs a serial
``execute_trial`` loop over the same spec) is recorded alongside.

PR 8 moves the seeded-cubic lower bound: with the vectorized kernel
backend (``kernels="vector"``), the batch is no longer bound by
per-trial topology construction + object-layer scans — the same
workload that batching alone left at ~1x now clears
``VECTOR_CUBIC_BAR`` against the per-trial object path, records still
bit-identical.

Emits ``benchmarks/BENCH_batch.json`` via the shared ``report_json``
hook for cross-PR tracking.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import report, report_json
from repro import kernels
from repro.analysis import render_table
from repro.engine.runner import execute_trial, run_experiment
from repro.engine.spec import ExperimentSpec
from repro.runtime import Runtime, registry
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref

QUICK = bool(os.environ.get("BENCH_QUICK"))
N = 512 if QUICK else 4096
SEEDS = tuple(range(8))  # the acceptance bar is batch size >= 8
REPEATS = 2 if QUICK else 3
THRESHOLD = 2.0
#: What the vector backend must buy on the topology-seeded family that
#: batching alone leaves at ~1x (measured ~1.8x; the bar keeps CI slack).
VECTOR_CUBIC_BAR = 1.3

# (problem, solver, family, reusable topology?)
CASES = [
    ("constant", "constant", "cycle", True),
    ("degree-parity", "parity", "torus", True),
    ("sinkless-orientation", "sinkless-det", "cubic", False),
]


def _record_key(record):
    return (
        record.problem,
        record.solver,
        record.family,
        record.n,
        record.actual_n,
        record.seed,
        record.rounds,
        tuple(record.node_radius),
        record.verified,
        tuple(sorted(record.extras.items())),
    )


def _best_times(runtime, problem, solver, family, n):
    """Best-of-REPEATS per-trial seconds for both paths, interleaved."""
    best_per_trial = best_batched = float("inf")
    per_records = batched_records = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        per_records = [
            runtime.run(problem, solver, family, n, seed) for seed in SEEDS
        ]
        best_per_trial = min(
            best_per_trial, (time.perf_counter() - start) / len(SEEDS)
        )
        start = time.perf_counter()
        batched_records = runtime.run_many(problem, solver, family, [n], SEEDS)
        best_batched = min(
            best_batched, (time.perf_counter() - start) / len(SEEDS)
        )
    assert per_records is not None and batched_records is not None
    assert [_record_key(r) for r in per_records] == [
        _record_key(r) for r in batched_records
    ], f"{solver}@{family}: batched records diverged from the per-trial path"
    return best_per_trial, best_batched


def _vector_cubic_times(runtime):
    """Per-trial object path vs batched vector path on seeded cubic.

    This is the end-to-end claim of the kernel layer: same trials,
    same records, but the batch's scans and verifications run on the
    numpy backend.  The object path stays the oracle — record keys
    are asserted identical before any time is reported.
    """
    best_per_trial = best_vector = float("inf")
    per_records = vector_records = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        per_records = [
            runtime.run(
                "sinkless-orientation",
                "sinkless-det",
                "cubic",
                N,
                seed,
                kernels="object",
            )
            for seed in SEEDS
        ]
        best_per_trial = min(
            best_per_trial, (time.perf_counter() - start) / len(SEEDS)
        )
        start = time.perf_counter()
        vector_records = runtime.run_many(
            "sinkless-orientation",
            "sinkless-det",
            "cubic",
            [N],
            SEEDS,
            kernels="vector",
        )
        best_vector = min(
            best_vector, (time.perf_counter() - start) / len(SEEDS)
        )
    assert per_records is not None and vector_records is not None
    assert [_record_key(r) for r in per_records] == [
        _record_key(r) for r in vector_records
    ], "sinkless-det@cubic: vector records diverged from the object path"
    return best_per_trial, best_vector


def _engine_layer_ratio():
    """Chunked run_experiment vs a serial execute_trial loop, same spec."""
    spec = ExperimentSpec(
        name="bench/degree-parity/parity@cycle",
        solver=solver_ref("parity"),
        generator=family_ref("cycle"),
        verifier=verifier_ref("degree-parity"),
        ns=(N,),
        seeds=SEEDS,
    )
    best_serial = best_chunked = float("inf")
    chunked = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        serial = [execute_trial(trial) for trial in spec.trials()]
        best_serial = min(best_serial, time.perf_counter() - start)
        start = time.perf_counter()
        chunked = run_experiment(spec, workers=1, batch_size=len(SEEDS))
        best_chunked = min(best_chunked, time.perf_counter() - start)
    assert chunked is not None and chunked.records == serial
    return best_serial / len(SEEDS), best_chunked / len(SEEDS)


def test_batched_pipeline_throughput():
    runtime = Runtime()
    rows = []
    payload = {}
    headline = float("inf")
    for problem, solver, family, reusable in CASES:
        assert registry.family(family).reusable_topology == reusable
        per_trial_s, batched_s = _best_times(runtime, problem, solver, family, N)
        speedup = per_trial_s / batched_s
        if reusable:
            headline = min(headline, speedup)
        rows.append(
            [
                f"{solver}@{family}",
                N,
                len(SEEDS),
                "yes" if reusable else "no",
                round(per_trial_s * 1e3, 2),
                round(batched_s * 1e3, 2),
                f"{speedup:.2f}x",
            ]
        )
        payload[f"{solver}@{family}/n={N}"] = {
            "n": N,
            "batch": len(SEEDS),
            "reusable_topology": reusable,
            "per_trial_ms": per_trial_s * 1e3,
            "batched_ms": batched_s * 1e3,
            "speedup": speedup,
        }

    vector_cubic_speedup = None
    if kernels.HAVE_NUMPY:
        per_s, vec_s = _vector_cubic_times(runtime)
        vector_cubic_speedup = per_s / vec_s
        rows.append(
            [
                "sinkless-det@cubic +vec",
                N,
                len(SEEDS),
                "no",
                round(per_s * 1e3, 2),
                round(vec_s * 1e3, 2),
                f"{vector_cubic_speedup:.2f}x",
            ]
        )
        payload[f"sinkless-det@cubic+vector/n={N}"] = {
            "n": N,
            "batch": len(SEEDS),
            "reusable_topology": False,
            "kernels": "vector",
            "per_trial_ms": per_s * 1e3,
            "batched_ms": vec_s * 1e3,
            "speedup": vector_cubic_speedup,
        }

    engine_serial_s, engine_chunked_s = _engine_layer_ratio()
    engine_speedup = engine_serial_s / engine_chunked_s
    rows.append(
        [
            "engine: parity@cycle",
            N,
            len(SEEDS),
            "yes",
            round(engine_serial_s * 1e3, 2),
            round(engine_chunked_s * 1e3, 2),
            f"{engine_speedup:.2f}x",
        ]
    )
    payload["engine/parity@cycle"] = {
        "n": N,
        "batch": len(SEEDS),
        "per_trial_ms": engine_serial_s * 1e3,
        "chunked_ms": engine_chunked_s * 1e3,
        "speedup": engine_speedup,
    }

    report(
        render_table(
            [
                "case",
                "n",
                "batch",
                "topo reuse",
                "per-trial ms",
                "batched ms",
                "speedup",
            ],
            rows,
            title=(
                "E11 batched trial pipeline (run_many / chunked engine vs "
                "per-trial)\n"
                f"    worst topology-reusable speedup: {headline:.2f}x "
                f"(bar: >= {THRESHOLD}x, informational in quick mode; "
                "records bit-identical)"
            ),
        )
    )
    report_json(
        "batched_pipeline",
        {
            "cases": payload,
            "headline_speedup": headline,
            "engine_speedup": engine_speedup,
            "vector_cubic_speedup": vector_cubic_speedup,
            "batch": len(SEEDS),
            "n": N,
            "quick": QUICK,
            "threshold": THRESHOLD,
            "vector_cubic_bar": VECTOR_CUBIC_BAR,
        },
        file="BENCH_batch.json",
    )
    # Record bit-identity asserted above is the CI-worthy invariant; the
    # wall-clock bar only gates full-size runs — quick mode times
    # millisecond windows on shared CI runners, where a noisy neighbor
    # could fail it with zero code defect.
    if not QUICK:
        assert headline >= THRESHOLD, (
            f"topology-reusable batch speedup {headline:.2f}x is below "
            f"{THRESHOLD}x at batch size {len(SEEDS)}"
        )
        if vector_cubic_speedup is not None:
            assert vector_cubic_speedup >= VECTOR_CUBIC_BAR, (
                "vector backend left the seeded-cubic batch at "
                f"{vector_cubic_speedup:.2f}x (bar: {VECTOR_CUBIC_BAR}x)"
            )
