"""E12 — vectorized kernels over the CSR core vs the object layer.

PR 8's claim: the numpy-backed kernel layer (``repro.kernels``) beats
the pure-python object layer by >= 3x on frontier-vectorized BFS and
the batched verifier at n >= 1000, with *bit-identical* results — the
object layer stays the differential-testing oracle, the vector backend
only buys time.  Alongside, shipping topology cores through
``multiprocessing.shared_memory`` shrinks the per-worker dispatch
payload from the full pickled graph to a ~tens-of-bytes handle, and
attaching a segment is far cheaper than unpickling a private copy.

Emits ``benchmarks/BENCH_kernels.json`` via the shared ``report_json``
hook for cross-PR tracking.  The >= 3x gates hold in quick mode too:
the kernels are measured back-to-back in-process, so the ratio is
robust to runner noise even when the absolute times are not.
"""

from __future__ import annotations

import os
import pickle
import time

from benchmarks.conftest import report, report_json
from repro import kernels
from repro.analysis import render_table
from repro.generators import cubic_instance, torus_grid
from repro.kernels import shm
from repro.lcl import Labeling
from repro.lcl.verifier import PreparedVerifier
from repro.local import Instance, SyncEngine, bfs_distances
from repro.local.distances import connected_components, multi_source_bfs
from repro.local.identifiers import sequential_ids
from repro.problems import VertexColoring

QUICK = bool(os.environ.get("BENCH_QUICK"))
#: The acceptance bar binds at n >= 1000; quick mode shrinks repeats,
#: not the instance (a sub-1000-node quick instance would gate nothing,
#: and per-level numpy dispatch overhead only amortizes out well past
#: the bar — ratios at this size are stable, at 1024 they are noise).
N = 8192
REPEATS = 3 if QUICK else 5
THRESHOLD = 3.0
#: Frontier bookkeeping (parent extraction, component relabeling) caps
#: these two below the 3x bar; they gate at their own measured floors
#: so a regression can't silently eat the win PR 8 shipped.
MSBFS_THRESHOLD = 2.0
COMPONENTS_THRESHOLD = 1.5


class _FloodNode:
    """Minimal flooding protocol: forward the smallest id seen, halt
    when the value stabilizes — enough rounds to time delivery."""

    def __init__(self, v, instance):
        self.value = v
        self.deg = instance.graph.degree(v)
        self.changed = True

    def outgoing(self, round_index):
        if not self.changed:
            return None
        return [self.value] * self.deg

    def receive(self, round_index, inbox):
        best = min(
            [self.value] + [m for m in inbox if m is not None]
        )
        self.changed = best != self.value
        self.value = best

    def result(self):
        return self.value


def _best(fn, *args, **kwargs):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def _vector_vs_object(fn, *args, **kwargs):
    """Best-of times for both backends, asserting identical results."""
    object_s, expected = _best(fn, *args, **kwargs)
    with kernels.active("vector"):
        vector_s, got = _best(fn, *args, **kwargs)
    assert got == expected, f"{fn.__name__}: vector diverged from object"
    return object_s, vector_s


def _coloring_outputs(graph):
    outputs = Labeling(graph)
    for v in graph.nodes():
        outputs.set_node(v, v % 3)
    return outputs


def test_vector_kernel_speedups():
    # Random cubic topology: BFS frontiers grow exponentially, so most
    # of the graph sits in a few wide frontiers — the vectorized
    # kernels' favorable (and realistic: it is the paper's hard
    # family) regime.
    graph = cubic_instance(N, seed=0).graph
    n = graph.num_nodes
    rows = []
    payload = {}

    def case(label, object_s, vector_s, gated):
        speedup = object_s / vector_s
        rows.append(
            [
                label,
                n,
                round(object_s * 1e3, 2),
                round(vector_s * 1e3, 2),
                f"{speedup:.2f}x",
                "yes" if gated else "no",
            ]
        )
        payload[label] = {
            "n": n,
            "object_ms": object_s * 1e3,
            "vector_ms": vector_s * 1e3,
            "speedup": speedup,
            "gated": gated,
        }
        return speedup

    bfs_speedup = case("bfs_distances", *_vector_vs_object(bfs_distances, graph, 0), True)
    msbfs_speedup = case(
        "multi_source_bfs",
        *_vector_vs_object(multi_source_bfs, graph, [0, 1, 2]),
        True,
    )
    components_speedup = case(
        "connected_components",
        *_vector_vs_object(connected_components, graph),
        True,
    )

    # Batched verifier: one PreparedVerifier skeleton, repeated verify
    # calls — the seed-batch shape the engine actually runs.  The
    # vectorized twin folds the n constraint evaluations down to one
    # per *distinct* local configuration.
    problem = VertexColoring(3).problem()
    prepared = PreparedVerifier(problem, graph)
    outputs = _coloring_outputs(graph)

    def batched_verify():
        verdict = kernels.prepared_verify(prepared, outputs)
        return (verdict.ok, tuple(verdict.violations))

    verifier_speedup = case(
        "batched_verifier", *_vector_vs_object(batched_verify), True
    )

    # SyncEngine delivery on a torus (regular ports, many rounds):
    # gather/scatter over the port arrays vs the per-message loop.
    side = max(8, int(n ** 0.5))
    torus = torus_grid(side, side)
    instance = Instance(torus, sequential_ids(torus.num_nodes))

    def engine_run():
        result = SyncEngine(instance, _FloodNode).run(max_rounds=10_000)
        return (result.results, result.rounds, result.halt_rounds)

    object_s, expected = _best(engine_run)
    with kernels.active("vector"):
        vector_s, got = _best(engine_run)
    assert got == expected
    rows.append(
        [
            "engine_delivery",
            torus.num_nodes,
            round(object_s * 1e3, 2),
            round(vector_s * 1e3, 2),
            f"{object_s / vector_s:.2f}x",
            "no",
        ]
    )
    payload["engine_delivery"] = {
        "n": torus.num_nodes,
        "object_ms": object_s * 1e3,
        "vector_ms": vector_s * 1e3,
        "speedup": object_s / vector_s,
        "gated": False,
    }

    report(
        render_table(
            ["kernel", "n", "object ms", "vector ms", "speedup", "gated"],
            rows,
            title=(
                "E12 vectorized kernels vs object layer "
                f"(results bit-identical; bar >= {THRESHOLD}x on gated rows)"
            ),
        )
    )
    report_json(
        "vector_kernels",
        {
            "cases": payload,
            "n": n,
            "quick": QUICK,
            "threshold": THRESHOLD,
            "msbfs_threshold": MSBFS_THRESHOLD,
            "components_threshold": COMPONENTS_THRESHOLD,
            "bfs_speedup": bfs_speedup,
            "msbfs_speedup": msbfs_speedup,
            "components_speedup": components_speedup,
            "verifier_speedup": verifier_speedup,
        },
        file="BENCH_kernels.json",
    )
    assert bfs_speedup >= THRESHOLD, (
        f"vectorized BFS speedup {bfs_speedup:.2f}x below {THRESHOLD}x at n={n}"
    )
    assert msbfs_speedup >= MSBFS_THRESHOLD, (
        f"multi-source BFS speedup {msbfs_speedup:.2f}x below "
        f"{MSBFS_THRESHOLD}x at n={n}"
    )
    assert components_speedup >= COMPONENTS_THRESHOLD, (
        f"connected components speedup {components_speedup:.2f}x below "
        f"{COMPONENTS_THRESHOLD}x at n={n}"
    )
    assert verifier_speedup >= THRESHOLD, (
        f"batched verifier speedup {verifier_speedup:.2f}x below "
        f"{THRESHOLD}x at n={n}"
    )


def test_shared_memory_dispatch_payload():
    """Handle-vs-pickle: what one worker dispatch actually ships."""
    graph = cubic_instance(N, seed=0).graph
    pickled_core = len(pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL))
    unpickle_s, _ = _best(
        pickle.loads, pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
    )

    handle = shm.export_graph(graph)
    try:
        handle_bytes = len(
            pickle.dumps(tuple(handle), protocol=pickle.HIGHEST_PROTOCOL)
        )

        def attach_fresh():
            # measure a cold attach: drop the exporter short-circuit
            # and the attach memo so the mmap actually happens
            entry = shm._EXPORTED.pop(handle.segment)
            try:
                attached = shm.attach_graph(handle)
            finally:
                dropped = shm._ATTACHED.pop(handle.segment, None)
                if dropped is not None:
                    seg = dropped[1]
                    seg._buf = None
                    seg._mmap = None
                    seg._fd = -1
                shm._EXPORTED[handle.segment] = entry
                # attach_graph unregistered the segment from the
                # resource tracker (right for real workers, but this
                # process is also the exporter): re-register so the
                # final unlink's bookkeeping balances.
                from multiprocessing import resource_tracker

                resource_tracker.register(
                    "/" + handle.segment, "shared_memory"
                )
            return attached.num_nodes

        attach_s, _ = _best(attach_fresh)
    finally:
        shm.release_core(handle)

    shrink = pickled_core / handle_bytes
    report(
        render_table(
            ["payload", "bytes", "adopt ms"],
            [
                ["pickled core", pickled_core, round(unpickle_s * 1e3, 3)],
                ["shm handle", handle_bytes, round(attach_s * 1e3, 3)],
            ],
            title=(
                "E12 per-worker dispatch payload, "
                f"n={graph.num_nodes} cubic core "
                f"({shrink:.0f}x smaller on the wire)"
            ),
        )
    )
    report_json(
        "shm_dispatch",
        {
            "n": graph.num_nodes,
            "pickled_core_bytes": pickled_core,
            "handle_bytes": handle_bytes,
            "shrink_factor": shrink,
            "unpickle_ms": unpickle_s * 1e3,
            "attach_ms": attach_s * 1e3,
            "quick": QUICK,
        },
        file="BENCH_kernels.json",
    )
    assert handle_bytes * 100 < pickled_core, (
        f"shm handle ({handle_bytes}B) should be >= 100x smaller than the "
        f"pickled core ({pickled_core}B)"
    )
