"""E9-E12 — the paper's construction figures, rebuilt and validated.

* Figure 3: sinkless orientation in the node-edge-pair formalism;
* Figure 4: the valid-port subset S and the alpha mapping when an
  invalid gadget hangs off a port;
* Figures 5/6: sub-gadget and gadget structure metrics;
* Figures 7/8: the node-edge-checkable error proofs of Section 4.6.
"""

from __future__ import annotations

import random

from benchmarks.conftest import report
from repro.analysis import render_table
from repro.core import PORT_ERR1, PORT_OK, PaddedInput, decompose, pad_graph
from repro.gadgets import (
    GadgetScope,
    LogGadgetFamily,
    build_gadget,
    corrupt,
    gadget_size,
    run_prover,
)
from repro.gadgets.labels import GadgetNodeInput, NOPORT
from repro.gadgets.ne_encoding import compile_ne_proof, verify_ne_proof
from repro.generators import cycle, path
from repro.lcl import Labeling, verify
from repro.local import Instance, bfs_distances, diameter
from repro.local.identifiers import sequential_ids
from repro.problems import (
    DeterministicSinklessSolver,
    Orientation,
    SinklessOrientation,
)


def test_figure3_ne_formalism(benchmark):
    graph = cycle(6)
    problem = SinklessOrientation(exempt_below=0).problem()
    instance = Instance.simple(graph)
    result = DeterministicSinklessSolver(exempt_below=0).solve(instance)
    verdict = verify(problem, graph, Labeling(graph), result.outputs)
    assert verdict.ok
    orientation = Orientation.from_labeling(graph, result.outputs)
    out_degrees = [orientation.out_degree(v) for v in graph.nodes()]
    report(
        render_table(
            ["node", "out-degree"],
            [[v, d] for v, d in enumerate(out_degrees)],
            title=(
                "E9  Figure 3: sinkless orientation on a 6-cycle via "
                "half-edge labels (every node has an out-edge)"
            ),
        )
    )
    assert all(d >= 1 for d in out_degrees)
    benchmark(lambda: verify(problem, graph, Labeling(graph), result.outputs))


def test_figure4_port_mapping(benchmark):
    """Port_1 faces an invalid gadget: S = {2, 3}, alpha maps 2->1, 3->2."""
    base = path(4)  # node 1 has degree 2; node 0's gadget will be broken
    gadgets = [build_gadget(3, 3) for _ in base.nodes()]
    padded = pad_graph(base, gadgets)
    inputs = padded.inputs.copy()
    victim = padded.padded_node(0, gadgets[0].ports[0])
    old = inputs.node(victim)
    inputs.set_node(
        victim,
        PaddedInput(old.pi, GadgetNodeInput(old.gadget.role, NOPORT, old.gadget.color)),
    )
    family = LogGadgetFamily(3)
    decomposition = benchmark.pedantic(
        lambda: decompose(
            padded.graph,
            inputs,
            family,
            sequential_ids(padded.graph.num_nodes),
            padded.graph.num_nodes,
        ),
        rounds=1,
        iterations=1,
    )
    # node 1's gadget: its Port_1 edge goes to the broken gadget 0
    comp_of_node1 = decomposition.component_of_node[
        padded.padded_node(1, gadgets[1].center)
    ]
    virtual = decomposition.virtual
    a = virtual.virtual_of_component[comp_of_node1]
    alpha = virtual.alpha[a]
    rows = []
    for i in (1, 2, 3):
        port_node = padded.padded_node(1, gadgets[1].ports[i - 1])
        status = decomposition.port_status.get(port_node, "-")
        mapped = alpha.index(i) + 1 if i in alpha else "invalid"
        rows.append([f"Port_{i}", status, mapped])
    report(
        render_table(
            ["port", "status", "alpha maps to"],
            rows,
            title="E10  Figure 4: port mapping around an invalid neighbor",
        )
    )
    assert decomposition.port_status[
        padded.padded_node(1, gadgets[1].ports[0])
    ] == PORT_ERR1
    assert alpha == [2]
    # note: Port_3 of a degree-2 base node has no port edge at all


def test_figures_5_6_gadget_metrics(benchmark):
    family = LogGadgetFamily(3)
    rows = []
    for height in (2, 4, 6, 8):
        built = build_gadget(3, height)
        dist = bfs_distances(built.graph, built.ports[0])
        port_dist = dist[built.ports[1]]
        rows.append(
            [
                height,
                built.num_nodes,
                gadget_size(3, height),
                diameter(built.graph),
                port_dist,
                2 * height,
            ]
        )
    report(
        render_table(
            ["height", "nodes", "formula", "diameter", "port dist", "2h"],
            rows,
            title="E11  Figures 5/6: gadget structure (sizes and distances)",
        )
    )
    for row in rows:
        assert row[1] == row[2]
        assert row[4] == row[5]
    benchmark(lambda: build_gadget(3, 6))


def test_figures_7_8_ne_proofs(benchmark):
    rows = []
    for name in ("color-clash", "swapped-children", "dropped-horizontal"):
        built = build_gadget(3, 4)
        corruption = corrupt(built, name)
        scope = GadgetScope(corruption.graph, corruption.inputs)
        component = sorted(corruption.graph.nodes())
        prover = run_prover(scope, component, 3, corruption.graph.num_nodes)
        node_out, half_out = compile_ne_proof(scope, component, prover.outputs)
        violations = verify_ne_proof(scope, component, node_out, half_out)
        witnesses = sum(1 for o in node_out.values() if o.dup_color is not None)
        chains = len({t.color for o in node_out.values() for t in o.tokens})
        rows.append(
            [
                name,
                witnesses,
                chains,
                "accepted" if not violations else "REJECTED",
            ]
        )
        assert not violations
    report(
        render_table(
            ["corruption", "Fig.7 witnesses", "Fig.8 chains", "ne-verdict"],
            rows,
            title=(
                "E12  Figures 7/8: node-edge-checkable proofs "
                "(duplicate colors and A-E chains)"
            ),
        )
    )
    built = build_gadget(3, 4)
    corruption = corrupt(built, "color-clash")
    scope = GadgetScope(corruption.graph, corruption.inputs)
    component = sorted(corruption.graph.nodes())
    prover = run_prover(scope, component, 3, corruption.graph.num_nodes)
    benchmark(lambda: compile_ne_proof(scope, component, prover.outputs))
