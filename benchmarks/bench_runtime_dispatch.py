"""E10 — runtime dispatch overhead: registry vs direct solver calls.

The runtime's promise is that the registry-driven path
(``Runtime.solve``: catalog lookup, factory instantiation, adapter
dispatch) costs nothing measurable on top of calling the solver
directly.  This bench times both paths on identical prebuilt instances
and asserts the relative overhead stays under 5% — instance building
and verification are excluded from both sides, so the comparison
isolates exactly the dispatch machinery the registry added.

Emits ``benchmarks/BENCH_runtime.json`` via the shared ``report_json``
hook for cross-PR tracking.
"""

from __future__ import annotations

import time

from benchmarks.conftest import report, report_json
from repro.analysis import render_table
from repro.runtime import Runtime, registry

# (solver, family, n): two real workloads and a near-trivial solver —
# the cheap case is where fixed dispatch costs would show up.
CASES = [
    ("sinkless-det", "cubic", 256),
    ("mis-color-classes", "cubic", 256),
    ("constant", "cycle", 256),
]
# Each timing window targets this much wall-clock so cheap solvers get
# enough calls for a stable per-call figure.
WINDOW_S = 0.25


def _calibrate(fn) -> int:
    """Loop count putting one timing window at ~WINDOW_S seconds."""
    start = time.perf_counter()
    fn()
    est = max(time.perf_counter() - start, 1e-7)
    return max(5, min(10_000, int(WINDOW_S / est)))


def _interleaved_best(loops: int, fn_a, fn_b) -> tuple[float, float]:
    """Best-of-5 per-call times for two functions, windows interleaved.

    Alternating the timing windows makes slow allocator/GC drift over
    the run hit both paths equally instead of being attributed to
    whichever ran second.
    """
    best_a = best_b = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(loops):
            fn_a()
        best_a = min(best_a, (time.perf_counter() - start) / loops)
        start = time.perf_counter()
        for _ in range(loops):
            fn_b()
        best_b = min(best_b, (time.perf_counter() - start) / loops)
    return best_a, best_b


def test_runtime_dispatch_overhead():
    runtime = Runtime()
    rows = []
    payload = {}
    worst = 0.0
    for solver_name, family_name, n in CASES:
        instance = runtime.build_instance(family_name, n, seed=0)
        solver_factory = registry.solver(solver_name).factory

        def direct():
            solver_factory().solve(instance)

        def dispatched():
            runtime.solve(solver_name, instance)

        loops = _calibrate(direct)
        direct_s, dispatched_s = _interleaved_best(loops, direct, dispatched)
        overhead_pct = (dispatched_s - direct_s) / direct_s * 100
        worst = max(worst, overhead_pct)
        rows.append(
            [
                f"{solver_name}@{family_name}",
                n,
                round(direct_s * 1e6, 1),
                round(dispatched_s * 1e6, 1),
                f"{overhead_pct:+.2f}%",
            ]
        )
        payload[f"{solver_name}@{family_name}/n={n}"] = {
            "n": n,
            "loops": loops,
            "direct_us": direct_s * 1e6,
            "dispatched_us": dispatched_s * 1e6,
            "overhead_pct": overhead_pct,
        }

    report(
        render_table(
            ["case", "n", "direct us/call", "runtime us/call", "overhead"],
            rows,
            title=(
                "E10 registry dispatch overhead (Runtime.solve vs direct)\n"
                f"    worst case: {worst:+.2f}% (budget: < 5%)"
            ),
        )
    )
    report_json(
        "runtime_dispatch",
        {"cases": payload, "worst_overhead_pct": worst, "window_s": WINDOW_S},
        file="BENCH_runtime.json",
    )
    assert worst < 5.0, f"registry dispatch overhead {worst:.2f}% exceeds 5%"
