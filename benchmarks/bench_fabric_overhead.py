"""E13 — fabric bookkeeping overhead on the clean (no-failure) path.

Fault tolerance must be free when nothing fails.  The per-trial cost
the fabric adds to a shard run is the heartbeat emitter (a throttled
atomic file replace) plus an inert fault injector (one integer
increment); the per-shard cost is a handful of lease-board
transitions.  This bench gates the former — an instrumented
``run_shard`` must stay within 5% of the bare one on the same spec,
records asserted identical first — and reports the latter as a
per-transition microcost for the trajectory.

Emits ``benchmarks/BENCH_fabric.json`` via the shared ``report_json``
hook for cross-PR tracking.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from benchmarks.conftest import report, report_json
from repro.analysis import render_table
from repro.engine.cache import TrialCache
from repro.engine.fabric import BackoffPolicy, LeaseBoard
from repro.engine.faults import FaultInjector
from repro.engine.runner import plan_experiment, run_shard
from repro.engine.spec import ExperimentSpec
from repro.obs import HeartbeatEmitter
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref

QUICK = bool(os.environ.get("BENCH_QUICK"))
MAX_N = 512 if QUICK else 4096
REPEATS = 2 if QUICK else 5
# Quick mode shrinks the workload ~20x while fixed costs stay
# constant, so its gate only guards against gross regressions.
THRESHOLD_PCT = 25.0 if QUICK else 5.0
LEASE_SHARDS = 16
LEASE_ROUNDS = 20 if QUICK else 100


def _spec() -> ExperimentSpec:
    ns = []
    n = 64
    while n <= MAX_N:
        ns.append(n)
        n *= 2
    return ExperimentSpec(
        name="bench/degree-parity/parity@cycle",
        solver=solver_ref("parity"),
        generator=family_ref("cycle"),
        verifier=verifier_ref("degree-parity"),
        ns=tuple(ns),
        seeds=tuple(range(16 if QUICK else 24)),
    )


def _time_shard(spec, root, instrumented: bool) -> tuple[float, list]:
    """One shard run against a fresh isolation root, optionally with
    the exact bookkeeping the fabric wires in: heartbeat emission per
    record plus an armed-but-empty fault injector."""
    plan = plan_experiment(spec, num_shards=1)
    manifest = plan.manifest(0)
    cache = TrialCache(
        os.path.join(root, "shared"), isolation=os.path.join(root, "out")
    )
    on_record = None
    emitter = None
    if instrumented:
        emitter = HeartbeatEmitter(
            os.path.join(root, "hb.json"),
            0,
            total=len(manifest.trial_indices()),
        )
        injector = FaultInjector((), shard_index=0)
        emitter.start()

        def on_record(record):
            emitter.record()
            injector.on_trial()

    start = time.perf_counter()
    rep = run_shard(manifest, workers=1, cache=cache, on_record=on_record)
    if emitter is not None:
        emitter.done()
    return time.perf_counter() - start, rep.records


def _lease_microcost() -> float:
    """Mean microseconds per persisted lease-board transition."""
    tmp = tempfile.mkdtemp(prefix="bench-lease-")
    policy = BackoffPolicy()
    try:
        board = LeaseBoard.load_or_create(
            os.path.join(tmp, "leases.json"), "bench-key", LEASE_SHARDS
        )
        start = time.perf_counter()
        transitions = 0
        for _ in range(LEASE_ROUNDS):
            for shard in range(LEASE_SHARDS):
                board.acquire(shard, "bench", ttl=60.0)
                board.renew(shard, ttl=60.0)
                board.release(shard, "retry")
                transitions += 3
        elapsed = time.perf_counter() - start
        # Exercised but unused by the timing: the backoff math is pure
        # arithmetic, three orders of magnitude under one transition.
        policy.schedule()
        return elapsed / transitions * 1e6
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def test_fabric_clean_path_overhead():
    spec = _spec()
    trials = len(spec.ns) * len(spec.seeds)
    best_bare = best_instrumented = float("inf")
    for _ in range(REPEATS):
        tmp = tempfile.mkdtemp(prefix="bench-fabric-")
        try:
            bare_s, bare_records = _time_shard(
                spec, os.path.join(tmp, "bare"), instrumented=False
            )
            instr_s, instr_records = _time_shard(
                spec, os.path.join(tmp, "instr"), instrumented=True
            )
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        assert instr_records == bare_records
        best_bare = min(best_bare, bare_s)
        best_instrumented = min(best_instrumented, instr_s)
    overhead_pct = (best_instrumented - best_bare) / best_bare * 100
    lease_us = _lease_microcost()

    report(
        render_table(
            ["case", "trials", "ms"],
            [
                ["bare run_shard", trials, round(best_bare * 1000, 1)],
                [
                    "heartbeat + inert injector",
                    trials,
                    round(best_instrumented * 1000, 1),
                ],
            ],
            title=(
                "E13 fabric clean-path bookkeeping\n"
                f"    overhead: {overhead_pct:+.2f}% "
                f"(budget: < {THRESHOLD_PCT:.0f}%); lease transition: "
                f"{lease_us:.0f}us persisted"
            ),
        )
    )
    report_json(
        "fabric_overhead",
        {
            "trials": trials,
            "bare_ms": best_bare * 1000,
            "instrumented_ms": best_instrumented * 1000,
            "overhead_pct": overhead_pct,
            "lease_transition_us": lease_us,
            "max_n": MAX_N,
            "quick": QUICK,
        },
        file="BENCH_fabric.json",
    )
    assert overhead_pct < THRESHOLD_PCT, (
        f"fabric bookkeeping overhead {overhead_pct:.2f}% exceeds "
        f"{THRESHOLD_PCT:.0f}%"
    )
