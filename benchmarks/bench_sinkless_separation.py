"""E2 — the base separation (Figure 1's sinkless-orientation dot).

Regenerates the deterministic Theta(log n) vs randomized
Theta(log log n) series on random cubic instances and fits both
against the growth dictionary.

The series run on ``repro.engine``: both sweeps are declarative specs
dispatched to a worker pool, so the trials of one size grid run
concurrently instead of one at a time.  (No trial cache here — the
bench must measure real solves every run; caching itself is exercised
by ``bench_engine_scaling.py``.)
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.analysis import best_fit, ratio_series, render_table
from repro.engine import ExperimentSpec, run_experiment
from repro.generators.hard import cubic_instance
from repro.problems import DeterministicSinklessSolver, RandomizedSinklessSolver

NS = tuple(2**k for k in range(6, 14))
SEEDS = (0, 1)
WORKERS = 4


def _spec(name: str, solver: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        solver=solver,
        generator="repro.generators.hard:cubic_instance",
        verifier="repro.engine.experiments:verify_sinkless",
        ns=NS,
        seeds=SEEDS,
    )


def test_sinkless_separation_series(benchmark):
    det = run_experiment(
        _spec("sinkless/det", "repro.problems:DeterministicSinklessSolver"),
        workers=WORKERS,
    ).sweep
    rand = run_experiment(
        _spec("sinkless/rand", "repro.problems:RandomizedSinklessSolver"),
        workers=WORKERS,
    ).sweep
    det_fit = best_fit(det.ns(), det.means())
    rand_fit = best_fit(rand.ns(), rand.means())
    rows = [
        [n, d, r, round(ratio, 2)]
        for (n, d, r, (_n, ratio)) in zip(
            det.ns(),
            det.means(),
            rand.means(),
            ratio_series(det.ns(), det.means(), rand.means()),
        )
    ]
    report(
        render_table(
            ["n", "det rounds", "rand rounds", "D/R"],
            rows,
            title=(
                "E2  sinkless orientation: paper det Theta(log n) / rand "
                "Theta(log log n)\n"
                f"    measured det fit:  {det_fit}\n"
                f"    measured rand fit: {rand_fit}"
            ),
        )
    )
    # shape assertions: the separation must be visible
    assert det_fit.name in ("log", "log loglog")
    assert rand_fit.name in ("loglog", "log*", "1")
    assert det.means()[-1] / rand.means()[-1] >= 2.0

    instance = cubic_instance(1024, 0)
    benchmark(lambda: DeterministicSinklessSolver().solve(instance))


def test_randomized_solver_wallclock(benchmark):
    instance = cubic_instance(1024, 0)
    benchmark(lambda: RandomizedSinklessSolver().solve(instance))
