"""E12 — shard-native dispatch: plan/run/merge overhead vs a single run.

The shard layer's promise is that making the shard a first-class
object costs nothing when you don't distribute: planning the full
grid, executing K shards, and merging the shard reports must stay
within 5% of the plain single-host ``run_experiment`` on the same
spec.  Two scenarios are timed:

* **in-memory** — no cache anywhere; isolates pure pipeline overhead
  (plan construction, manifest slicing, report reduction).  This is
  the gated number: < 5%.
* **per-shard caches** — each shard writes a private isolation root
  which is then unioned into a shared root, vs a single run writing
  one cache directly.  The union is an extra full read+write pass over
  every record that a single run simply does not have, so this case is
  reported for the trajectory and held only to a loose sanity bound.

Both sides are asserted record-identical before any timing is
reported.  Emits ``benchmarks/BENCH_shard.json`` via the shared
``report_json`` hook for cross-PR tracking.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from benchmarks.conftest import report, report_json
from repro.analysis import render_table
from repro.engine.cache import TrialCache
from repro.engine.runner import (
    merge_shard_reports,
    plan_experiment,
    run_experiment,
    run_shard,
)
from repro.engine.spec import ExperimentSpec
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref

QUICK = bool(os.environ.get("BENCH_QUICK"))
MAX_N = 512 if QUICK else 4096
NUM_SHARDS = 4
REPEATS = 2 if QUICK else 5
# The 5% budget gates the in-memory pipeline.  Quick mode shrinks the
# workload ~20x while fixed costs stay constant, so its gates only
# guard against gross regressions; the cache+merge case always gets a
# loose bound, since the merge's extra disk pass rides on I/O noise.
PIPELINE_THRESHOLD_PCT = 25.0 if QUICK else 5.0
MERGE_THRESHOLD_PCT = 50.0 if QUICK else 20.0


def _spec() -> ExperimentSpec:
    ns = []
    n = 64
    while n <= MAX_N:
        ns.append(n)
        n *= 2
    return ExperimentSpec(
        name="bench/degree-parity/parity@cycle",
        solver=solver_ref("parity"),
        generator=family_ref("cycle"),
        verifier=verifier_ref("degree-parity"),
        ns=tuple(ns),
        seeds=tuple(range(16 if QUICK else 24)),
    )


def _time_single(spec, cache_root=None) -> tuple[float, list]:
    cache = TrialCache(cache_root) if cache_root else None
    start = time.perf_counter()
    rep = run_experiment(spec, workers=1, cache=cache)
    return time.perf_counter() - start, rep.records


def _time_sharded(spec, root=None) -> tuple[float, list]:
    """Plan, run all K shards serially, merge — one host, no cache or
    per-shard isolation roots unioned back into a shared root."""
    start = time.perf_counter()
    plan = plan_experiment(spec, num_shards=NUM_SHARDS)
    reports = []
    for manifest in plan.manifests():
        cache = None
        if root:
            cache = TrialCache(
                os.path.join(root, "shared"),
                isolation=os.path.join(root, f"shard-{manifest.shard_index}"),
            )
        reports.append(run_shard(manifest, workers=1, cache=cache))
    if root:
        shared = TrialCache(os.path.join(root, "shared"))
        for index in range(NUM_SHARDS):
            shared.merge(os.path.join(root, f"shard-{index}"))
    merged = merge_shard_reports(reports)
    return time.perf_counter() - start, merged.records


def test_shard_pipeline_overhead():
    spec = _spec()
    rows = []
    payload = {}
    overheads = {}
    for case in ("in-memory", "per-shard caches"):
        best_single = best_sharded = float("inf")
        for _ in range(REPEATS):
            if case == "in-memory":
                single_s, single_records = _time_single(spec)
                sharded_s, sharded_records = _time_sharded(spec)
            else:
                tmp = tempfile.mkdtemp(prefix="bench-shard-")
                try:
                    single_s, single_records = _time_single(
                        spec, os.path.join(tmp, "single")
                    )
                    sharded_s, sharded_records = _time_sharded(
                        spec, os.path.join(tmp, "sharded")
                    )
                finally:
                    shutil.rmtree(tmp, ignore_errors=True)
            assert sharded_records == single_records, case
            best_single = min(best_single, single_s)
            best_sharded = min(best_sharded, sharded_s)
        overhead_pct = (best_sharded - best_single) / best_single * 100
        overheads[case] = overhead_pct
        rows.append(
            [
                case,
                len(spec.ns) * len(spec.seeds),
                round(best_single * 1000, 1),
                round(best_sharded * 1000, 1),
                f"{overhead_pct:+.2f}%",
            ]
        )
        payload[case] = {
            "trials": len(spec.ns) * len(spec.seeds),
            "num_shards": NUM_SHARDS,
            "single_ms": best_single * 1000,
            "sharded_ms": best_sharded * 1000,
            "overhead_pct": overhead_pct,
        }

    pipeline = overheads["in-memory"]
    with_merge = overheads["per-shard caches"]
    report(
        render_table(
            ["case", "trials", "single ms", f"{NUM_SHARDS}-shard ms", "overhead"],
            rows,
            title=(
                "E12 shard pipeline overhead (plan + run-shard x"
                f"{NUM_SHARDS} + merge vs run_experiment)\n"
                f"    pipeline: {pipeline:+.2f}% "
                f"(budget: < {PIPELINE_THRESHOLD_PCT:.0f}%); with cache "
                f"union: {with_merge:+.2f}% (< {MERGE_THRESHOLD_PCT:.0f}%)"
            ),
        )
    )
    report_json(
        "sharded_dispatch",
        {
            "cases": payload,
            "pipeline_overhead_pct": pipeline,
            "cache_union_overhead_pct": with_merge,
            "max_n": MAX_N,
            "quick": QUICK,
        },
        file="BENCH_shard.json",
    )
    assert pipeline < PIPELINE_THRESHOLD_PCT, (
        f"shard pipeline overhead {pipeline:.2f}% exceeds "
        f"{PIPELINE_THRESHOLD_PCT:.0f}%"
    )
    assert with_merge < MERGE_THRESHOLD_PCT, (
        f"cache-union overhead {with_merge:.2f}% exceeds "
        f"{MERGE_THRESHOLD_PCT:.0f}%"
    )
