"""E13 — substrate microbenchmarks and the batched-engine speedup gate.

The original microbenchmarks time the LOCAL-model machinery itself
(view gathering, BFS, the object round loop, the verifier).  PR 10
adds the tentpole gate: solvers that ship an
:class:`repro.local.simulator.ArrayProgram` twin must run >= 3x faster
through :func:`repro.kernels.engine.run_array_program` than through
the per-node object loop at n >= 8192, with bit-identical engine
results.  Everything machine-readable lands in
``benchmarks/BENCH_simulator.json`` via the shared ``report_json``
hook.
"""

from __future__ import annotations

import os
import random
import time

from benchmarks.conftest import report, report_json
from repro import kernels
from repro.analysis import render_table
from repro.generators import cubic_instance, cycle, random_regular
from repro.lcl import Labeling, verify
from repro.local import Instance, SyncEngine, ViewOracle, bfs_distances
from repro.local.flood import MinIdFloodNode
from repro.local.identifiers import sequential_ids
from repro.problems import SinklessOrientation, DeterministicSinklessSolver
from repro.problems.coloring import LinialColoringSolver

QUICK = bool(os.environ.get("BENCH_QUICK"))
#: The acceptance bar binds at n >= 8192; quick mode shrinks repeats,
#: not the instance — at this size the batched-vs-object ratio is
#: stable even on a noisy runner because both sides run back-to-back
#: in-process.
N = 8192
REPEATS = 2 if QUICK else 4
THRESHOLD = 3.0


def test_view_gathering(benchmark):
    graph = random_regular(2048, 3, random.Random(0))

    def gather():
        oracle = ViewOracle(graph)
        for v in range(0, 2048, 64):
            oracle.view(v, 8)
        return oracle.rounds()

    assert benchmark(gather) == 8


def test_bfs_full_graph(benchmark):
    graph = random_regular(4096, 3, random.Random(1))
    result = benchmark(lambda: bfs_distances(graph, 0))
    assert len(result) == 4096


def test_message_engine_flood(benchmark):
    from tests.test_views_simulator import _FloodNode

    graph = cycle(512)
    instance = Instance(graph, sequential_ids(512))

    def flood():
        return SyncEngine(instance, _FloodNode).run().rounds

    assert benchmark(flood) == 256


def test_verifier_throughput(benchmark):
    graph = random_regular(2048, 3, random.Random(2))
    instance = Instance.simple(graph)
    outputs = DeterministicSinklessSolver().solve(instance).outputs
    problem = SinklessOrientation().problem()

    def check():
        return verify(problem, graph, Labeling(graph), outputs).ok

    assert benchmark(check)

    # One timed pass per case for the machine-readable trajectory file
    # (pytest-benchmark stats are unavailable under --benchmark-disable).
    from tests.test_views_simulator import _FloodNode

    flood_graph = cycle(512)
    flood_instance = Instance(flood_graph, sequential_ids(512))
    start = time.perf_counter()
    SyncEngine(flood_instance, _FloodNode).run()
    flood_s = time.perf_counter() - start

    def gather_once() -> float:
        oracle = ViewOracle(random_regular(2048, 3, random.Random(0)))
        start = time.perf_counter()
        for v in range(0, 2048, 64):
            oracle.view(v, 8)
        return time.perf_counter() - start

    report_json(
        "simulator_throughput",
        {
            "engine_flood_512_cycle_s": flood_s,
            "view_gathering_2048_cubic_r8_s": gather_once(),
            # Reference point from the commit preceding the flat-core PR.
            # Only comparable to runs on the same machine — don't divide
            # numbers measured on a different host by these.
            "pre_incidence_core_baseline": {
                "engine_flood_512_cycle_s": 1.564,
                "view_gathering_2048_cubic_r8_s": 0.0226,
                "machine": "x86_64 linux, PR-2 development host",
            },
        },
        file="BENCH_simulator.json",
    )
    report(
        render_table(
            ["component", "instance"],
            [
                ["view oracle", "2048-node cubic, radius 8 views"],
                ["bfs", "4096-node cubic, full sweep"],
                ["sync engine", "512-cycle flooding (256 rounds)"],
                ["ne-LCL verifier", "2048-node cubic, sinkless outputs"],
            ],
            title="E13  substrate microbenchmarks (timings in the table above)",
        )
    )


def _best(fn):
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_engine_speedup():
    """PR 10 gate: array programs >= 3x over the object loop at n >= 8192.

    Both node programs below ship batched twins; the object loop is the
    oracle, so besides the speedup bar every run asserts bit-identical
    engine results (per-node outputs, round counts, halting rounds, and
    the full round trace).
    """
    instance = cubic_instance(N, seed=3)
    n = instance.graph.num_nodes
    rows = []
    payload = {}

    def flood_run():
        result = SyncEngine(instance, MinIdFloodNode).run(max_rounds=10_000)
        return (result.results, result.rounds, result.halt_rounds, result.trace)

    def linial_run():
        result = LinialColoringSolver(num_colors=4).solve(instance)
        outputs = [result.outputs.node(v) for v in instance.graph.nodes()]
        return (outputs, result.rounds, list(result.node_radius), result.extras)

    speedups = {}
    for label, run in (("min_id_flood", flood_run), ("linial_4_coloring", linial_run)):
        with kernels.active("object"):
            object_s, expected = _best(run)
        with kernels.active("vector"):
            vector_s, got = _best(run)
        assert got == expected, f"{label}: batched path diverged from object"
        speedup = object_s / vector_s
        speedups[label] = speedup
        rows.append(
            [
                label,
                n,
                round(object_s * 1e3, 2),
                round(vector_s * 1e3, 2),
                f"{speedup:.2f}x",
            ]
        )
        payload[label] = {
            "n": n,
            "object_ms": object_s * 1e3,
            "array_ms": vector_s * 1e3,
            "speedup": speedup,
            "gated": True,
        }

    report(
        render_table(
            ["node program", "n", "object ms", "array ms", "speedup"],
            rows,
            title=(
                "E13  batched array programs vs the object round loop "
                f"(results bit-identical; bar >= {THRESHOLD}x)"
            ),
        )
    )
    report_json(
        "batched_engine",
        {
            "cases": payload,
            "n": n,
            "quick": QUICK,
            "threshold": THRESHOLD,
        },
        file="BENCH_simulator.json",
    )
    for label, speedup in speedups.items():
        assert speedup >= THRESHOLD, (
            f"{label}: batched speedup {speedup:.2f}x below {THRESHOLD}x "
            f"at n={n}"
        )
