"""E13 — substrate microbenchmarks: the LOCAL-model machinery itself."""

from __future__ import annotations

import random
import time

from benchmarks.conftest import report, report_json
from repro.analysis import render_table
from repro.generators import cycle, random_regular
from repro.lcl import Labeling, verify
from repro.local import Instance, SyncEngine, ViewOracle, bfs_distances
from repro.local.identifiers import sequential_ids
from repro.problems import SinklessOrientation, DeterministicSinklessSolver


def test_view_gathering(benchmark):
    graph = random_regular(2048, 3, random.Random(0))

    def gather():
        oracle = ViewOracle(graph)
        for v in range(0, 2048, 64):
            oracle.view(v, 8)
        return oracle.rounds()

    assert benchmark(gather) == 8


def test_bfs_full_graph(benchmark):
    graph = random_regular(4096, 3, random.Random(1))
    result = benchmark(lambda: bfs_distances(graph, 0))
    assert len(result) == 4096


def test_message_engine_flood(benchmark):
    from tests.test_views_simulator import _FloodNode

    graph = cycle(512)
    instance = Instance(graph, sequential_ids(512))

    def flood():
        return SyncEngine(instance, _FloodNode).run().rounds

    assert benchmark(flood) == 256


def test_verifier_throughput(benchmark):
    graph = random_regular(2048, 3, random.Random(2))
    instance = Instance.simple(graph)
    outputs = DeterministicSinklessSolver().solve(instance).outputs
    problem = SinklessOrientation().problem()

    def check():
        return verify(problem, graph, Labeling(graph), outputs).ok

    assert benchmark(check)

    # One timed pass per case for the machine-readable trajectory file
    # (pytest-benchmark stats are unavailable under --benchmark-disable).
    from tests.test_views_simulator import _FloodNode

    flood_graph = cycle(512)
    flood_instance = Instance(flood_graph, sequential_ids(512))
    start = time.perf_counter()
    SyncEngine(flood_instance, _FloodNode).run()
    flood_s = time.perf_counter() - start

    def gather_once() -> float:
        oracle = ViewOracle(random_regular(2048, 3, random.Random(0)))
        start = time.perf_counter()
        for v in range(0, 2048, 64):
            oracle.view(v, 8)
        return time.perf_counter() - start

    report_json(
        "simulator_throughput",
        {
            "engine_flood_512_cycle_s": flood_s,
            "view_gathering_2048_cubic_r8_s": gather_once(),
            # Reference point from the commit preceding the flat-core PR.
            # Only comparable to runs on the same machine — don't divide
            # numbers measured on a different host by these.
            "pre_incidence_core_baseline": {
                "engine_flood_512_cycle_s": 1.564,
                "view_gathering_2048_cubic_r8_s": 0.0226,
                "machine": "x86_64 linux, PR-2 development host",
            },
        },
    )
    report(
        render_table(
            ["component", "instance"],
            [
                ["view oracle", "2048-node cubic, radius 8 views"],
                ["bfs", "4096-node cubic, full sweep"],
                ["sync engine", "512-cycle flooding (256 rounds)"],
                ["ne-LCL verifier", "2048-node cubic, sinkless outputs"],
            ],
            title="E13  substrate microbenchmarks (timings in the table above)",
        )
    )
