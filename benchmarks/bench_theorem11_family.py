"""E4/E5 — Theorem 11: the Pi_i family and the conjecture refutation.

Regenerates, for Pi_1 and Pi_2 (and a Pi_3 spot-check), the measured
deterministic and randomized round series on Lemma 5 hard instances,
the growth fits, and the D(n)/R(n) ratio series that refutes the
"exponential or nothing" conjecture: the ratio grows, but slowly
(Theta(log n / log log n)), instead of being 1 or exponential.
"""

from __future__ import annotations

from benchmarks.conftest import report
from repro.analysis import fit_growth, render_table, run_sweep
from repro.core.theory import gap_ratio_prediction
from repro.generators.hard import padded_hard_instance

PI1_NS = [2**k for k in range(6, 14)]
PI2_NS = [300, 700, 1500, 3300, 7500, 16000, 32000]
POLYLOG = ["1", "log*", "loglog", "log", "log loglog", "log^2", "log^2 loglog"]


def _verify_level(level):
    def check(instance, result):
        verdict = level.verify(instance.graph, instance.inputs, result.outputs)
        assert verdict.ok, verdict.summary()

    return check


def _series(level, ns, seeds=(0, 1)):
    factory = lambda n, s: padded_hard_instance(level, n, s)
    det = run_sweep(level.det_solver, factory, ns, seeds, _verify_level(level))
    rand = run_sweep(level.rand_solver, factory, ns, seeds, _verify_level(level))
    return det, rand


def test_family_separation_table(family_levels, benchmark):
    pi1, pi2, pi3 = family_levels
    det1, rand1 = _series(pi1, PI1_NS)
    det2, rand2 = _series(pi2, PI2_NS)

    rows = []
    for n, d, r in zip(det1.ns(), det1.means(), rand1.means()):
        rows.append(["Pi_1", n, d, r, round(d / r, 2), round(gap_ratio_prediction(n), 2)])
    for n, d, r in zip(det2.ns(), det2.means(), rand2.means()):
        rows.append(["Pi_2", n, d, r, round(d / r, 2), round(gap_ratio_prediction(n), 2)])
    fits = {
        "Pi_1 det": fit_growth(det1.ns(), det1.means(), POLYLOG)[0],
        "Pi_1 rand": fit_growth(rand1.ns(), rand1.means(), POLYLOG)[0],
        "Pi_2 det": fit_growth(det2.ns(), det2.means(), POLYLOG)[0],
        "Pi_2 rand": fit_growth(rand2.ns(), rand2.means(), POLYLOG)[0],
    }
    fit_lines = "\n".join(f"    {k}: {v}" for k, v in fits.items())
    report(
        render_table(
            ["level", "n", "det rounds", "rand rounds", "D/R", "log/loglog"],
            rows,
            title=(
                "E4/E5  Theorem 11: Pi_i with det Theta(log^i n), rand "
                "Theta(log^(i-1) n loglog n)\n" + fit_lines
            ),
        )
    )
    # Pi_1: clean separation
    assert fits["Pi_1 det"].name in ("log", "log loglog")
    assert fits["Pi_1 rand"].name in ("loglog", "log*", "1")
    # Pi_2: both are polylog but the det series grows strictly faster;
    # the D/R ratio must grow along the sweep (the subexponential gap)
    ratio2 = [d / r for d, r in zip(det2.means(), rand2.means())]
    assert ratio2[-1] > ratio2[0] >= 0.99
    assert det2.means()[-1] > det2.means()[0]
    # Pi_2's measured det dominates Pi_1's at every common scale
    assert det2.means()[-1] > det1.means()[-1]

    instance = padded_hard_instance(family_levels[1], 2000, 0)
    benchmark(lambda: family_levels[1].det_solver.solve(instance))


def test_pi3_spot_check(family_levels, benchmark):
    pi3 = family_levels[2]
    instance = padded_hard_instance(pi3, 30_000, 0)
    det = benchmark.pedantic(
        lambda: pi3.det_solver.solve(instance), rounds=1, iterations=1
    )
    rand = pi3.rand_solver.solve(instance)
    verdict = pi3.verify(instance.graph, instance.inputs, det.outputs)
    assert verdict.ok, verdict.summary()
    verdict = pi3.verify(instance.graph, instance.inputs, rand.outputs)
    assert verdict.ok, verdict.summary()
    report(
        render_table(
            ["level", "n", "det rounds", "rand rounds"],
            [["Pi_3", instance.graph.num_nodes, det.rounds, rand.rounds]],
            title="E5  Pi_3 spot check (doubly padded sinkless orientation)",
        )
    )
    assert det.rounds >= rand.rounds
