"""Unit and property tests for the port-numbered multigraph core."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.local import GraphBuilder, HalfEdge, PortGraph
from tests.conftest import build_multigraph, multigraphs


class TestConstruction:
    def test_empty_graph(self):
        graph = PortGraph(0, [])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert graph.max_degree == 0

    def test_single_edge(self):
        graph = PortGraph.from_edge_list(2, [(0, 1)])
        assert graph.degree(0) == 1
        assert graph.degree(1) == 1
        assert graph.endpoint(0, 0) == HalfEdge(1, 0)
        assert graph.endpoint(1, 0) == HalfEdge(0, 0)

    def test_self_loop_uses_two_ports(self):
        builder = GraphBuilder(1)
        builder.add_edge(0, 0)
        graph = builder.build()
        assert graph.degree(0) == 2
        assert graph.endpoint(0, 0) == HalfEdge(0, 1)
        assert graph.endpoint(0, 1) == HalfEdge(0, 0)
        assert graph.has_self_loop()
        assert not graph.is_simple()

    def test_parallel_edges(self):
        graph = PortGraph.from_edge_list(2, [(0, 1), (0, 1)])
        assert graph.degree(0) == 2
        assert graph.has_parallel_edges()
        assert not graph.has_self_loop()
        assert {graph.neighbor(0, 0), graph.neighbor(0, 1)} == {1}

    def test_port_order_matches_insertion(self):
        graph = PortGraph.from_edge_list(4, [(0, 1), (0, 2), (0, 3)])
        assert [graph.neighbor(0, p) for p in range(3)] == [1, 2, 3]

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError):
            PortGraph(1, [(HalfEdge(0, 0), HalfEdge(1, 0))])

    def test_rejects_duplicate_port(self):
        with pytest.raises(ValueError):
            PortGraph(2, [(HalfEdge(0, 0), HalfEdge(1, 0)), (HalfEdge(0, 0), HalfEdge(1, 1))])

    def test_rejects_non_contiguous_ports(self):
        with pytest.raises(ValueError):
            PortGraph(2, [(HalfEdge(0, 1), HalfEdge(1, 0))])

    def test_builder_explicit_ports(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 1, u_port=1, v_port=0)
        builder.add_edge(0, 1, u_port=0, v_port=1)
        graph = builder.build()
        assert graph.neighbor(0, 0) == 1
        assert graph.neighbor(0, 1) == 1

    def test_builder_rejects_port_reuse(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 1, u_port=0, v_port=0)
        with pytest.raises(ValueError):
            builder.add_edge(0, 1, u_port=0, v_port=1)

    def test_builder_rejects_loop_on_same_port(self):
        builder = GraphBuilder(1)
        with pytest.raises(ValueError):
            builder.add_edge(0, 0, u_port=0, v_port=0)

    def test_add_nodes_returns_range(self):
        builder = GraphBuilder()
        assert builder.add_nodes(3) == range(0, 3)
        assert builder.add_node() == 3


class TestQueries:
    def test_edge_other_side(self):
        graph = PortGraph.from_edge_list(2, [(0, 1)])
        edge = graph.edge(0)
        assert edge.other_side(edge.a) == edge.b
        assert edge.other_side(edge.b) == edge.a
        with pytest.raises(ValueError):
            edge.other_side(HalfEdge(5, 5))

    def test_half_edges_enumeration(self):
        graph = PortGraph.from_edge_list(3, [(0, 1), (1, 2)])
        halves = set(graph.half_edges())
        assert len(halves) == 4
        assert HalfEdge(1, 0) in halves and HalfEdge(1, 1) in halves

    def test_incident_edges_loops_twice(self):
        graph = build_multigraph(1, [(0, 0)])
        incident = list(graph.incident_edges(0))
        assert len(incident) == 2
        assert incident[0].eid == incident[1].eid

    def test_half_edge_of_edge(self):
        graph = PortGraph.from_edge_list(2, [(0, 1)])
        assert graph.half_edge_of_edge(0, 0) == HalfEdge(0, 0)
        assert graph.half_edge_of_edge(1, 0) == HalfEdge(1, 0)
        with pytest.raises(ValueError):
            graph.half_edge_of_edge(5, 0)

    def test_min_max_degree(self):
        graph = PortGraph.from_edge_list(3, [(0, 1), (0, 2)])
        assert graph.max_degree == 2
        assert graph.min_degree == 1

    def test_min_degree_call_form_deprecated(self):
        graph = PortGraph.from_edge_list(3, [(0, 1), (0, 2)])
        with pytest.warns(DeprecationWarning):
            assert graph.min_degree() == 1

    def test_degree_caches_on_empty_graph(self):
        graph = PortGraph(0, [])
        assert graph.max_degree == 0
        assert graph.min_degree == 0


class TestProperties:
    @given(multigraphs())
    @settings(max_examples=60, deadline=None)
    def test_endpoint_is_involution(self, graph: PortGraph):
        for v in graph.nodes():
            for port in range(graph.degree(v)):
                across = graph.endpoint(v, port)
                back = graph.endpoint(across.node, across.port)
                assert back == HalfEdge(v, port)

    @given(multigraphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, graph: PortGraph):
        assert sum(graph.degree(v) for v in graph.nodes()) == 2 * graph.num_edges

    @given(multigraphs())
    @settings(max_examples=60, deadline=None)
    def test_half_edge_count(self, graph: PortGraph):
        assert len(list(graph.half_edges())) == 2 * graph.num_edges

    @given(multigraphs())
    @settings(max_examples=60, deadline=None)
    def test_neighbors_in_port_order(self, graph: PortGraph):
        for v in graph.nodes():
            listed = list(graph.neighbors(v))
            direct = [graph.endpoint(v, p).node for p in range(graph.degree(v))]
            assert listed == direct
