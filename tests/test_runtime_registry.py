"""Conformance suite for the runtime registry and unified driver.

The heart of it is one parametrized test that pushes *every* sound
(problem, solver, family) triple through ``Runtime.run`` at small
sizes and demands a verifier-accepted output — so any future
registration is correctness-tested for free, and an unsound soundness
declaration fails loudly here rather than polluting the landscape.
"""

from __future__ import annotations

import pytest

from repro.engine.spec import resolve_ref
from repro.runtime import Runtime, registry
from repro.runtime.driver import dispatch_solver
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref

RUNTIME = Runtime()
TRIPLES = registry.sound_triples()
TRIPLE_IDS = [f"{s.name}@{f.name}" for _p, s, f in TRIPLES]
UNSOUND = registry.unsound_triples()
UNSOUND_IDS = [f"{s.name}@{f.name}" for _p, s, f in UNSOUND]


class TestCatalogs:
    def test_catalog_minimums(self):
        """The landscape the paper draws needs this much breadth."""
        assert len(registry.problems()) >= 8
        assert len(registry.solvers()) >= 10
        assert len(registry.families()) >= 6
        assert len(TRIPLES) >= 20

    def test_every_solver_names_a_registered_problem(self):
        problems = registry.problems()
        for info in registry.solvers().values():
            assert info.problem in problems, info.name

    def test_every_declared_family_exists(self):
        families = registry.families()
        for info in registry.solvers().values():
            for family in info.families:
                assert family in families, (info.name, family)

    def test_every_problem_has_a_solver(self):
        for name in registry.problems():
            assert registry.solvers_for(name), f"problem {name} has no solver"

    def test_unknown_names_raise_with_suggestions(self):
        with pytest.raises(KeyError, match="unknown solver"):
            registry.solver("nope")
        with pytest.raises(KeyError, match="unknown family"):
            registry.family("nope")
        with pytest.raises(KeyError, match="unknown problem"):
            registry.problem("nope")

    def test_duplicate_registration_with_different_settings_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register_family("cubic", description="something else")(
                lambda n, seed: None
            )

    def test_entrypoint_refs_resolve(self):
        """Every registry name round-trips through spec references."""
        for name, info in registry.solvers().items():
            assert resolve_ref(solver_ref(name)) is info.factory
        for name, info in registry.families().items():
            assert resolve_ref(family_ref(name)) is info.builder
        for name in registry.problems():
            assert callable(resolve_ref(verifier_ref(name)))


class TestConformance:
    @pytest.mark.parametrize(
        ("problem", "solver", "family"),
        [(p.name, s.name, f.name) for p, s, f in TRIPLES],
        ids=TRIPLE_IDS,
    )
    def test_sound_triple_verifies(self, problem, solver, family):
        """Every registered combination produces accepted outputs."""
        family_info = registry.family(family)
        for n in family_info.test_sizes:
            record = RUNTIME.run(problem, solver, family, n, seed=1)
            assert record.verified, record.summary()
            assert record.rounds == max(record.node_radius, default=0)
            assert len(record.node_radius) == record.actual_n
            assert record.wall_time >= 0

    def test_unsound_combinations_rejected(self):
        with pytest.raises(ValueError, match="not declared sound"):
            RUNTIME.run("3-coloring-cycles", "cycle-3-coloring", "cubic", 16)
        with pytest.raises(ValueError, match="solves"):
            RUNTIME.run("mis", "cycle-3-coloring", "cycle", 8)

    def test_check_sound_false_probes_anyway(self):
        """Unsound probes run; the verifier reports the truth."""
        record = RUNTIME.run(
            "degree-parity", "constant", "cycle", 6, check_sound=False
        )
        # the constant solver outputs "ok", not parities
        assert record.verified is False

    def test_verify_false_skips_verification(self):
        record = RUNTIME.run("mis", "mis-luby", "cycle", 8, verify=False)
        assert record.verified is None


class TestUnsoundProbes:
    """The declared negative triples: the verifier must reject each."""

    def test_probe_catalog_covers_every_corruption(self):
        from repro.gadgets.corruptions import CORRUPTIONS

        probed = {f.name for _p, _s, f in UNSOUND}
        assert {f"corrupt-{name}" for name in CORRUPTIONS} <= probed

    @pytest.mark.parametrize(
        ("problem", "solver", "family"),
        [(p.name, s.name, f.name) for p, s, f in UNSOUND],
        ids=UNSOUND_IDS,
    )
    def test_unsound_triple_is_rejected(self, problem, solver, family):
        family_info = registry.family(family)
        for n in family_info.test_sizes:
            record = RUNTIME.run(
                problem, solver, family, n, seed=1, check_sound=False
            )
            assert record.verified is False, record.summary()

    def test_sound_check_still_rejects_probes(self):
        with pytest.raises(ValueError, match="not declared sound"):
            RUNTIME.run("gadget-proof", "gadget-prover", "corrupt-color-clash", 4)

    def test_overlapping_declarations_rejected(self):
        with pytest.raises(ValueError, match="both sound and unsound"):
            registry.register_solver(
                "bad-solver",
                problem="gadget-proof",
                families=("gadget",),
                unsound_families=("gadget",),
            )


class TestAdapter:
    def test_all_three_execution_paths_agree_on_parity(self):
        """direct / SyncEngine / ViewOracle produce identical labelings."""
        instance = RUNTIME.build_instance("tree", 15, seed=3)
        outputs = []
        for solver in ("parity", "parity-sync", "parity-views"):
            result = RUNTIME.solve(solver, instance)
            outputs.append(
                [result.outputs.node(v) for v in instance.graph.nodes()]
            )
            assert result.rounds == 0
        assert outputs[0] == outputs[1] == outputs[2]

    def test_dispatch_rejects_alien_objects(self):
        instance = RUNTIME.build_instance("cycle", 5)
        with pytest.raises(TypeError, match="adapter protocols"):
            dispatch_solver(object(), instance)

    def test_family_guarantees_hold_on_samples(self):
        """Registered structural guarantees are true of built instances."""
        for info in registry.families().values():
            instance = info.builder(info.test_sizes[0], 0)
            graph = instance.graph
            degrees = [graph.degree(v) for v in graph.nodes()]
            if info.max_degree is not None:
                assert max(degrees) <= info.max_degree, info.name
            if info.min_degree is not None:
                assert min(degrees) >= info.min_degree, info.name
            if info.girth_at_least is not None:
                from repro.local.distances import girth

                assert girth(graph) >= info.girth_at_least, info.name


class TestEngineIntegration:
    def test_landscape_is_the_full_cross_product(self):
        """One spec per sound triple that fits the budget, by reference."""
        from repro.engine.experiments import build_experiment

        specs = build_experiment("landscape", max_n=128)
        named = {spec.name for spec in specs}
        expected = {
            f"landscape/{p.name}/{s.name}@{f.name}"
            for p, s, f in TRIPLES
            if f.sweep_sizes(128)
        }
        assert named == expected
        for spec in specs:
            assert spec.solver.startswith("repro.runtime.entrypoints:solver__")
            assert spec.generator.startswith("repro.runtime.entrypoints:family__")
            assert spec.verifier.startswith("repro.runtime.entrypoints:verifier__")

    def test_registry_spec_runs_through_engine(self):
        """A registry-generated spec executes on the engine runner."""
        from repro.engine.experiments import build_experiment
        from repro.engine.runner import run_experiment

        spec = next(
            s
            for s in build_experiment("landscape", max_n=64, seed_count=1)
            if "mis-color-classes@cycle" in s.name
        )
        report = run_experiment(spec, workers=1, cache=None)
        assert report.trials_total == len(spec.ns)
        assert all(p.trials >= 1 for p in report.sweep.points)

    def test_cli_list_enumerates_catalogs(self, capsys):
        from repro.engine.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert f"problems ({len(registry.problems())})" in out
        assert f"solvers ({len(registry.solvers())})" in out
        assert "mis-luby" in out and "cubic" in out

    def test_cli_describe(self, capsys):
        from repro.engine.cli import main

        assert main(["describe", "sinkless-det"]) == 0
        out = capsys.readouterr().out
        assert "solves sinkless-orientation" in out
        assert main(["describe", "nope"]) == 2

    def test_paper_placement_reads_registry(self):
        from repro.engine.experiments import paper_placement

        det, rand = paper_placement("landscape/sinkless-orientation/x@cubic")
        assert det == "Theta(log n)" and rand == "Theta(loglog n)"
        assert paper_placement("weird") == ("-", "-")
