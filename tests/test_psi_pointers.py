"""Unit tests for each Psi pointer-chain constraint (Section 4.4, 3a-3f)."""

from __future__ import annotations

import pytest

from repro.gadgets import (
    ERROR,
    GADOK,
    GadgetScope,
    Pointer,
    build_gadget,
    corrupt,
    run_prover,
    verify_psi,
)
from repro.gadgets.labels import Down, LCHILD, LEFT, PARENT, RCHILD, RIGHT, UP


@pytest.fixture(scope="module")
def broken():
    """A corrupted gadget with a Psi-consistent proof to mutate."""
    built = build_gadget(3, 4)
    corruption = corrupt(built, "swapped-children")
    scope = GadgetScope(corruption.graph, corruption.inputs)
    component = sorted(corruption.graph.nodes())
    prover = run_prover(scope, component, 3, corruption.graph.num_nodes)
    assert verify_psi(scope, component, prover.outputs, 3) == []
    return scope, component, prover.outputs


def _find(scope, component, outputs, kind):
    for v in component:
        label = outputs[v]
        if isinstance(label, Pointer) and label.kind == kind:
            return v
    return None


class TestChainBreaks:
    @pytest.mark.parametrize("kind", [RIGHT, LEFT, PARENT, RCHILD])
    def test_breaking_a_chain_rejected(self, broken, kind):
        scope, component, outputs = broken
        v = _find(scope, component, outputs, kind)
        if v is None:
            pytest.skip(f"no {kind} pointer in this proof")
        target = scope.follow(v, kind)
        assert target is not None
        mutated = dict(outputs)
        mutated[target] = GADOK
        assert verify_psi(scope, component, mutated, 3)

    def test_up_pointer_needs_down_continuation(self, broken):
        scope, component, outputs = broken
        v = _find(scope, component, outputs, UP)
        if v is None:
            pytest.skip("no Up pointer in this proof")
        center = scope.follow(v, UP)
        mutated = dict(outputs)
        mutated[center] = GADOK
        assert verify_psi(scope, component, mutated, 3)

    def test_up_pointer_rejects_own_subgadget(self, broken):
        """The center may not point back into the Up-pointer's gadget."""
        scope, component, outputs = broken
        v = _find(scope, component, outputs, UP)
        if v is None:
            pytest.skip("no Up pointer in this proof")
        center = scope.follow(v, UP)
        own_index = scope.role(v).i
        mutated = dict(outputs)
        mutated[center] = Pointer(Down(own_index))
        violations = verify_psi(scope, component, mutated, 3)
        assert violations  # either the Up rule or the Down chain breaks


class TestOutputDiscipline:
    def test_error_without_violation_rejected(self, broken):
        scope, component, outputs = broken
        sound = next(v for v in component if outputs[v] != ERROR)
        mutated = dict(outputs)
        mutated[sound] = ERROR
        assert verify_psi(scope, component, mutated, 3)

    def test_violation_without_error_rejected(self, broken):
        scope, component, outputs = broken
        flagged = next(v for v in component if outputs[v] == ERROR)
        mutated = dict(outputs)
        mutated[flagged] = Pointer(PARENT)
        assert verify_psi(scope, component, mutated, 3)

    def test_alien_label_rejected(self, broken):
        scope, component, outputs = broken
        mutated = dict(outputs)
        mutated[component[0]] = "wat"
        assert verify_psi(scope, component, mutated, 3)

    def test_out_of_range_down_rejected(self, broken):
        scope, component, outputs = broken
        mutated = dict(outputs)
        mutated[component[0]] = Pointer(Down(99))
        assert verify_psi(scope, component, mutated, 3)

    def test_pointer_without_edge_rejected(self):
        built = build_gadget(2, 3)
        corruption = corrupt(built, "wrong-index")
        scope = GadgetScope(corruption.graph, corruption.inputs)
        component = sorted(corruption.graph.nodes())
        prover = run_prover(scope, component, 2, corruption.graph.num_nodes)
        mutated = dict(prover.outputs)
        # the center has no Right edge; force a Right pointer there
        center = next(v for v in component if scope.role(v) == "Center")
        if mutated[center] == ERROR:
            pytest.skip("center is an error node in this corruption")
        mutated[center] = Pointer(RIGHT)
        assert verify_psi(scope, component, mutated, 2)
