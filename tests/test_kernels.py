"""Tests for :mod:`repro.kernels`: backend selection, the vectorized
verifier twin, shared-memory topology cores, and record parity across
the whole engine stack.

The object layer is the oracle everywhere: with or without numpy, with
any worker count or shard count, trial records must be bit-identical —
the vector backend only buys time, never different answers.
"""

from __future__ import annotations

import glob
import json
import logging

import pytest
from hypothesis import given, settings

from repro import kernels
from repro.engine.runner import (
    ShardReport,
    merge_shard_reports,
    plan_experiment,
    run_experiment,
    run_shard,
)
from repro.engine.spec import ExperimentSpec
from repro.generators import cycle
from repro.kernels import shm
from repro.lcl import Labeling, verify
from repro.lcl.verifier import PreparedVerifier
from repro.runtime import registry
from repro.runtime.driver import InstanceCache, Runtime
from repro.runtime.entrypoints import family_ref, solver_ref, verifier_ref
from tests.conftest import multigraphs

needs_numpy = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="vector kernels need numpy"
)


def _registry_spec(name, solver, problem, family, ns, seeds):
    return ExperimentSpec(
        name=name,
        solver=solver_ref(solver),
        generator=family_ref(family),
        verifier=verifier_ref(problem),
        ns=ns,
        seeds=seeds,
    )


PARITY_SPEC = _registry_spec(
    "kernels/degree-parity/parity@cycle",
    "parity",
    "degree-parity",
    "cycle",
    ns=(8, 16),
    seeds=(0, 1),
)


def _record_keys(report):
    return [json.dumps(r, sort_keys=True) for r in report.records]


def _counter_total(telemetry_block, name):
    """Sum one counter across the delta parts of a merged snapshot."""
    if not telemetry_block:
        return 0
    total = 0
    for part in telemetry_block.get("parts", {}).values():
        total += part.get("counters", {}).get(name, 0)
    return total


# -- backend selection --------------------------------------------------------


class TestBackendSelection:
    def test_ensure_mode_rejects_junk(self):
        with pytest.raises(ValueError, match="unknown kernels mode"):
            kernels.ensure_mode("simd")
        for mode in kernels.BACKENDS:
            assert kernels.ensure_mode(mode) == mode

    def test_active_needs_concrete_backend(self):
        with pytest.raises(ValueError, match="concrete backend"):
            with kernels.active("auto"):
                pass

    def test_active_restores_previous_backend(self):
        assert kernels.current_backend() == "object"
        with kernels.active("vector"):
            assert kernels.current_backend() == "vector"
            with kernels.active("object"):
                assert kernels.current_backend() == "object"
            assert kernels.current_backend() == "vector"
        assert kernels.current_backend() == "object"

    def test_object_mode_always_object(self):
        assert kernels.select_backend("object", cycle(4096)) == "object"

    @needs_numpy
    def test_auto_threshold(self):
        small = cycle(kernels.AUTO_THRESHOLD // 2)
        large = cycle(kernels.AUTO_THRESHOLD)
        assert kernels.select_backend("auto", small) == "object"
        assert kernels.select_backend("auto", large) == "vector"
        assert kernels.select_backend("auto", None) == "vector"
        assert kernels.select_backend("vector", small) == "vector"

    def test_vector_enabled_is_ambient(self):
        assert not kernels.vector_enabled()
        with kernels.active("vector"):
            assert kernels.vector_enabled() == kernels.HAVE_NUMPY

    def test_degrades_without_numpy_with_one_warning(self, monkeypatch, caplog):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        monkeypatch.setattr(kernels, "_WARNED_NO_NUMPY", False)
        with caplog.at_level(logging.WARNING, logger="repro.kernels"):
            assert kernels.select_backend("vector", cycle(4096)) == "object"
            assert kernels.select_backend("auto", cycle(4096)) == "object"
            assert kernels.select_backend("vector") == "object"
        warnings = [
            rec for rec in caplog.records if "degrade" in rec.getMessage()
        ]
        assert len(warnings) == 1  # logged once, not per call
        with kernels.active("vector"):
            assert not kernels.vector_enabled()

    def test_runtime_works_without_numpy(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
        monkeypatch.setattr(kernels, "_WARNED_NO_NUMPY", True)
        record = Runtime().run(
            "degree-parity", "parity", "cycle", 16, kernels="vector"
        )
        assert record.verified


# -- the vectorized verifier twin --------------------------------------------


@needs_numpy
class TestVectorVerifierTwin:
    def _checked(self, problem, graph, outputs):
        inputs = Labeling(graph)
        expected = verify(problem, graph, inputs, outputs)
        with kernels.active("vector"):
            got = verify(problem, graph, inputs, outputs)
        assert got.ok == expected.ok
        assert got.violations == expected.violations
        return expected

    def test_violation_lists_identical_including_order(self):
        from repro.problems import VertexColoring

        graph = cycle(24)
        problem = VertexColoring(2).problem()
        outputs = Labeling(graph)
        for v in graph.nodes():
            # domain breakage, node-constraint breakage, and valid
            # stretches all mixed together
            outputs.set_node(v, "junk" if v % 5 == 4 else v % 2)
        verdict = self._checked(problem, graph, outputs)
        assert not verdict.ok
        kinds = {violation.kind for violation in verdict.violations}
        assert "domain" in kinds

    def test_prepared_twin_matches_and_is_cached(self):
        from repro.problems import VertexColoring

        graph = cycle(32)
        problem = VertexColoring(3).problem()
        prepared = PreparedVerifier(problem, graph)
        outputs = Labeling(graph)
        for v in graph.nodes():
            outputs.set_node(v, v % 3)
        expected = prepared.verify(outputs)
        with kernels.active("vector"):
            got = kernels.prepared_verify(prepared, outputs)
            twin = prepared._vector_twin
            again = kernels.prepared_verify(prepared, outputs)
            assert prepared._vector_twin is twin  # built once, reused
        assert got.ok == expected.ok
        assert got.violations == expected.violations
        assert again.violations == expected.violations

    def test_prepared_object_path_untouched_without_vector(self):
        from repro.problems import VertexColoring

        graph = cycle(8)
        prepared = PreparedVerifier(VertexColoring(3).problem(), graph)
        outputs = Labeling(graph)
        for v in graph.nodes():
            outputs.set_node(v, v % 3 if v else 1)
        verdict = kernels.prepared_verify(prepared, outputs)
        assert verdict.violations == prepared.verify(outputs).violations
        assert not hasattr(prepared, "_vector_twin")


# -- shared-memory topology cores --------------------------------------------


class TestSharedMemoryCores:
    def test_export_attach_release_lifecycle(self):
        graph = cycle(64)
        handle = shm.CoreHandle(*shm.export_graph(graph))
        assert handle.segment.startswith("repro-core-")
        assert handle.words == shm.core_words(graph)
        # same-process attach short-circuits to the exporter's object
        assert shm.attach_graph(handle) is graph
        assert glob.glob(f"/dev/shm/{handle.segment}")
        shm.release_core(handle)
        shm.release_core(handle)  # idempotent
        assert not glob.glob(f"/dev/shm/{handle.segment}")

    def test_foreign_attach_maps_identical_tables(self):
        graph = cycle(48)
        handle = shm.export_graph(graph)
        # simulate a foreign process: hide the exporter-side memo
        entry = shm._EXPORTED.pop(handle.segment)
        try:
            attached = shm.attach_graph(handle)
            assert attached is not graph
            assert attached is shm.attach_graph(handle)  # memoized
            for mine, theirs in zip(graph.csr(), attached.csr()):
                assert list(mine) == list(theirs)
            assert attached.num_nodes == graph.num_nodes
            assert attached.num_edges == graph.num_edges
            assert shm.attached_core_words() >= shm.core_words(graph)
        finally:
            # drop the attachment; its views are alive, so disarm the
            # SharedMemory finalizer the way the atexit hook does and
            # let the exporter clean up the segment
            dropped = shm._ATTACHED.pop(handle.segment, None)
            if dropped is not None:
                seg = dropped[1]
                seg._buf = None
                seg._mmap = None
                seg._fd = -1
            shm._EXPORTED[handle.segment] = entry
            shm.release_core(handle)

    def test_handle_is_tiny_on_the_wire(self):
        import pickle

        graph = cycle(2048)
        handle = shm.export_graph(graph)
        try:
            handle_bytes = len(pickle.dumps(tuple(handle)))
            core_bytes = len(pickle.dumps(graph))
            assert handle_bytes < 128
            assert handle_bytes * 100 < core_bytes
        finally:
            shm.release_core(handle)

    def test_instance_cache_adopt_serves_core(self):
        cache = InstanceCache()
        family_info = registry.family("cycle")
        graph = cycle(32)
        cache.adopt(("cycle", 32), graph)
        assert cache.core(family_info, 32) is graph
        instance, key = cache.build(family_info, 32, seed=0)
        assert key == ("cycle", 32)
        assert instance.graph is graph


# -- record parity through the whole stack ------------------------------------


class TestKernelsRecordParity:
    def test_runtime_records_identical_across_backends(self):
        runtime = Runtime()
        grids = dict(ns=(8, 16), seeds=(0, 1))
        obj = runtime.run_many(
            "degree-parity", "parity", "cycle", kernels="object", **grids
        )
        auto = runtime.run_many(
            "degree-parity", "parity", "cycle", kernels="auto", **grids
        )
        vec = runtime.run_many(
            "degree-parity", "parity", "cycle", kernels="vector", **grids
        )
        def strip(records):
            return [
                {k: v for k, v in vars(r).items() if k != "wall_time"}
                for r in records
            ]
        assert strip(obj) == strip(auto) == strip(vec)

    @pytest.mark.parametrize("num_shards", [1, 4])
    def test_shard_records_identical_across_backends(self, num_shards):
        oracle = run_experiment(PARITY_SPEC, workers=1, kernels="object")
        plan = plan_experiment(PARITY_SPEC, num_shards=num_shards)
        reports = [
            run_shard(
                plan.manifest(i), workers=2, kernels="vector"
            )
            for i in range(num_shards)
        ]
        merged = merge_shard_reports(reports)
        assert _record_keys(merged) == _record_keys(oracle)
        assert merged.kernels == "vector"

    def test_report_carries_kernels_field(self):
        report = run_experiment(PARITY_SPEC, workers=1, kernels="object")
        assert report.kernels == "object"
        assert report.as_dict()["kernels"] == "object"
        tele = report.as_dict()["telemetry"]
        executed = _counter_total(tele, "kernels.object_trials")
        assert executed == len(report.records)
        assert _counter_total(tele, "kernels.vector_trials") == 0

    def test_shard_report_kernels_roundtrip_and_default(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=1)
        report = run_shard(plan.manifest(0), workers=1, kernels="object")
        payload = report.as_dict()
        assert payload["kernels"] == "object"
        assert ShardReport.from_dict(payload).kernels == "object"
        payload.pop("kernels")  # reports written by older builds
        assert ShardReport.from_dict(payload).kernels == "auto"

    def test_mixed_shard_backends_merge_identically(self):
        plan = plan_experiment(PARITY_SPEC, num_shards=4)
        modes = ["object", "vector", "object", "vector"]
        reports = [
            run_shard(plan.manifest(i), workers=1, kernels=modes[i])
            for i in range(4)
        ]
        merged = merge_shard_reports(reports)
        oracle = run_experiment(PARITY_SPEC, workers=1, kernels="object")
        assert _record_keys(merged) == _record_keys(oracle)
        assert merged.kernels == "mixed"

    def test_forced_shm_export_keeps_records_and_cleans_up(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_CORES", "1")
        before = set(glob.glob("/dev/shm/repro-core-*"))
        oracle = run_experiment(PARITY_SPEC, workers=1, kernels="object")
        plan = plan_experiment(PARITY_SPEC, num_shards=1)
        report = run_shard(plan.manifest(0), workers=2, kernels="auto")
        shard_records = [
            json.dumps(record, sort_keys=True)
            for _, record in sorted(report.records)
        ]
        assert shard_records == _record_keys(oracle)
        exported = _counter_total(report.telemetry, "shm.cores_exported")
        assert exported >= 1  # cycle topology cores went through shm
        # exporter released every segment when the shard finished
        assert set(glob.glob("/dev/shm/repro-core-*")) == before

    def test_shm_export_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_CORES", "0")
        plan = plan_experiment(PARITY_SPEC, num_shards=1)
        report = run_shard(plan.manifest(0), workers=2, kernels="auto")
        assert _counter_total(report.telemetry, "shm.cores_exported") == 0


# -- batched array programs vs the object round loop --------------------------


ARRAY_PARITY_SPEC = _registry_spec(
    "kernels/degree-parity/parity-sync@cycle",
    "parity-sync",
    "degree-parity",
    "cycle",
    ns=(8, 16),
    seeds=(0, 1),
)

LINIAL_SPEC = _registry_spec(
    "kernels/4-coloring/linial@cubic",
    "linial-4-coloring",
    "4-coloring",
    "cubic",
    ns=(32, 64),
    seeds=(0, 1),
)


@needs_numpy
class TestArrayProgramDifferential:
    """Batched node programs against the object loop on random graphs.

    Every solver that ships an :class:`repro.local.simulator.ArrayProgram`
    twin must produce bit-identical engine results — per-node outputs,
    round counts, halting rounds, traces, and ConvergenceError
    diagnostics — on multigraphs with self-loops, parallel edges,
    irregular degrees, and staggered halts.
    """

    @given(multigraphs())
    @settings(max_examples=30, deadline=None)
    def test_min_flood_matches_everywhere(self, graph):
        # min-id flooding converges on every graph (each component
        # settles on its minimum), so parity holds with no exclusions.
        from repro.local import Instance, SyncEngine
        from repro.local.flood import MinIdFloodNode
        from repro.local.identifiers import sequential_ids

        instance = Instance(graph, sequential_ids(graph.num_nodes))
        expected = SyncEngine(instance, MinIdFloodNode).run(max_rounds=64)
        with kernels.active("vector"):
            got = SyncEngine(instance, MinIdFloodNode).run(max_rounds=64)
        assert got.results == expected.results
        assert got.rounds == expected.rounds
        assert got.halt_rounds == expected.halt_rounds
        assert got.trace == expected.trace

    @given(multigraphs())
    @settings(max_examples=30, deadline=None)
    def test_ecc_flood_matches_including_livelocks(self, graph):
        # the delta-flood livelocks on some topologies (an early halter
        # cuts the relay); both paths must then raise identically.
        from repro.local import ConvergenceError, Instance, SyncEngine
        from repro.local.flood import FloodNode
        from repro.local.identifiers import sequential_ids

        instance = Instance(graph, sequential_ids(graph.num_nodes))
        try:
            expected = SyncEngine(instance, FloodNode).run(max_rounds=48)
        except ConvergenceError as err:
            with kernels.active("vector"):
                with pytest.raises(ConvergenceError) as excinfo:
                    SyncEngine(instance, FloodNode).run(max_rounds=48)
            assert excinfo.value.max_rounds == err.max_rounds
            assert excinfo.value.active == err.active
            assert excinfo.value.trace == err.trace
            return
        with kernels.active("vector"):
            got = SyncEngine(instance, FloodNode).run(max_rounds=48)
        assert got.results == expected.results
        assert got.rounds == expected.rounds
        assert got.halt_rounds == expected.halt_rounds
        assert got.trace == expected.trace

    @given(multigraphs(max_nodes=10, max_edges=16))
    @settings(max_examples=30, deadline=None)
    def test_linial_matches_on_multigraphs(self, graph):
        from repro.local.algorithm import Instance
        from repro.problems import LinialColoringSolver

        instance = Instance.simple(graph)
        expected = LinialColoringSolver().solve(instance)
        with kernels.active("vector"):
            got = LinialColoringSolver().solve(instance)
        nodes = list(graph.nodes())
        assert [got.outputs.node(v) for v in nodes] == [
            expected.outputs.node(v) for v in nodes
        ]
        assert got.rounds == expected.rounds
        assert got.node_radius == expected.node_radius
        assert got.extras == expected.extras


class TestArrayProgramRecordParity:
    """Array-program solvers through the whole runtime stack."""

    @pytest.mark.parametrize("spec", [ARRAY_PARITY_SPEC, LINIAL_SPEC])
    def test_runtime_records_identical_across_backends(self, spec):
        oracle = run_experiment(spec, workers=1, kernels="object")
        for backend in ("vector", "auto"):
            report = run_experiment(spec, workers=1, kernels=backend)
            assert _record_keys(report) == _record_keys(oracle)

    @pytest.mark.parametrize("num_shards", [1, 3])
    def test_shard_records_identical_across_backends(self, num_shards):
        oracle = run_experiment(LINIAL_SPEC, workers=1, kernels="object")
        plan = plan_experiment(LINIAL_SPEC, num_shards=num_shards)
        reports = [
            run_shard(plan.manifest(i), workers=2, kernels="vector")
            for i in range(num_shards)
        ]
        merged = merge_shard_reports(reports)
        assert _record_keys(merged) == _record_keys(oracle)

    @needs_numpy
    def test_round_telemetry_splits_by_path(self):
        obj = run_experiment(LINIAL_SPEC, workers=1, kernels="object")
        vec = run_experiment(LINIAL_SPEC, workers=1, kernels="vector")
        obj_tele = obj.as_dict()["telemetry"]
        vec_tele = vec.as_dict()["telemetry"]
        obj_rounds = _counter_total(obj_tele, "engine.rounds")
        vec_rounds = _counter_total(vec_tele, "engine.rounds")
        assert obj_rounds == vec_rounds > 0
        assert _counter_total(obj_tele, "engine.active_nodes") == \
            _counter_total(vec_tele, "engine.active_nodes") > 0
        # the per-path counters are exclusive: each backend runs every
        # engine round on exactly one of the two loops
        assert _counter_total(obj_tele, "kernels.object_rounds") == obj_rounds
        assert _counter_total(obj_tele, "kernels.array_rounds") == 0
        assert _counter_total(vec_tele, "kernels.array_rounds") == vec_rounds
        assert _counter_total(vec_tele, "kernels.object_rounds") == 0
