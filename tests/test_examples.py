"""Smoke tests: the runnable examples must stay runnable."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

_EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "padded_lcl_demo.py",
    "error_proofs_demo.py",
    "engine_demo.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_examples_exist():
    present = set(os.listdir(_EXAMPLES))
    expected = {
        "quickstart.py",
        "sinkless_orientation_demo.py",
        "padded_lcl_demo.py",
        "error_proofs_demo.py",
        "complexity_landscape_mini.py",
        "engine_demo.py",
    }
    assert expected <= present
