"""Shared fixtures and hypothesis strategies for the test-suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.generators import cycle, random_regular
from repro.local import GraphBuilder, PortGraph


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_cycle() -> PortGraph:
    return cycle(8)


@pytest.fixture
def cubic_graph(rng) -> PortGraph:
    return random_regular(64, 3, rng)


def build_multigraph(num_nodes: int, edge_plan: list[tuple[int, int]]) -> PortGraph:
    """Build a graph from (u, v) pairs allowing loops and parallels."""
    builder = GraphBuilder(num_nodes)
    for u, v in edge_plan:
        builder.add_edge(u, v)
    return builder.build()


@st.composite
def multigraphs(draw, max_nodes: int = 12, max_edges: int = 24):
    """Random multigraphs (loops and parallel edges allowed)."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(m)
    ]
    return build_multigraph(n, pairs)


@st.composite
def simple_graphs(draw, max_nodes: int = 12):
    """Random simple graphs via edge subsets of K_n."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    chosen = draw(st.lists(st.sampled_from(all_pairs), unique=True, max_size=len(all_pairs))) if all_pairs else []
    return PortGraph.from_edge_list(n, chosen)
