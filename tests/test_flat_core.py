"""Property tests pinning the flat incidence core to the object API.

The CSR tables built at ``PortGraph`` freeze time must agree with the
``Edge``/``HalfEdge`` object layer on every query, including graphs
with self-loops and parallel edges, and every consumer rewired onto
them (BFS, the sync engine, the verifier) must produce results
identical to a reference implementation that only uses the object API.
"""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings

from repro import kernels
from repro.generators import cycle
from repro.lcl import Labeling, verify
from repro.local import (
    Instance,
    PortGraph,
    SyncEngine,
    ViewOracle,
    bfs_distances,
    connected_components,
    multi_source_bfs,
)
from repro.local.graphs import HalfEdge
from repro.local.identifiers import sequential_ids
from repro.problems import VertexColoring
from tests.conftest import build_multigraph, multigraphs
from tests.test_views_simulator import _FloodNode


# -- reference implementations through the object layer only -----------------


def _object_endpoint(graph: PortGraph, v: int, port: int) -> HalfEdge:
    """The pre-flat-core endpoint: edge object + other_side."""
    edge = graph.edge_at(v, port)
    return edge.other_side(HalfEdge(v, port))


def _object_bfs(graph: PortGraph, source: int, max_radius=None) -> dict[int, int]:
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        v = frontier.popleft()
        d = dist[v]
        if max_radius is not None and d >= max_radius:
            continue
        for port in range(graph.degree(v)):
            u = _object_endpoint(graph, v, port).node
            if u not in dist:
                dist[u] = d + 1
                frontier.append(u)
    return dist


def _object_engine_run(instance: Instance, node_factory, max_rounds=10_000):
    """A reference SyncEngine.run that delivers via edge objects."""
    graph = instance.graph
    nodes = [node_factory(v, instance) for v in graph.nodes()]
    halted = [False] * graph.num_nodes
    rounds = 0
    for round_index in range(max_rounds):
        outboxes = []
        active = 0
        for v, node in enumerate(nodes):
            if halted[v]:
                outboxes.append(None)
                continue
            out = node.outgoing(round_index)
            if out is None:
                halted[v] = True
                outboxes.append(None)
                continue
            outboxes.append(out)
            active += 1
        if active == 0:
            break
        rounds += 1
        inboxes = [
            None if halted[v] else [None] * graph.degree(v) for v in graph.nodes()
        ]
        for v in graph.nodes():
            out = outboxes[v]
            if out is None:
                continue
            for port in range(graph.degree(v)):
                target = _object_endpoint(graph, v, port)
                inbox = inboxes[target.node]
                if inbox is not None:
                    inbox[target.port] = out[port]
        for v, node in enumerate(nodes):
            if not halted[v]:
                node.receive(round_index, inboxes[v])
    return [node.result() for node in nodes], rounds


# -- table structure ----------------------------------------------------------


class TestFlatTables:
    @given(multigraphs())
    @settings(max_examples=60, deadline=None)
    def test_csr_matches_object_layer(self, graph: PortGraph):
        off, nbr, peer, eids = graph.csr()
        assert off[0] == 0
        assert off[-1] == 2 * graph.num_edges
        for v in graph.nodes():
            base = off[v]
            assert off[v + 1] - base == graph.degree(v)
            for port in range(graph.degree(v)):
                other = _object_endpoint(graph, v, port)
                slot = base + port
                assert nbr[slot] == other.node
                assert peer[slot] == other.port
                assert eids[slot] == graph.edge_id_at(v, port)
                assert graph.endpoint(v, port) == other
                assert graph.neighbor(v, port) == other.node

    @given(multigraphs())
    @settings(max_examples=60, deadline=None)
    def test_neighbors_and_degrees(self, graph: PortGraph):
        degrees = graph.degrees
        for v in graph.nodes():
            expected = [
                _object_endpoint(graph, v, p).node for p in range(graph.degree(v))
            ]
            assert graph.neighbors(v) == expected
            assert degrees[v] == graph.degree(v)
            assert graph.incident_edge_ids(v) == [
                graph.edge_id_at(v, p) for p in range(graph.degree(v))
            ]
        if graph.num_nodes:
            assert graph.max_degree == max(degrees)
            assert graph.min_degree == min(degrees)

    def test_self_loop_slots_point_at_each_other(self):
        graph = build_multigraph(2, [(0, 0), (0, 1), (1, 1)])
        off, nbr, peer, eids = graph.csr()
        # loop on node 0 occupies ports 0 and 1
        assert nbr[off[0] + 0] == 0 and peer[off[0] + 0] == 1
        assert nbr[off[0] + 1] == 0 and peer[off[0] + 1] == 0
        assert eids[off[0]] == eids[off[0] + 1]
        assert graph.endpoint(0, 0) == HalfEdge(0, 1)
        assert graph.endpoint(0, 1) == HalfEdge(0, 0)

    def test_parallel_edges_keep_distinct_eids(self):
        graph = build_multigraph(2, [(0, 1), (0, 1)])
        _, nbr, _, eids = graph.csr()
        assert graph.neighbors(0) == [1, 1]
        assert eids[0] != eids[1]
        assert graph.endpoint(0, 0) == HalfEdge(1, 0)
        assert graph.endpoint(0, 1) == HalfEdge(1, 1)

    def test_out_of_range_port_raises(self):
        graph = cycle(4)
        with pytest.raises(IndexError):
            graph.endpoint(0, 2)
        with pytest.raises(IndexError):
            graph.neighbor(0, 5)
        # negative ports keep list indexing semantics
        assert graph.endpoint(0, -1) == graph.endpoint(0, 1)


# -- rewired consumers agree with object-layer references ---------------------


class TestRewiredConsumers:
    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_bfs_matches_object_reference(self, graph: PortGraph):
        for source in range(min(graph.num_nodes, 4)):
            assert bfs_distances(graph, source) == _object_bfs(graph, source)
            assert bfs_distances(graph, source, max_radius=2) == _object_bfs(
                graph, source, max_radius=2
            )

    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_components_and_multi_source(self, graph: PortGraph):
        comps = connected_components(graph)
        assert sorted(v for comp in comps for v in comp) == list(graph.nodes())
        for comp in comps:
            reach = set(_object_bfs(graph, comp[0]))
            assert set(comp) == reach
        dist, parent = multi_source_bfs(graph, [0])
        assert dist == _object_bfs(graph, 0)
        for v, eid in parent.items():
            edge = graph.edge(eid)
            other = edge.a.node if edge.b.node == v else edge.b.node
            assert dist[other] == dist[v] - 1

    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_views_match_object_reference(self, graph: PortGraph):
        oracle = ViewOracle(graph)
        for radius in (0, 1, 3, 2):  # shrinking request exercises the trim
            view = oracle.view(0, radius)
            reference = {
                u: d
                for u, d in _object_bfs(graph, 0, max_radius=radius).items()
                if d <= radius
            }
            assert view.dist == reference
            assert view.nodes() == sorted(reference)
            assert view.boundary() == sorted(
                u for u, d in reference.items() if d == radius
            )

    @given(multigraphs())
    @settings(max_examples=20, deadline=None)
    def test_engine_matches_object_reference(self, graph: PortGraph):
        instance = Instance(graph, sequential_ids(graph.num_nodes))
        try:
            expected, expected_rounds = _object_engine_run(
                instance, _FloodNode, max_rounds=64
            )
        except Exception:  # disconnected graphs never converge; skip those
            return
        if None in expected:
            return
        result = SyncEngine(instance, _FloodNode).run(max_rounds=64)
        assert result.results == expected
        assert result.rounds == expected_rounds

    @given(multigraphs())
    @settings(max_examples=30, deadline=None)
    def test_verifier_matches_unflagged_problem(self, graph: PortGraph):
        problem = VertexColoring(3).problem()
        assert problem.edge_symmetric
        unflagged = VertexColoring(3).problem()
        unflagged.edge_symmetric = False
        outputs = Labeling(graph)
        for v in graph.nodes():
            outputs.set_node(v, v % 3)
        inputs = Labeling(graph)
        fast = verify(problem, graph, inputs, outputs)
        slow = verify(unflagged, graph, inputs, outputs)
        assert fast.ok == slow.ok
        assert fast.violations == slow.violations


# -- vector kernels vs the object oracle --------------------------------------

needs_numpy = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="vector kernels need numpy"
)


@needs_numpy
class TestVectorKernelsDifferential:
    """Every vectorized kernel against the object layer it shadows.

    The object implementations above are the oracle; under
    ``kernels.active("vector")`` the same public entry points dispatch
    to :mod:`repro.kernels.vector` and must return *bit-identical*
    results — same values, same plain-python types, same ordering —
    on random multigraphs with self-loops and parallel edges.
    """

    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_bfs_matches_object_backend(self, graph: PortGraph):
        for source in range(min(graph.num_nodes, 3)):
            for radius in (None, 0, 2):
                expected = bfs_distances(graph, source, max_radius=radius)
                with kernels.active("vector"):
                    got = bfs_distances(graph, source, max_radius=radius)
                assert got == expected
                assert all(
                    type(k) is int and type(v) is int for k, v in got.items()
                )

    @given(multigraphs())
    @settings(max_examples=40, deadline=None)
    def test_multi_source_and_components_match(self, graph: PortGraph):
        sources = list(range(min(graph.num_nodes, 2)))
        expected = multi_source_bfs(graph, sources)
        expected_comps = connected_components(graph)
        with kernels.active("vector"):
            got = multi_source_bfs(graph, sources)
            got_comps = connected_components(graph)
        assert got == expected
        assert got_comps == expected_comps
        dist, parent = got
        assert all(type(v) is int for v in dist.values())
        assert all(type(e) is int for e in parent.values())

    @given(multigraphs())
    @settings(max_examples=20, deadline=None)
    def test_engine_delivery_matches_object_backend(self, graph: PortGraph):
        # _FloodNode ships an array twin, so under the vector backend it
        # takes the batched path; _PlainFlood suppresses the twin and
        # keeps the object loop's DeliveryPlan covered on the same runs.
        class _PlainFlood(_FloodNode):
            array_program = None

        instance = Instance(graph, sequential_ids(graph.num_nodes))
        try:
            expected = SyncEngine(instance, _PlainFlood).run(max_rounds=64)
        except Exception:
            return  # disconnected graphs never converge; skip those
        with kernels.active("vector"):
            plan = SyncEngine(instance, _PlainFlood).run(max_rounds=64)
            batched = SyncEngine(instance, _FloodNode).run(max_rounds=64)
        for got in (plan, batched):
            assert got.results == expected.results
            assert got.rounds == expected.rounds
            assert got.halt_rounds == expected.halt_rounds
            assert got.trace == expected.trace

    @given(multigraphs())
    @settings(max_examples=30, deadline=None)
    def test_verifier_matches_object_backend(self, graph: PortGraph):
        problem = VertexColoring(3).problem()
        inputs = Labeling(graph)
        # v % 3 colors adjacent nodes equal often enough to exercise
        # the violation path; the occasional out-of-domain label
        # exercises the domain pass.
        outputs = Labeling(graph)
        for v in graph.nodes():
            outputs.set_node(v, "junk" if v % 7 == 6 else v % 3)
        expected = verify(problem, graph, inputs, outputs)
        with kernels.active("vector"):
            got = verify(problem, graph, inputs, outputs)
        assert got.ok == expected.ok
        assert got.violations == expected.violations


class TestReadonlyCore:
    """Satellite regression: csr() views are frozen against callers."""

    def test_caller_mutation_cannot_corrupt_csr(self):
        graph = cycle(8)
        off, nbr, peer, eids = graph.csr()
        for view in (off, nbr, peer, eids):
            with pytest.raises(TypeError):
                view[0] = 99
        # still intact afterwards
        assert bfs_distances(graph, 0) == _object_bfs(graph, 0)

    @needs_numpy
    def test_numpy_wrap_inherits_readonly(self):
        import numpy as np

        graph = cycle(8)
        for view in graph.csr():
            arr = np.frombuffer(view, dtype=np.int64)
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 99


# -- satellite regressions ----------------------------------------------------


class TestViewCaching:
    def test_view_dist_isolated_from_later_growth(self):
        graph = cycle(12)
        oracle = ViewOracle(graph)
        small = oracle.view(0, 1)
        before = dict(small.dist)
        oracle.view(0, 4)  # grows the shared BFS state
        assert small.dist == before

    def test_nodes_and_boundary_are_cached(self):
        graph = cycle(8)
        view = ViewOracle(graph).view(0, 2)
        assert view.nodes() is view.nodes()
        assert view.boundary() is view.boundary()


class TestVerifierCap:
    def test_domain_pass_respects_max_violations(self):
        graph = cycle(64)
        problem = VertexColoring(3).problem()
        outputs = Labeling(graph).fill_nodes("not-a-color")
        verdict = verify(problem, graph, Labeling(graph), outputs, max_violations=5)
        assert not verdict.ok
        assert len(verdict.violations) == 5

    def test_zero_cap_still_reports_domain_violations(self):
        # historical behavior: max_violations=0 skips the constraint
        # passes but never declares an out-of-domain labeling valid
        graph = cycle(4)
        problem = VertexColoring(3).problem()
        outputs = Labeling(graph).fill_nodes("not-a-color")
        verdict = verify(problem, graph, Labeling(graph), outputs, max_violations=0)
        assert not verdict.ok
        assert len(verdict.violations) == 4

    def test_cap_spans_domain_and_constraint_passes(self):
        graph = cycle(6)
        problem = VertexColoring(2).problem()
        outputs = Labeling(graph)
        for v in graph.nodes():
            # nodes 0..2 break the domain, the rest break edges (same color)
            outputs.set_node(v, "bad" if v < 3 else 0)
        capped = verify(problem, graph, Labeling(graph), outputs, max_violations=4)
        uncapped = verify(problem, graph, Labeling(graph), outputs)
        assert len(capped.violations) == 4
        assert capped.violations == uncapped.violations[:4]
