"""Tests for growth fitting, sweeps, and table rendering."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    GROWTH_FUNCTIONS,
    best_fit,
    fit_growth,
    ratio_series,
    render_table,
    run_sweep,
)
from repro.generators.hard import cubic_instance
from repro.problems import RandomizedSinklessSolver

NS = [2**k for k in range(4, 15)]


class TestGrowthFit:
    @pytest.mark.parametrize(
        "name", ["log", "log^2", "loglog", "log loglog", "sqrt"]
    )
    def test_recovers_generated_shape(self, name):
        g = GROWTH_FUNCTIONS[name]
        rounds = [3.0 * g(n) + 2.0 for n in NS]
        fit = best_fit(NS, rounds)
        assert fit.name == name
        assert fit.scale == pytest.approx(3.0, rel=1e-6)

    def test_recovers_with_noise(self):
        rng = random.Random(1)
        g = GROWTH_FUNCTIONS["log^2"]
        rounds = [2.0 * g(n) + rng.uniform(-2, 2) for n in NS]
        fit = best_fit(NS, rounds)
        assert fit.name in ("log^2", "log^2 loglog")

    def test_constant_series(self):
        fit = best_fit(NS, [7.0] * len(NS))
        assert fit.name == "1"
        assert fit.predict(10**6) == pytest.approx(7.0)

    def test_candidates_restriction(self):
        rounds = [5 * math.log2(n) for n in NS]
        fit = best_fit(NS, rounds, candidates=["1", "sqrt"])
        assert fit.name in ("1", "sqrt")

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            best_fit([4, 8], [1, 2])

    def test_fits_sorted_by_rmse(self):
        rounds = [GROWTH_FUNCTIONS["log"](n) for n in NS]
        fits = fit_growth(NS, rounds)
        rmses = [f.rmse for f in fits]
        assert rmses == sorted(rmses)

    def test_negative_slope_clamped(self):
        rounds = [100.0 - GROWTH_FUNCTIONS["log"](n) for n in NS]
        for fit in fit_growth(NS, rounds):
            assert fit.scale >= 0

    @given(st.floats(0.5, 10), st.floats(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_log_vs_loglog_separation(self, a, b):
        rounds = [a * GROWTH_FUNCTIONS["log"](n) + b for n in NS]
        assert best_fit(NS, rounds).name == "log"


class TestRatioSeries:
    def test_ratio_grows_for_log_over_loglog(self):
        det = [GROWTH_FUNCTIONS["log"](n) for n in NS]
        rand = [GROWTH_FUNCTIONS["loglog"](n) for n in NS]
        series = ratio_series(NS, det, rand)
        ratios = [r for _n, r in series]
        assert all(b > a for a, b in zip(ratios, ratios[1:]))


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(
            ["name", "value"], [["a", 1], ["bb", 22.5]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[2].startswith("----")
        assert "22.50" in out


class TestRunSweep:
    def test_sweep_reports_points(self):
        solver = RandomizedSinklessSolver()
        sweep = run_sweep(solver, cubic_instance, [16, 32], seeds=(0, 1))
        assert len(sweep.points) == 2
        assert sweep.points[0].trials == 2
        assert sweep.points[0].rounds_max >= sweep.points[0].rounds_mean

    def test_sweep_verify_hook_runs(self):
        calls = []

        def check(instance, result):
            calls.append(instance.graph.num_nodes)

        solver = RandomizedSinklessSolver()
        run_sweep(solver, cubic_instance, [16], seeds=(0, 1, 2), verify=check)
        assert len(calls) == 3

    def test_sweep_verify_hook_can_fail(self):
        def bad(instance, result):
            raise AssertionError("nope")

        solver = RandomizedSinklessSolver()
        with pytest.raises(AssertionError):
            run_sweep(solver, cubic_instance, [16], seeds=(0,), verify=bad)
