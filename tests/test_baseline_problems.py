"""Tests for coloring, cycle coloring, MIS, matching, and trivial LCLs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    complete,
    complete_binary_tree,
    cycle,
    disjoint_union,
    path,
    random_regular,
    star,
    torus_grid,
)
from repro.lcl import Labeling, verify
from repro.local import Instance
from repro.local.identifiers import random_ids
from repro.problems import (
    ColorClassMatchingSolver,
    ColorClassMisSolver,
    ConstantLabelProblem,
    ConstantSolver,
    CycleColoringSolver,
    LinialColoringSolver,
    LubyMatchingSolver,
    LubyMisSolver,
    MaximalIndependentSet,
    MaximalMatching,
    ParityOfDegreeProblem,
    ThreeColoringCycles,
    VertexColoring,
    line_graph,
)
from tests.conftest import build_multigraph, multigraphs


def _check(problem, graph, result):
    verdict = verify(problem, graph, Labeling(graph), result.outputs)
    assert verdict.ok, verdict.summary()


class TestVertexColoring:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: cycle(17),
            lambda: complete(5),
            lambda: torus_grid(5, 5),
            lambda: random_regular(48, 4, random.Random(0)),
            lambda: star(6),
            lambda: disjoint_union(cycle(5), path(4)),
        ],
    )
    def test_delta_plus_one_coloring(self, graph_factory):
        graph = graph_factory()
        instance = Instance.simple(graph)
        result = LinialColoringSolver().solve(instance)
        problem = VertexColoring(graph.max_degree + 1).problem()
        _check(problem, graph, result)

    def test_loops_are_exempt(self):
        graph = build_multigraph(2, [(0, 0), (0, 1)])
        problem = VertexColoring(4).problem()
        outputs = Labeling(graph)
        outputs.set_node(0, 0)
        outputs.set_node(1, 1)
        assert verify(problem, graph, Labeling(graph), outputs).ok

    def test_monochromatic_edge_rejected(self):
        graph = path(2)
        problem = VertexColoring(3).problem()
        outputs = Labeling(graph).fill_nodes(1)
        assert not verify(problem, graph, Labeling(graph), outputs).ok

    def test_respects_explicit_palette(self):
        graph = cycle(16)
        result = LinialColoringSolver(num_colors=5).solve(Instance.simple(graph))
        _check(VertexColoring(5).problem(), graph, result)

    def test_rejects_infeasible_palette(self):
        graph = complete(5)
        with pytest.raises(ValueError):
            LinialColoringSolver(num_colors=3).solve(Instance.simple(graph))

    def test_rounds_grow_very_slowly(self):
        rng = random.Random(9)
        small = cycle(16)
        large = cycle(4096)
        r_small = LinialColoringSolver(num_colors=3).solve(
            Instance(small, random_ids(16, rng))
        )
        r_large = LinialColoringSolver(num_colors=3).solve(
            Instance(large, random_ids(4096, rng))
        )
        # Theta(log* n): the gap between n=16 and n=4096 is at most a
        # couple of reduction rounds.
        assert r_large.rounds - r_small.rounds <= 6

    @given(multigraphs(max_nodes=10, max_edges=16))
    @settings(max_examples=30, deadline=None)
    def test_total_on_multigraphs(self, graph):
        instance = Instance.simple(graph)
        result = LinialColoringSolver().solve(instance)
        # the solver treats Delta = 0 as 1 (palette of at least two)
        problem = VertexColoring(max(graph.max_degree, 1) + 1).problem()
        _check(problem, graph, result)


class TestCycleColoring:
    def test_solves_cycles_and_paths(self):
        for graph in (cycle(5), cycle(64), path(33), disjoint_union(cycle(7), path(3))):
            result = CycleColoringSolver().solve(Instance.simple(graph))
            _check(ThreeColoringCycles().problem(), graph, result)

    def test_rejects_high_degree(self):
        with pytest.raises(ValueError):
            CycleColoringSolver().solve(Instance.simple(star(3)))

    def test_problem_rejects_degree_three_configuration(self):
        graph = star(3)
        problem = ThreeColoringCycles().problem()
        outputs = Labeling(graph)
        for v in graph.nodes():
            outputs.set_node(v, 1 if v == 0 else 2)
        verdict = verify(problem, graph, Labeling(graph), outputs)
        assert not verdict.ok


class TestMis:
    @pytest.mark.parametrize(
        "solver_factory", [ColorClassMisSolver, LubyMisSolver]
    )
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: cycle(12),
            lambda: complete(6),
            lambda: torus_grid(4, 6),
            lambda: random_regular(50, 3, random.Random(4)),
            lambda: complete_binary_tree(4),
        ],
    )
    def test_solvers_produce_valid_mis(self, solver_factory, graph_factory):
        graph = graph_factory()
        result = solver_factory().solve(Instance.simple(graph, seed=3))
        _check(MaximalIndependentSet().problem(), graph, result)

    def test_non_maximal_set_rejected(self):
        from repro.problems.mis import mis_labeling

        graph = path(3)
        problem = MaximalIndependentSet().problem()
        outputs = mis_labeling(graph, set())  # empty set is not maximal
        assert not verify(problem, graph, Labeling(graph), outputs).ok

    def test_adjacent_members_rejected(self):
        from repro.problems.mis import mis_labeling

        graph = path(2)
        problem = MaximalIndependentSet().problem()
        outputs = mis_labeling(graph, {0, 1})
        assert not verify(problem, graph, Labeling(graph), outputs).ok

    def test_isolated_nodes_must_join(self):
        from repro.local import PortGraph
        from repro.problems.mis import mis_labeling

        graph = PortGraph(2, [])
        problem = MaximalIndependentSet().problem()
        assert verify(problem, graph, Labeling(graph), mis_labeling(graph, {0, 1})).ok
        assert not verify(problem, graph, Labeling(graph), mis_labeling(graph, {0})).ok

    @given(multigraphs(max_nodes=10, max_edges=16), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_luby_total_on_multigraphs(self, graph, seed):
        result = LubyMisSolver().solve(Instance.simple(graph, seed=seed))
        _check(MaximalIndependentSet().problem(), graph, result)


class TestMatching:
    def test_line_graph_shape(self):
        graph = star(4)
        lg = line_graph(graph)
        assert lg.num_nodes == 4
        assert lg.num_edges == 6  # K4 on the star's edges

    def test_line_graph_ignores_loops(self):
        graph = build_multigraph(2, [(0, 0), (0, 1)])
        lg = line_graph(graph)
        assert lg.num_nodes == 2
        assert lg.num_edges == 0

    @pytest.mark.parametrize(
        "solver_factory", [ColorClassMatchingSolver, LubyMatchingSolver]
    )
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: cycle(9),
            lambda: complete(5),
            lambda: torus_grid(3, 5),
            lambda: random_regular(40, 3, random.Random(8)),
            lambda: star(5),
        ],
    )
    def test_solvers_produce_valid_matching(self, solver_factory, graph_factory):
        graph = graph_factory()
        result = solver_factory().solve(Instance.simple(graph, seed=2))
        _check(MaximalMatching().problem(), graph, result)

    def test_empty_matching_rejected_when_avoidable(self):
        from repro.problems.matching import matching_labeling

        graph = path(2)
        problem = MaximalMatching().problem()
        assert not verify(
            problem, graph, Labeling(graph), matching_labeling(graph, set())
        ).ok
        assert verify(
            problem, graph, Labeling(graph), matching_labeling(graph, {0})
        ).ok

    def test_two_matched_edges_at_node_rejected(self):
        from repro.problems.matching import matching_labeling

        graph = path(3)
        problem = MaximalMatching().problem()
        outputs = matching_labeling(graph, {0, 1})
        assert not verify(problem, graph, Labeling(graph), outputs).ok

    @given(multigraphs(max_nodes=8, max_edges=12), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_luby_total_on_multigraphs(self, graph, seed):
        result = LubyMatchingSolver().solve(Instance.simple(graph, seed=seed))
        _check(MaximalMatching().problem(), graph, result)


class TestTrivial:
    def test_constant_problem(self):
        graph = cycle(5)
        result = ConstantSolver().solve(Instance.simple(graph))
        _check(ConstantLabelProblem().problem(), graph, result)
        assert result.rounds == 0

    def test_parity_problem(self):
        graph = star(3)
        result = ConstantSolver(parity=True).solve(Instance.simple(graph))
        _check(ParityOfDegreeProblem().problem(), graph, result)

    def test_wrong_constant_rejected(self):
        graph = cycle(4)
        problem = ConstantLabelProblem("ok").problem()
        outputs = Labeling(graph).fill_nodes("nope")
        assert not verify(problem, graph, Labeling(graph), outputs).ok
