"""End-to-end tests: the Lemma 4 solver against the Pi' verifier."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    PaddedProblem,
    PaddedSolver,
    build_family,
    hard_instance,
    pad_graph,
)
from repro.core.hard_instances import _lifted_ids
from repro.gadgets import LogGadgetFamily, build_gadget
from repro.generators import complete, cycle, path, random_regular
from repro.lcl import Labeling
from repro.local import Instance, PortGraph
from repro.local.identifiers import sequential_ids
from repro.problems import (
    DeterministicSinklessSolver,
    RandomizedSinklessSolver,
    SinklessOrientation,
)
from repro.util.rng import NodeRng


def _pi2(delta=3):
    family = LogGadgetFamily(delta)
    problem = PaddedProblem(SinklessOrientation().problem(), family)
    return family, problem


def _padded_instance(base, delta=3, height=3, seed=None):
    gadgets = [build_gadget(delta, height) for _ in base.nodes()]
    padded = pad_graph(base, gadgets)
    rng = NodeRng(seed) if seed is not None else None
    return padded, Instance(
        padded.graph,
        sequential_ids(padded.graph.num_nodes),
        padded.inputs,
        None,
        rng,
    )


class TestPi2Deterministic:
    @pytest.mark.parametrize(
        "base_factory",
        [
            lambda: complete(4),
            lambda: cycle(5),
            lambda: path(4),
            lambda: random_regular(12, 3, random.Random(0)),
        ],
    )
    def test_solver_output_verifies(self, base_factory):
        base = base_factory()
        family, problem = _pi2()
        padded, instance = _padded_instance(base)
        solver = PaddedSolver(problem, DeterministicSinklessSolver())
        result = solver.solve(instance)
        verdict = problem.verify(padded.graph, padded.inputs, result.outputs)
        assert verdict.ok, verdict.summary()
        assert result.extras["invalid_gadgets"] == 0
        assert result.extras["virtual_nodes"] == base.num_nodes

    def test_rounds_scale_with_gadget_height(self):
        base = complete(4)
        family, problem = _pi2()
        rounds = []
        for height in (2, 4, 6):
            padded, instance = _padded_instance(base, height=height)
            solver = PaddedSolver(problem, DeterministicSinklessSolver())
            rounds.append(solver.solve(instance).rounds)
        assert rounds[0] < rounds[1] < rounds[2]

    def test_deterministic_reproducible(self):
        base = cycle(4)
        family, problem = _pi2()
        padded, instance = _padded_instance(base)
        solver = PaddedSolver(problem, DeterministicSinklessSolver())
        a = solver.solve(instance)
        b = solver.solve(instance)
        assert a.outputs == b.outputs


class TestPi2Randomized:
    def test_solver_output_verifies(self):
        base = random_regular(10, 3, random.Random(3))
        family, problem = _pi2()
        padded, instance = _padded_instance(base, seed=11)
        solver = PaddedSolver(problem, RandomizedSinklessSolver())
        result = solver.solve(instance)
        verdict = problem.verify(padded.graph, padded.inputs, result.outputs)
        assert verdict.ok, verdict.summary()

    def test_randomized_cheaper_than_deterministic(self):
        base = random_regular(64, 3, random.Random(5))
        family, problem = _pi2()
        padded, instance = _padded_instance(base, height=4, seed=1)
        det = PaddedSolver(problem, DeterministicSinklessSolver()).solve(instance)
        rand = PaddedSolver(problem, RandomizedSinklessSolver()).solve(instance)
        assert rand.extras["base_rounds"] <= det.extras["base_rounds"]


class TestAdversarialInputs:
    def test_corrupted_gadget_still_solvable(self):
        """Pi' instances with an invalid gadget must still be solved:
        the invalid gadget proves its error, neighbors mark PortErr1."""
        from repro.core import PaddedInput
        from repro.gadgets.labels import GadgetNodeInput, NOPORT

        base = path(3)
        gadgets = [build_gadget(3, 3) for _ in base.nodes()]
        padded = pad_graph(base, gadgets)
        inputs = padded.inputs.copy()
        victim = padded.padded_node(1, gadgets[1].ports[0])
        old = inputs.node(victim)
        inputs.set_node(
            victim,
            PaddedInput(
                old.pi,
                GadgetNodeInput(old.gadget.role, NOPORT, old.gadget.color),
            ),
        )
        family, problem = _pi2()
        instance = Instance(
            padded.graph, sequential_ids(padded.graph.num_nodes), inputs
        )
        solver = PaddedSolver(problem, DeterministicSinklessSolver())
        result = solver.solve(instance)
        assert result.extras["invalid_gadgets"] == 1
        verdict = problem.verify(padded.graph, inputs, result.outputs)
        assert verdict.ok, verdict.summary()

    def test_garbage_graph_solvable(self):
        """A graph with no gadget structure at all: everything is an
        invalid gadget, the whole output is a proof of error."""
        graph = complete(5)
        family, problem = _pi2()
        instance = Instance(graph, sequential_ids(5), Labeling(graph))
        solver = PaddedSolver(problem, DeterministicSinklessSolver())
        result = solver.solve(instance)
        verdict = problem.verify(graph, instance.inputs, result.outputs)
        assert verdict.ok, verdict.summary()
        assert result.extras["virtual_nodes"] == 0

    def test_verifier_rejects_tampering(self):
        base = complete(4)
        family, problem = _pi2()
        padded, instance = _padded_instance(base)
        solver = PaddedSolver(problem, DeterministicSinklessSolver())
        result = solver.solve(instance)
        # flip one virtual orientation bit: o_b of some valid port
        from repro.core import PaddedOutput

        tampered = result.outputs.copy()
        victim = None
        for v in padded.graph.nodes():
            out = tampered.node(v)
            pad = out.list
            if pad.ports:
                i = min(pad.ports)
                o_b = list(pad.o_b)
                o_b[i - 1] = "out" if o_b[i - 1] == "in" else "in"
                new_pad = pad._replace(o_b=tuple(o_b))
                tampered.set_node(v, PaddedOutput(new_pad, out.port_err, out.psi))
                victim = v
                break
        assert victim is not None
        verdict = problem.verify(padded.graph, padded.inputs, tampered)
        assert not verdict.ok

    def test_verifier_rejects_false_gadok(self):
        """Claiming GadOk inside a corrupted gadget must fail."""
        from repro.core import PaddedInput
        from repro.gadgets.labels import GadgetNodeInput, NOPORT

        base = path(2)
        gadgets = [build_gadget(2, 2), build_gadget(2, 2)]
        padded = pad_graph(base, gadgets)
        inputs = padded.inputs.copy()
        victim = padded.padded_node(1, gadgets[1].ports[0])
        old = inputs.node(victim)
        inputs.set_node(
            victim,
            PaddedInput(
                old.pi,
                GadgetNodeInput(old.gadget.role, NOPORT, old.gadget.color),
            ),
        )
        family, problem = _pi2(delta=2)
        instance = Instance(
            padded.graph, sequential_ids(padded.graph.num_nodes), inputs
        )
        solver = PaddedSolver(problem, DeterministicSinklessSolver())
        honest = solver.solve(instance)
        from repro.core import PaddedOutput
        from repro.gadgets import GADOK

        lying = honest.outputs.copy()
        for v in padded.gadget_nodes(1):
            out = lying.node(v)
            lying.set_node(v, PaddedOutput(out.list, out.port_err, GADOK))
            for port in range(padded.graph.degree(v)):
                from repro.local import HalfEdge

                side = HalfEdge(v, port)
                if lying.half(side) is not None and lying.half(side) != "BLANK":
                    pass
        verdict = problem.verify(padded.graph, inputs, lying)
        assert not verdict.ok


class TestPi3Recursion:
    def test_pi3_solves_and_verifies(self):
        levels = build_family(3, delta=3)
        pi2, pi3 = levels[1], levels[2]
        # build a doubly padded instance by hand: pad a K4 twice
        base = complete(4)
        inner = hard_instance(base, pi2.family, 600)
        inner_instance = Instance(
            inner.graph,
            _lifted_ids(sequential_ids(base.num_nodes), inner),
            inner.inputs,
            600,
            NodeRng(3),
        )
        outer = hard_instance(inner.graph, pi3.family, 40_000, inner.inputs)
        outer_instance = Instance(
            outer.graph,
            _lifted_ids(inner_instance.ids, outer),
            outer.inputs,
            40_000,
            NodeRng(3),
        )
        for solver in (pi3.det_solver, pi3.rand_solver):
            result = solver.solve(outer_instance)
            verdict = pi3.verify(
                outer.graph, outer.inputs, result.outputs
            )
            assert verdict.ok, verdict.summary()
