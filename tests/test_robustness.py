"""Robustness suite: adversarial identifiers, property-based padding
round trips, and scope/navigation units."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PaddedProblem, PaddedSolver, pad_graph
from repro.gadgets import GadgetScope, LogGadgetFamily, build_gadget
from repro.gadgets.labels import Down, LCHILD, PARENT, RIGHT, UP
from repro.generators import complete, random_regular
from repro.lcl import Labeling, verify
from repro.local import Instance
from repro.local.identifiers import random_ids, reversed_ids, sequential_ids
from repro.problems import (
    DeterministicSinklessSolver,
    RandomizedSinklessSolver,
    SinklessOrientation,
)
from repro.util.rng import NodeRng
from tests.conftest import build_multigraph


class TestAdversarialIdentifiers:
    @pytest.mark.parametrize(
        "ids_factory",
        [
            sequential_ids,
            reversed_ids,
            lambda n: random_ids(n, random.Random(99)),
        ],
    )
    def test_sinkless_solvers_id_independent_correctness(self, ids_factory):
        graph = random_regular(48, 3, random.Random(3))
        ids = ids_factory(48)
        problem = SinklessOrientation().problem()
        for solver in (DeterministicSinklessSolver(), RandomizedSinklessSolver()):
            instance = Instance(graph, ids, None, None, NodeRng(1))
            result = solver.solve(instance)
            verdict = verify(problem, graph, Labeling(graph), result.outputs)
            assert verdict.ok, (solver.name, verdict.summary())

    def test_padded_solver_with_scrambled_ids(self):
        base = complete(4)
        gadgets = [build_gadget(3, 3) for _ in base.nodes()]
        padded = pad_graph(base, gadgets)
        family = LogGadgetFamily(3)
        problem = PaddedProblem(SinklessOrientation().problem(), family)
        ids = random_ids(padded.graph.num_nodes, random.Random(5))
        instance = Instance(padded.graph, ids, padded.inputs)
        result = PaddedSolver(problem, DeterministicSinklessSolver()).solve(instance)
        verdict = problem.verify(padded.graph, padded.inputs, result.outputs)
        assert verdict.ok, verdict.summary()

    def test_det_solver_output_changes_with_ids_but_stays_valid(self):
        graph = random_regular(32, 3, random.Random(8))
        problem = SinklessOrientation().problem()
        outputs = []
        for ids in (sequential_ids(32), reversed_ids(32)):
            result = DeterministicSinklessSolver().solve(Instance(graph, ids))
            assert verify(problem, graph, Labeling(graph), result.outputs).ok
            outputs.append(result.outputs)
        # determinism is per-instance; different ids may legitimately
        # yield different orientations -- both must verify (checked above)


@st.composite
def small_cubicish_graphs(draw):
    """Connected-ish multigraphs with max degree <= 3 for padding."""
    n = draw(st.integers(2, 6))
    pairs = []
    degree = [0] * n
    for _ in range(draw(st.integers(1, 8))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if degree[u] < 3 and degree[v] < 3 and (u != v or degree[u] < 2):
            pairs.append((u, v))
            degree[u] += 1
            degree[v] += 1
    return build_multigraph(n, pairs)


class TestPaddedRoundTripProperty:
    @given(small_cubicish_graphs(), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_pad_solve_verify(self, base, seed):
        gadgets = [build_gadget(3, 2) for _ in base.nodes()]
        padded = pad_graph(base, gadgets)
        family = LogGadgetFamily(3)
        problem = PaddedProblem(SinklessOrientation().problem(), family)
        instance = Instance(
            padded.graph,
            sequential_ids(padded.graph.num_nodes),
            padded.inputs,
            None,
            NodeRng(seed),
        )
        for base_solver in (
            DeterministicSinklessSolver(),
            RandomizedSinklessSolver(),
        ):
            result = PaddedSolver(problem, base_solver).solve(instance)
            verdict = problem.verify(padded.graph, padded.inputs, result.outputs)
            assert verdict.ok, verdict.summary()

    @given(small_cubicish_graphs())
    @settings(max_examples=25, deadline=None)
    def test_contraction_recovers_base_shape(self, base):
        from repro.core import decompose

        gadgets = [build_gadget(3, 2) for _ in base.nodes()]
        padded = pad_graph(base, gadgets)
        decomposition = decompose(
            padded.graph,
            padded.inputs,
            LogGadgetFamily(3),
            sequential_ids(padded.graph.num_nodes),
            padded.graph.num_nodes,
        )
        virtual = decomposition.virtual
        assert virtual.num_real() == base.num_nodes
        assert virtual.graph.num_edges == base.num_edges
        # degree spectrum is preserved by the contraction
        base_degrees = sorted(base.degree(v) for v in base.nodes())
        virtual_degrees = sorted(
            virtual.graph.degree(a)
            for a in virtual.graph.nodes()
            if virtual.component_of_virtual[a] is not None
        )
        assert base_degrees == virtual_degrees


class TestGadgetScope:
    def test_follow_and_components(self):
        built = build_gadget(2, 3)
        scope = GadgetScope(built.graph, built.inputs)
        assert scope.components() == [sorted(built.graph.nodes())]
        root1 = scope.follow(built.center, Down(1))
        assert scope.follow(root1, UP) == built.center
        child = scope.follow(root1, LCHILD)
        assert scope.follow(child, PARENT) == root1

    def test_follow_missing_label(self):
        built = build_gadget(2, 3)
        scope = GadgetScope(built.graph, built.inputs)
        assert scope.follow(built.center, RIGHT) is None

    def test_edge_filter_splits_components(self):
        built = build_gadget(2, 3)
        # exclude the center's edges: each sub-gadget becomes a component
        center_edges = {
            built.graph.edge_id_at(built.center, p)
            for p in range(built.graph.degree(built.center))
        }
        scope = GadgetScope(
            built.graph, built.inputs, lambda eid: eid not in center_edges
        )
        comps = scope.components()
        assert len(comps) == 3  # two sub-gadgets + isolated center
        assert scope.scope_degree(built.center) == 0

    def test_labels_at_and_has_label(self):
        built = build_gadget(2, 4)
        scope = GadgetScope(built.graph, built.inputs)
        port = built.ports[0]
        labels = scope.labels_at(port)
        assert PARENT in labels
        assert scope.has_label(port, PARENT)
        assert not scope.has_label(port, RIGHT)
