"""Targeted tests: each Section 3.3 constraint of Pi', violated in turn.

The solver round-trip tests prove the verifier accepts honest outputs;
these tests prove it *rejects* every individual way of cheating, which
is what makes Pi' an LCL rather than a promise problem.
"""

from __future__ import annotations

import pytest

from repro.core import (
    GADEDGE,
    PORT_ERR1,
    PORT_ERR2,
    PORT_OK,
    PaddedOutput,
    PaddedProblem,
    PaddedSolver,
    pad_graph,
)
from repro.core.padded_problem import ERRMARK, PadList
from repro.gadgets import GADOK, LogGadgetFamily, build_gadget
from repro.generators import complete, cycle
from repro.lcl.labels import BLANK, EMPTY
from repro.local import HalfEdge, Instance
from repro.local.identifiers import sequential_ids
from repro.problems import DeterministicSinklessSolver, SinklessOrientation


@pytest.fixture(scope="module")
def honest():
    """A verified honest solution to mutate."""
    base = complete(4)
    gadgets = [build_gadget(3, 3) for _ in base.nodes()]
    padded = pad_graph(base, gadgets)
    family = LogGadgetFamily(3)
    problem = PaddedProblem(SinklessOrientation().problem(), family)
    instance = Instance(
        padded.graph, sequential_ids(padded.graph.num_nodes), padded.inputs
    )
    result = PaddedSolver(problem, DeterministicSinklessSolver()).solve(instance)
    verdict = problem.verify(padded.graph, padded.inputs, result.outputs)
    assert verdict.ok
    return padded, problem, result


def _mutated(honest, mutate):
    padded, problem, result = honest
    outputs = result.outputs.copy()
    mutate(padded, outputs)
    return problem.verify(padded.graph, padded.inputs, outputs)


class TestConstraint1:
    def test_port_edge_must_be_blank(self, honest):
        def mutate(padded, outputs):
            outputs.set_edge(padded.port_edges[0], GADOK)

        verdict = _mutated(honest, mutate)
        assert any("BLANK" in str(v) for v in verdict.violations)

    def test_port_half_must_be_blank(self, honest):
        def mutate(padded, outputs):
            edge = padded.graph.edge(padded.port_edges[0])
            outputs.set_half(edge.a, GADOK)

        assert not _mutated(honest, mutate).ok

    def test_gadget_edge_needs_psi_label(self, honest):
        def mutate(padded, outputs):
            for eid in range(padded.graph.num_edges):
                if padded.edge_tag(eid) == GADEDGE:
                    outputs.set_edge(eid, BLANK)
                    break

        assert not _mutated(honest, mutate).ok


class TestConstraint2:
    def test_psi_must_hold_per_component(self, honest):
        def mutate(padded, outputs):
            v = padded.padded_node(0, padded.gadget_of[0].center)
            out = outputs.node(v)
            from repro.gadgets import ERROR

            outputs.set_node(v, PaddedOutput(out.list, out.port_err, ERROR))
            # keep replication so the violation is Psi's, not the mirror's
            for port in range(padded.graph.degree(v)):
                outputs.set_half(HalfEdge(v, port), ERROR)

        verdict = _mutated(honest, mutate)
        assert any("Psi_G" in str(v) for v in verdict.violations)

    def test_half_replication_enforced(self, honest):
        def mutate(padded, outputs):
            v = padded.padded_node(1, padded.gadget_of[1].center)
            outputs.set_half(HalfEdge(v, 0), ERRMARK)

        assert not _mutated(honest, mutate).ok


class TestConstraint3:
    def test_port_err2_cannot_be_dropped(self, honest):
        def mutate(padded, outputs):
            # every gadget has 3 ports but base degree 3 uses all; use a
            # NoPort node claiming PortErr2 instead
            v = padded.padded_node(0, padded.gadget_of[0].center)
            out = outputs.node(v)
            outputs.set_node(v, PaddedOutput(out.list, PORT_ERR2, out.psi))

        verdict = _mutated(honest, mutate)
        assert any("constraint 3" in str(v) for v in verdict.violations)

    def test_port_err2_forced_on_unconnected_port(self):
        """A degree-2 base node leaves one port dangling: PortErr2."""
        base = cycle(3)
        gadgets = [build_gadget(3, 3) for _ in base.nodes()]
        padded = pad_graph(base, gadgets)
        family = LogGadgetFamily(3)
        problem = PaddedProblem(SinklessOrientation().problem(), family)
        instance = Instance(
            padded.graph, sequential_ids(padded.graph.num_nodes), padded.inputs
        )
        result = PaddedSolver(problem, DeterministicSinklessSolver()).solve(instance)
        assert problem.verify(padded.graph, padded.inputs, result.outputs).ok
        # break it: claim the unused Port_3 is fine
        outputs = result.outputs.copy()
        v = padded.padded_node(0, gadgets[0].ports[2])
        out = outputs.node(v)
        outputs.set_node(v, PaddedOutput(out.list, PORT_OK, out.psi))
        assert not problem.verify(padded.graph, padded.inputs, outputs).ok


class TestConstraint4:
    def test_port_err1_between_healthy_gadgets_rejected(self, honest):
        def mutate(padded, outputs):
            v = padded.padded_node(0, padded.gadget_of[0].ports[0])
            out = outputs.node(v)
            pad = out.list._replace(
                ports=out.list.ports - {1}
            )  # keep constraint 5 consistent with the flag
            outputs.set_node(v, PaddedOutput(pad, PORT_ERR1, out.psi))

        verdict = _mutated(honest, mutate)
        assert any("constraint 4" in str(v) for v in verdict.violations)


class TestConstraint5:
    def test_s_must_match_no_port_err(self, honest):
        def mutate(padded, outputs):
            v = padded.padded_node(0, padded.gadget_of[0].ports[0])
            out = outputs.node(v)
            pad = out.list._replace(ports=out.list.ports - {1})
            outputs.set_node(v, PaddedOutput(pad, out.port_err, out.psi))

        verdict = _mutated(honest, mutate)
        assert any("constraint 5" in str(v) or "constraint 6" in str(v) for v in verdict.violations)

    def test_iota_must_copy_inputs(self, honest):
        def mutate(padded, outputs):
            v = padded.padded_node(2, padded.gadget_of[2].ports[0])
            out = outputs.node(v)
            iota_e = list(out.list.iota_e)
            iota_e[0] = "forged"
            pad = out.list._replace(iota_e=tuple(iota_e))
            outputs.set_node(v, PaddedOutput(pad, out.port_err, out.psi))

        verdict = _mutated(honest, mutate)
        assert any("iota_E" in str(v) for v in verdict.violations)


class TestConstraint6:
    def test_lists_must_agree_inside_gadget(self, honest):
        def mutate(padded, outputs):
            v = padded.padded_node(3, padded.gadget_of[3].center)
            out = outputs.node(v)
            pad = out.list._replace(iota_v="divergent")
            outputs.set_node(v, PaddedOutput(pad, out.port_err, out.psi))

        verdict = _mutated(honest, mutate)
        assert any("Sigma_list differs" in str(v) for v in verdict.violations)

    def test_contraction_must_solve_base(self, honest):
        def mutate(padded, outputs):
            # orient one virtual half-edge inconsistently everywhere in
            # one gadget (keeping intra-gadget equality)
            from repro.problems import IN, OUT

            target = 0
            rep = outputs.node(padded.padded_node(target, 0))
            o_b = list(rep.list.o_b)
            for i, value in enumerate(o_b):
                if value in (IN, OUT):
                    o_b[i] = IN if value == OUT else OUT
                    break
            pad = rep.list._replace(o_b=tuple(o_b))
            for v in padded.gadget_nodes(target):
                out = outputs.node(v)
                outputs.set_node(v, PaddedOutput(pad, out.port_err, out.psi))

        verdict = _mutated(honest, mutate)
        assert any(v.kind == "virtual" or "constraint 6" in str(v) for v in verdict.violations)


class TestOutputShape:
    def test_non_padded_output_rejected(self, honest):
        def mutate(padded, outputs):
            outputs.set_node(0, "garbage")

        verdict = _mutated(honest, mutate)
        assert any(v.kind == "domain" for v in verdict.violations)

    def test_bad_port_flag_rejected(self, honest):
        def mutate(padded, outputs):
            out = outputs.node(0)
            outputs.set_node(0, PaddedOutput(out.list, "MaybeErr", out.psi))

        assert not _mutated(honest, mutate).ok

    def test_wrong_arity_lists_rejected(self, honest):
        def mutate(padded, outputs):
            out = outputs.node(0)
            pad = PadList(
                ports=frozenset(),
                iota_v=EMPTY,
                iota_e=(EMPTY,),  # wrong arity
                iota_b=(EMPTY,),
                o_v=EMPTY,
                o_e=(EMPTY,),
                o_b=(EMPTY,),
            )
            outputs.set_node(0, PaddedOutput(pad, out.port_err, out.psi))

        assert not _mutated(honest, mutate).ok
